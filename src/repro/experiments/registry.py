"""Registry mapping experiment ids to runners."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import InvalidParameterError
from repro.experiments.ablations import run_t7, run_t8
from repro.experiments.estimators_exp import run_t5
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.experiments.learning import run_f1, run_f2, run_t1, run_t2
from repro.experiments.lowerbound import run_f4
from repro.experiments.selectivity_exp import run_t6
from repro.experiments.testing import run_f3, run_t3, run_t4

Runner = Callable[[ExperimentConfig], ExperimentResult]

_REGISTRY: dict[str, tuple[str, Runner]] = {
    "T1": ("Exhaustive greedy vs DP optimum (Theorem 1)", run_t1),
    "T2": ("Fast greedy vs exhaustive (Theorem 2)", run_t2),
    "F1": ("Error vs sample budget", run_f1),
    "F2": ("Runtime scaling with n", run_f2),
    "T3": ("l2 tester confusion table (Theorem 3)", run_t3),
    "T4": ("l1 tester confusion table (Theorem 4)", run_t4),
    "F3": ("Rejection rate vs distance", run_f3),
    "F4": ("Lower-bound transition (Theorem 5)", run_f4),
    "T5": ("Collision estimator concentration (Lemma 1)", run_t5),
    "T6": ("Selectivity estimation application", run_t6),
    "T7": ("Greedy design ablations", run_t7),
    "T8": ("k=1 vs GR00 uniformity tester", run_t8),
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in presentation order."""
    return list(_REGISTRY)


def get_experiment(experiment_id: str) -> tuple[str, Runner]:
    """``(title, runner)`` for an id; raises on unknown ids."""
    try:
        return _REGISTRY[experiment_id.upper()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(_REGISTRY)}"
        ) from None


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment and return its table."""
    if config is None:
        config = ExperimentConfig()
    _, runner = get_experiment(experiment_id)
    return runner(config)
