"""Experiment harness regenerating every table and figure.

The paper is pure theory — its "evaluation" is the theorem statements —
so each experiment instantiates one claim as a measurable table (T*) or
curve (F*); the mapping and the recorded outcomes
live in README.md ("Experiments").

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments run T1 [--seed 0] [--quick]
    python -m repro.experiments all

or programmatically::

    from repro.experiments import run_experiment, ExperimentConfig
    result = run_experiment("T3", ExperimentConfig(seed=1))
    print(result.to_markdown())
"""

from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.experiments.registry import (
    experiment_ids,
    get_experiment,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
]
