"""T7 (design ablations) and T8 (the k=1 uniformity special case)."""

from __future__ import annotations

import numpy as np

from repro.api.session import HistogramSession
from repro.baselines.voptimal import voptimal_cost
from repro.core.params import GreedyParams, TesterParams, greedy_rounds
from repro.core.uniformity import test_uniformity, uniformity_sample_size
from repro.distributions import families
from repro.distributions.distances import l2_distance_squared
from repro.experiments.harness import ExperimentConfig, ExperimentResult, accept_rate
from repro.utils.rng import spawn_rngs


def run_t7(config: ExperimentConfig) -> ExperimentResult:
    """T7 — ablations of the greedy learner's design choices.

    (a) median-of-r collision sets vs a single set (Algorithm 1 step 3);
    (b) candidate restriction: exhaustive / T' / capped subsample;
    (c) round budget q: k vs k ln(1/eps) (paper) vs 2x.
    """
    n, k, eps = 256, 4, 0.25
    repeats = 2 if config.quick else 5
    dist = families.zipf(n, 1.2)
    opt = voptimal_cost(dist.pmf, k, norm="l2")
    base = GreedyParams.from_paper(n, k, eps, scale=0.05)
    result = ExperimentResult(
        "T7",
        "Greedy learner ablations (median excess error over seeds)",
        ["ablation", "variant", "median excess", "rounds/cands"],
        notes=[
            f"n={n}, k={k}, eps={eps}, zipf(1.2), {repeats} seeds, scale=0.05",
            "The paper's choices (median-of-r, T' candidates, q = k ln(1/eps))",
            "should be on the efficient frontier.",
        ],
    )
    rngs = spawn_rngs(config.seed + 10, 100)
    idx = 0

    def median_excess(**kwargs) -> tuple[float, object]:
        nonlocal idx
        errs, info = [], None
        for _ in range(repeats):
            # One fresh session per trial keeps trials independent (and
            # each first learn seed-identical to the retired one-shot).
            learned = HistogramSession(dist, n, rng=rngs[idx]).learn(
                k, eps, **kwargs
            )
            idx += 1
            errs.append(l2_distance_squared(dist, learned.histogram) - opt)
            info = learned
        return float(np.median(errs)), info

    # (a) collision replication
    for r in (1, base.collision_sets):
        params = GreedyParams(
            base.weight_sample_size, r, base.collision_set_size, base.rounds
        )
        excess, _ = median_excess(method="fast", params=params)
        result.rows.append(["collision sets", f"r={r}", excess, base.rounds])

    # (b) candidate sets
    excess, info = median_excess(method="exhaustive", params=base)
    result.rows.append(["candidates", "all intervals", excess, info.num_candidates])
    excess, info = median_excess(method="fast", params=base)
    result.rows.append(["candidates", "T' (paper)", excess, info.num_candidates])
    excess, info = median_excess(method="fast", params=base, max_candidates=500)
    result.rows.append(["candidates", "T' capped at 500", excess, info.num_candidates])

    # (c) round budget
    for label, rounds in (
        ("q = k", k),
        ("q = k ln(1/eps) (paper)", greedy_rounds(k, eps)),
        ("q = 2 k ln(1/eps)", 2 * greedy_rounds(k, eps)),
    ):
        params = GreedyParams(
            base.weight_sample_size,
            base.collision_sets,
            base.collision_set_size,
            rounds,
        )
        excess, _ = median_excess(method="fast", params=params)
        result.rows.append(["rounds", label, excess, rounds])

    # (d) gap handling (the filled_histogram extension): squared-l2 excess
    # of the paper-faithful output vs the weight-filled variant.
    gapped_errs, filled_errs = [], []
    for _ in range(repeats):
        learned = HistogramSession(dist, n, rng=rngs[idx]).learn(
            k, eps, method="fast", params=base
        )
        idx += 1
        gapped_errs.append(l2_distance_squared(dist, learned.histogram) - opt)
        filled_errs.append(l2_distance_squared(dist, learned.filled_histogram) - opt)
    result.rows.append(
        ["gap handling", "gaps = 0 (paper)", float(np.median(gapped_errs)), base.rounds]
    )
    result.rows.append(
        ["gap handling", "gaps = weight est.", float(np.median(filled_errs)), base.rounds]
    )
    return result


def run_t8(config: ExperimentConfig) -> ExperimentResult:
    """T8 — k = 1: the general tester vs the [GR00] uniformity tester.

    Claim: the paper's machinery specialises correctly to uniformity
    testing; the dedicated collision tester needs fewer samples
    (O(sqrt(n)/eps^2) vs the general tester's budget).
    """
    n, eps = 1024, 0.3
    trials = 4 if config.quick else 12
    uniform = families.uniform(n)
    pmf = np.zeros(n)
    rng0 = np.random.default_rng(config.seed + 99)
    support = rng0.choice(n, size=n // 2, replace=False)
    pmf[support] = 2.0 / n
    from repro.distributions.base import DiscreteDistribution

    half = DiscreteDistribution(pmf)

    l1_params = TesterParams(num_sets=15, set_size=30_000)
    result = ExperimentResult(
        "T8",
        "k=1 special case: general l1 tester vs GR00 uniformity tester",
        ["instance", "method", "samples", "accept rate", "target"],
        notes=[
            f"n={n}, eps={eps}, {trials} trials; NO instance: uniform on a random half",
            "Both methods must accept uniform and reject the half-support instance;",
            "the dedicated tester does it with a fraction of the samples.",
        ],
    )
    rngs = spawn_rngs(config.seed + 11, trials * 4)
    idx = 0
    for name, dist, target_yes in (("uniform", uniform, True), ("half-support", half, False)):
        general_flags, gr_flags = [], []
        for _ in range(trials):
            general_flags.append(
                HistogramSession(dist, n, rng=rngs[idx])
                .test_l1(1, eps, params=l1_params)
                .accepted
            )
            idx += 1
            gr_flags.append(test_uniformity(dist, n, eps, rng=rngs[idx]).accepted)
            idx += 1
        target = ">= 2/3" if target_yes else "<= 1/3"
        result.rows.append(
            [name, "general l1 tester (k=1)", l1_params.total_samples, accept_rate(general_flags), target]
        )
        result.rows.append(
            [name, "GR00 uniformity", uniformity_sample_size(n, eps), accept_rate(gr_flags), target]
        )
    return result
