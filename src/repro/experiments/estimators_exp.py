"""T5 — concentration of the collision estimators (Lemma 1 / Eq. 2)."""

from __future__ import annotations

import numpy as np

from repro.distributions import families
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.histograms.intervals import Interval
from repro.samples.collision import CollisionSketch
from repro.samples.estimators import (
    MultiSketch,
    absolute_second_moment_estimate,
    conditional_norm_estimate,
)
from repro.utils.rng import spawn_rngs


def run_t5(config: ExperimentConfig) -> ExperimentResult:
    """T5 — estimator concentration against the paper's bounds.

    * Lemma 1: with ``m = 24 / eps^2`` samples,
      ``|z_I - sum_{i in I} p_i^2| <= eps p(I)`` with probability > 3/4;
    * median-of-r amplification should push the empirical rate close to 1;
    * the conditional [GR00] estimator (Eq. 2) concentrates around
      ``||p_I||_2^2``.
    """
    eps = 0.1
    m = int(24 / eps**2)
    r = 9
    trials = 20 if config.quick else 60
    n = 128
    cases = [
        ("zipf(1.0)", families.zipf(n, 1.0), Interval(0, 16)),
        ("uniform", families.uniform(n), Interval(0, 64)),
        ("two-level", families.two_level(n, heavy_start=0, heavy_length=16), Interval(0, 16)),
    ]
    if config.quick:
        cases = cases[:2]
    result = ExperimentResult(
        "T5",
        "Collision estimator concentration (Lemma 1, Eq. 2)",
        ["distribution", "estimator", "within-bound rate", "claimed", "median rel err"],
        notes=[
            f"eps={eps}, m={m} per set, r={r} for medians, {trials} trials",
            "Lemma 1 claims within-bound probability > 3/4 for a single set.",
        ],
    )
    rngs = spawn_rngs(config.seed + 8, len(cases) * trials * 2)
    idx = 0
    for name, dist, interval in cases:
        truth = dist.second_moment(interval)
        bound = eps * dist.weight(interval)
        cond_truth = dist.conditional_collision_probability(interval)

        single_hits, median_hits = [], []
        cond_errs = []
        for _ in range(trials):
            sketch = CollisionSketch(dist.sample(m, rngs[idx]), n)
            idx += 1
            z1 = absolute_second_moment_estimate(sketch, interval.start, interval.stop)
            single_hits.append(abs(z1 - truth) <= bound)
            multi = MultiSketch.from_sample_sets(
                dist.sample_sets(r, m, rngs[idx]), n
            )
            idx += 1
            zr = multi.median_absolute_second_moment(interval.start, interval.stop)
            median_hits.append(abs(zr - truth) <= bound)
            big = CollisionSketch(dist.sample(20 * m, rngs[idx % len(rngs)]), n)
            zc = conditional_norm_estimate(big, interval.start, interval.stop)
            if cond_truth > 0:
                cond_errs.append(abs(zc - cond_truth) / cond_truth)

        result.rows.append(
            [name, "Lemma1 single", float(np.mean(single_hits)), "> 3/4", "-"]
        )
        result.rows.append(
            [name, f"Lemma1 median-of-{r}", float(np.mean(median_hits)), "~ 1", "-"]
        )
        result.rows.append(
            [name, "conditional (Eq.2)", "-", "-", float(np.median(cond_errs))]
        )
    return result
