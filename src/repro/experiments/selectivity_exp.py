"""T6 — the database application: selectivity estimation quality."""

from __future__ import annotations

from repro.api.session import HistogramSession
from repro.baselines.compressed import compressed_from_samples
from repro.baselines.equidepth import equidepth_from_samples
from repro.baselines.equiwidth import equiwidth_from_samples
from repro.baselines.voptimal import voptimal_from_samples
from repro.core.params import GreedyParams
from repro.datasets.synthetic import (
    ages_column,
    product_popularity_column,
    salaries_column,
)
from repro.distributions.empirical import EmpiricalDistribution
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.queries.evaluate import evaluate_estimator
from repro.queries.selectivity import SelectivityEstimator
from repro.queries.workload import mixed_workload
from repro.utils.rng import spawn_rngs


def run_t6(config: ExperimentConfig) -> ExperimentResult:
    """T6 — histogram classes on range-query workloads.

    The paper's motivation: v-optimal histograms (which its greedy
    algorithm learns from samples) versus the equi-depth / compressed
    histograms earlier sampling work was restricted to.  Claim (shape):
    on skewed columns, v-optimal-style summaries beat equi-depth, which
    beats equi-width; the sample-efficient greedy tracks the DP plug-in.
    """
    rows_per_column = 50_000
    sample_budget = 12_000
    k = 16
    columns = [
        ("ages", ages_column),
        ("salaries", salaries_column),
        ("product-popularity", product_popularity_column),
    ]
    if config.quick:
        columns = columns[:1]
    result = ExperimentResult(
        "T6",
        "Selectivity estimation error by histogram class",
        ["column", "estimator", "pieces", "mean |err| x1e4", "max |err| x1e4"],
        notes=[
            f"{rows_per_column} data rows; every estimator sees <= {sample_budget} samples; "
            f"k={k}; 300 mixed queries",
            "Shape: greedy/v-optimal < equi-depth/compressed < equi-width on skew.",
        ],
    )
    rngs = spawn_rngs(config.seed + 9, len(columns) * 3)
    for i, (name, factory) in enumerate(columns):
        data_rng, sample_rng, workload_rng = rngs[3 * i : 3 * i + 3]
        values, n = factory(rows_per_column, rng=data_rng)
        truth = EmpiricalDistribution(values, n)
        workload = mixed_workload(n, 300, workload_rng)
        samples = truth.sample(sample_budget, sample_rng)

        greedy_params = GreedyParams(
            weight_sample_size=sample_budget // 3,
            collision_sets=7,
            collision_set_size=sample_budget // 10,
            rounds=max(4, k),
        )
        session = HistogramSession(truth, n, rng=sample_rng)
        estimators = {
            "greedy (this paper)": SelectivityEstimator.from_session(
                session, k, 0.25, params=greedy_params
            ).histogram,
            "v-optimal plug-in": voptimal_from_samples(samples, n, k),
            "equi-depth": equidepth_from_samples(samples, n, k),
            "compressed": compressed_from_samples(samples, n, k),
            "equi-width": equiwidth_from_samples(samples, n, k),
        }
        for est_name, hist in estimators.items():
            report = evaluate_estimator(SelectivityEstimator(hist), truth, workload)
            result.rows.append(
                [
                    name,
                    est_name,
                    report.summary_size,
                    report.mean_absolute * 1e4,
                    report.max_absolute * 1e4,
                ]
            )
    return result
