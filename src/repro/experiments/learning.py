"""Learning experiments: T1, T2 (Theorems 1/2) and F1, F2 (scaling)."""

from __future__ import annotations

import numpy as np

from repro.api.fleet import HistogramFleet
from repro.api.session import HistogramSession
from repro.baselines.voptimal import voptimal_cost, voptimal_histogram
from repro.core.params import GreedyParams
from repro.distributions import families
from repro.distributions.distances import l2_distance_squared
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.utils.rng import spawn_rngs
from repro.utils.timing import Timer

EPSILON = 0.25
SCALE = 0.05


def _workloads(n: int, quick: bool) -> list[tuple[str, object, int]]:
    """(name, distribution, k) triples used by T1/T2."""
    items = [
        ("random-4-hist", families.random_tiling_histogram(n, 4, 11, min_piece=max(n // 32, 1)), 4),
        ("zipf(1.0)", families.zipf(n, 1.0), 6),
    ]
    if not quick:
        items += [
            ("two-level", families.two_level(n, heavy_start=n // 4, heavy_length=n // 8), 4),
            ("gauss-mix", families.gaussian_mixture(n), 8),
            ("ramp", families.linear_ramp(n), 6),
        ]
    return items


def run_t1(config: ExperimentConfig) -> ExperimentResult:
    """T1 — Theorem 1: exhaustive greedy vs the DP optimum.

    Claim: ``||p - H||_2^2 <= ||p - H*||_2^2 + 5 eps``.
    """
    n = 128 if config.quick else 256
    result = ExperimentResult(
        "T1",
        "Exhaustive greedy (Algorithm 1) vs v-optimal DP",
        ["workload", "n", "k", "opt cost", "greedy cost", "excess", "bound 5eps", "ok"],
        notes=[
            f"epsilon={EPSILON}, sample scale={SCALE} (paper sizes x scale)",
            "Claim (Thm 1): excess <= 5 eps; measured excess is orders below.",
        ],
    )
    rngs = spawn_rngs(config.seed, len(_workloads(n, config.quick)))
    for (name, dist, k), rng in zip(_workloads(n, config.quick), rngs):
        learned = HistogramSession(dist, n, rng=rng, scale=SCALE).learn(
            k, EPSILON, method="exhaustive"
        )
        err = l2_distance_squared(dist, learned.histogram)
        opt = voptimal_cost(dist.pmf, k, norm="l2")
        excess = err - opt
        result.rows.append(
            [name, n, k, opt, err, excess, 5 * EPSILON, excess <= 5 * EPSILON]
        )
    return result


def run_t2(config: ExperimentConfig) -> ExperimentResult:
    """T2 — Theorem 2: restricted candidates preserve the guarantee.

    Claim: excess <= 8 eps with runtime tied to samples, not n^2.
    """
    n = 128 if config.quick else 256
    result = ExperimentResult(
        "T2",
        "Fast greedy (Theorem 2) vs exhaustive greedy",
        [
            "workload", "k",
            "excess fast", "excess exhaustive", "bound 8eps",
            "cands fast", "cands all", "time fast (s)", "time exh (s)",
        ],
        notes=[
            f"n={n}, epsilon={EPSILON}, sample scale={SCALE}",
            "Claim (Thm 2): fast excess <= 8 eps; candidate count drops to ~|T'|^2/2.",
        ],
    )
    rngs = spawn_rngs(config.seed + 1, len(_workloads(n, config.quick)))
    for (name, dist, k), rng in zip(_workloads(n, config.quick), rngs):
        opt = voptimal_cost(dist.pmf, k, norm="l2")
        # One session per workload: both methods score the same draw (a
        # paired comparison).  Sampling happens in the prefetch so that
        # neither timed region pays for it.
        session = HistogramSession(dist, n, rng=rng, scale=SCALE)
        session.prefetch_learn([(k, EPSILON)])
        with Timer() as t_fast:
            fast = session.learn(k, EPSILON, method="fast")
        with Timer() as t_slow:
            slow = session.learn(k, EPSILON, method="exhaustive")
        result.rows.append(
            [
                name, k,
                l2_distance_squared(dist, fast.histogram) - opt,
                l2_distance_squared(dist, slow.histogram) - opt,
                8 * EPSILON,
                fast.num_candidates, slow.num_candidates,
                t_fast.elapsed, t_slow.elapsed,
            ]
        )
    return result


def run_f1(config: ExperimentConfig) -> ExperimentResult:
    """F1 — error versus sample budget (the sample-complexity shape).

    Claim: Theorem 2's guarantee holds at O~((k/eps)^2 ln n) samples;
    the error should flatten once the budget is a small fraction of the
    paper's worst-case prescription.
    """
    n, k = 256, 6
    dist = families.zipf(n, 1.0)
    scales = [0.005, 0.02, 0.1] if config.quick else [0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2]
    repeats = 2 if config.quick else 3
    opt = voptimal_cost(dist.pmf, k, norm="l2")
    result = ExperimentResult(
        "F1",
        "Learning error vs sample budget (fast greedy, zipf)",
        ["scale", "total samples", "median excess", "bound 8eps"],
        notes=[
            f"n={n}, k={k}, epsilon={EPSILON}; {repeats} seeds per point",
            "Shape: excess decays with samples and sits far below 8 eps.",
        ],
    )
    # One fleet member per repeat: the budget sweep reuses one growing
    # pool per member (common random numbers across scales), so the whole
    # curve costs one draw of the largest budget per repeat — and the
    # repeats compile and learn as a batch.
    fleet = HistogramFleet(
        [dist] * repeats, n, rngs=spawn_rngs(config.seed + 2, repeats), method="fast"
    )
    for scale in scales:
        params = GreedyParams.from_paper(n, k, EPSILON, scale=scale)
        learned_batch = fleet.learn(k, EPSILON, params=params)
        errs = [
            l2_distance_squared(dist, learned.histogram) - opt
            for learned in learned_batch
        ]
        result.rows.append(
            [scale, learned_batch[-1].samples_used, float(np.median(errs)), 8 * EPSILON]
        )
    return result


def run_f2(config: ExperimentConfig) -> ExperimentResult:
    """F2 — runtime scaling in n: fast greedy vs exhaustive vs DP.

    Claim: exhaustive is ~n^2 per round and the DP ~n^2 k total, while the
    fast variant's work tracks the (polylog) candidate set.
    """
    sizes = [64, 128] if config.quick else [64, 128, 256, 512, 1024]
    k = 4
    result = ExperimentResult(
        "F2",
        "Runtime scaling with domain size n",
        ["n", "fast (s)", "exhaustive (s)", "dp (s)", "cands fast", "cands all"],
        notes=[
            f"k={k}, epsilon={EPSILON}, sample scale={SCALE}",
            "Exhaustive candidate count is C(n+1,2); fast stays ~|T'|^2/2.",
        ],
    )
    rngs = spawn_rngs(config.seed + 3, len(sizes))
    for n, rng in zip(sizes, rngs):
        dist = families.random_tiling_histogram(n, k, 13, min_piece=max(n // 32, 1))
        # A fresh session per timed call preserves the retired one-shot's
        # behaviour exactly: each call draws fresh samples (the shared
        # generator advances through both), so neither timing benefits
        # from the other's pools.
        with Timer() as t_fast:
            fast = HistogramSession(dist, n, rng=rng, scale=SCALE).learn(
                k, EPSILON, method="fast"
            )
        if n <= 512:
            with Timer() as t_slow:
                slow = HistogramSession(dist, n, rng=rng, scale=SCALE).learn(
                    k, EPSILON, method="exhaustive"
                )
            slow_time: object = t_slow.elapsed
            slow_cands: object = slow.num_candidates
        else:
            slow_time, slow_cands = "-", "-"
        with Timer() as t_dp:
            voptimal_histogram(dist.pmf, k, norm="l2")
        result.rows.append(
            [n, t_fast.elapsed, slow_time, t_dp.elapsed, fast.num_candidates, slow_cands]
        )
    return result
