"""F4 — the Theorem 5 lower-bound transition."""

from __future__ import annotations

import math

from repro.core.lower_bound import collision_distinguisher, no_instance, yes_instance
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.utils.rng import spawn_rngs


def run_f4(config: ExperimentConfig) -> ExperimentResult:
    """F4 — distinguishing advantage vs ``m / sqrt(kn)`` (Theorem 5).

    For each ``(n, k)`` and sample budget ``m``, the collision
    distinguisher classifies fresh YES/NO draws.  Claim: success hovers
    near chance (0.5) when ``m << sqrt(kn)`` and approaches 1 once ``m``
    passes a constant multiple of ``sqrt(kn)`` — and the curves for
    different ``(n, k)`` collapse on the normalised axis.
    """
    grids = [(1024, 4), (1024, 16), (4096, 4)]
    ratios = [0.25, 1.0, 4.0] if config.quick else [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    trials = 10 if config.quick else 30
    if config.quick:
        grids = grids[:2]
    result = ExperimentResult(
        "F4",
        "YES/NO distinguishing success vs m / sqrt(kn) (Theorem 5)",
        ["n", "k", "m/sqrt(kn)", "m", "success rate"],
        notes=[
            f"{trials} YES + {trials} NO trials per point; fresh NO instance each trial",
            "Claim (Thm 5): o(sqrt(kn)) samples give ~0.5 (chance); the",
            "transition happens at m = Theta(sqrt(kn)) for every (n, k).",
        ],
    )
    rngs = spawn_rngs(config.seed + 7, len(grids) * len(ratios) * trials * 3)
    idx = 0
    for n, k in grids:
        yes = yes_instance(n, k)
        for ratio in ratios:
            m = max(4, int(ratio * math.sqrt(k * n)))
            correct = 0
            for _ in range(trials):
                sample = yes.sample(m, rngs[idx]); idx += 1
                if not collision_distinguisher(sample, n, k).says_no:
                    correct += 1
                no = no_instance(n, k, rng=rngs[idx]); idx += 1
                sample = no.sample(m, rngs[idx]); idx += 1
                if collision_distinguisher(sample, n, k).says_no:
                    correct += 1
            result.rows.append([n, k, ratio, m, correct / (2 * trials)])
    return result
