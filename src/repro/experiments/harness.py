"""Shared experiment infrastructure."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import format_markdown_table


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes
    ----------
    seed:
        Base RNG seed; experiments derive their streams from it, so a
        fixed seed reproduces the table exactly.
    quick:
        Shrink grids/trials for smoke tests and CI; the full table is the
        default.
    """

    seed: int = 0
    quick: bool = False


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` are printable cells (floats are formatted by
    :func:`repro.utils.tables.format_markdown_table`); ``notes`` carry
    the claim being instantiated and the scales used.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_markdown(self) -> str:
        """Render the result as a markdown section."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append(format_markdown_table(self.headers, self.rows))
        if self.notes:
            lines.append("")
            lines.extend(f"- {note}" for note in self.notes)
        return "\n".join(lines)


def accept_rate(flags: "list[bool]") -> float:
    """Fraction of ``True`` entries (tester acceptance-rate helper)."""
    if not flags:
        return float("nan")
    return sum(flags) / len(flags)
