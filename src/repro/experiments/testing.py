"""Tester experiments: T3, T4 (Theorems 3/4) and F3 (the testing gap).

Each instance's batch of independent trials runs as one
:class:`repro.api.HistogramFleet` — every trial is a fleet member with
its own generator, compiled in one pass and probed in lockstep.  A
fleet run is byte-identical to looping fresh sessions over the same
seeds (the fleet contract), and a fresh session's first tester call is
seed-for-seed identical to the one-shot entry point, so the tables are
unchanged while the trial batches ride the production path.
"""

from __future__ import annotations

from repro.api import HistogramFleet
from repro.core.params import TesterParams
from repro.distributions import families
from repro.distributions.perturb import perturb_within_pieces
from repro.distributions.property_distance import distance_to_k_histogram
from repro.experiments.harness import ExperimentConfig, ExperimentResult, accept_rate
from repro.utils.rng import spawn_rngs

L2_SCALE = 0.05
L1_PARAMS = TesterParams(num_sets=15, set_size=30_000)


def _trials_l2(dist, n, k, eps, rngs):
    """A batch of independent l2 tester trials as one fleet."""
    fleet = HistogramFleet([dist] * len(rngs), n, rngs=rngs, scale=L2_SCALE)
    return fleet.test_l2(k, eps)


def _trials_l1(dist, n, k, eps, rngs):
    """A batch of independent l1 tester trials as one fleet."""
    fleet = HistogramFleet([dist] * len(rngs), n, rngs=rngs)
    return fleet.test_l1(k, eps, params=L1_PARAMS)


def run_t3(config: ExperimentConfig) -> ExperimentResult:
    """T3 — Theorem 3: the l2 tester's two-sided guarantee.

    Claim: members accepted and eps-far (l2) instances rejected, each with
    probability >= 2/3.
    """
    n, k, eps = 256, 4, 0.25
    trials = 4 if config.quick else 12
    yes_cases = [
        ("random-4-hist", families.random_tiling_histogram(n, k, 21, min_piece=8)),
        ("uniform", families.uniform(n)),
        ("two-level(3 pieces)", families.two_level(n, heavy_start=64, heavy_length=32)),
    ]
    no_cases = [
        ("spikes(8)", families.spikes(n, 8)),
        ("spikes(12)+bg", families.spikes(n, 12, background_mass=0.2)),
    ]
    if config.quick:
        yes_cases, no_cases = yes_cases[:1], no_cases[:1]
    result = ExperimentResult(
        "T3",
        "l2 tester confusion table (Theorem 3)",
        ["instance", "side", "l2 dist to property", "accept rate", "target"],
        notes=[
            f"n={n}, k={k}, epsilon={eps}, scale={L2_SCALE}, {trials} trials each",
            "Claim: accept rate >= 2/3 on members, <= 1/3 on eps-far instances.",
        ],
    )
    rngs = spawn_rngs(config.seed + 4, (len(yes_cases) + len(no_cases)) * trials)
    idx = 0
    for name, dist in yes_cases:
        verdicts = _trials_l2(dist, n, k, eps, rngs[idx : idx + trials])
        idx += trials
        flags = [v.accepted for v in verdicts]
        dd = distance_to_k_histogram(dist, k, norm="l2")
        result.rows.append([name, "YES", dd, accept_rate(flags), ">= 2/3"])
    for name, dist in no_cases:
        verdicts = _trials_l2(dist, n, k, eps, rngs[idx : idx + trials])
        idx += trials
        flags = [v.accepted for v in verdicts]
        dd = distance_to_k_histogram(dist, k, norm="l2")
        result.rows.append([name, "NO", dd, accept_rate(flags), "<= 1/3"])
    return result


def run_t4(config: ExperimentConfig) -> ExperimentResult:
    """T4 — Theorem 4: the l1 tester's two-sided guarantee."""
    from repro.core.lower_bound import no_instance, yes_instance

    n, k, eps = 256, 4, 0.25
    trials = 4 if config.quick else 12
    yes_cases = [
        ("random-4-hist", families.random_tiling_histogram(n, k, 22, min_piece=8)),
        ("thm5-yes", yes_instance(n, k)),
    ]
    no_cases = [
        ("sawtooth", families.sawtooth(n)),
        ("thm5-no", no_instance(n, k, rng=23)),
    ]
    if config.quick:
        yes_cases, no_cases = yes_cases[:1], no_cases[:1]
    result = ExperimentResult(
        "T4",
        "l1 tester confusion table (Theorem 4)",
        ["instance", "side", "l1 dist lower bd", "accept rate", "target"],
        notes=[
            f"n={n}, k={k}, epsilon={eps}, params r={L1_PARAMS.num_sets} m={L1_PARAMS.set_size}, "
            f"{trials} trials each",
            "Distances are the certified DP lower bound on l1 distance to the property.",
        ],
    )
    rngs = spawn_rngs(config.seed + 5, (len(yes_cases) + len(no_cases)) * trials)
    idx = 0
    for side, cases, target in (("YES", yes_cases, ">= 2/3"), ("NO", no_cases, "<= 1/3")):
        for name, dist in cases:
            verdicts = _trials_l1(dist, n, k, eps, rngs[idx : idx + trials])
            idx += trials
            flags = [v.accepted for v in verdicts]
            dd = distance_to_k_histogram(dist, k, norm="l1")
            result.rows.append([name, side, dd, accept_rate(flags), target])
    return result


def run_f3(config: ExperimentConfig) -> ExperimentResult:
    """F3 — rejection rate vs distance (the testing gap curve).

    Starting from an exact 4-histogram, zigzag perturbations sweep the l1
    distance to the property from 0 upwards; the tester's rejection rate
    should rise from ~0 to ~1 through the gap.
    """
    n, k, eps = 256, 4, 0.25
    trials = 4 if config.quick else 10
    amplitudes = [0.0, 0.2, 0.5] if config.quick else [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7]
    base = families.random_tiling_histogram(n, k, 31, min_piece=16)
    result = ExperimentResult(
        "F3",
        "l1 tester rejection rate vs distance to the property",
        ["amplitude", "l1 dist lower bd", "reject rate"],
        notes=[
            f"n={n}, k={k}, epsilon={eps}; zigzag perturbation of a random 4-histogram",
            "Shape: ~0 at distance 0, ~1 well past epsilon; the gap sits near eps.",
        ],
    )
    rngs = spawn_rngs(config.seed + 6, len(amplitudes) * trials)
    idx = 0
    for amplitude in amplitudes:
        dist = perturb_within_pieces(base, amplitude)
        dd = distance_to_k_histogram(dist, k, norm="l1")
        verdicts = _trials_l1(dist, n, k, eps, rngs[idx : idx + trials])
        idx += trials
        rejects = [not v.accepted for v in verdicts]
        result.rows.append([amplitude, dd, accept_rate(rejects)])
    return result
