"""Command-line entry point: ``python -m repro.experiments ...``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.harness import ExperimentConfig
from repro.experiments.registry import experiment_ids, get_experiment, run_experiment
from repro.utils.timing import Timer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the reproduction's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="e.g. T1, F4")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--quick", action="store_true", help="smaller grids")

    sub.add_parser("list", help="list experiments")

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--seed", type=int, default=0)
    everything.add_argument("--quick", action="store_true")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI body; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            title, _ = get_experiment(experiment_id)
            print(f"{experiment_id:4s} {title}")
        return 0

    config = ExperimentConfig(seed=args.seed, quick=args.quick)
    ids = (
        [args.experiment_id] if args.command == "run" else experiment_ids()
    )
    for experiment_id in ids:
        with Timer() as timer:
            result = run_experiment(experiment_id, config)
        print(result.to_markdown())
        print(f"\n_[{experiment_id} completed in {timer.elapsed:.1f}s]_\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
