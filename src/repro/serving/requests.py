"""The serving layer's wire types: requests, responses, error taxonomy.

A :class:`Request` names a stream and an operation — ``ingest``,
``learn``, ``test`` (l1/l2), ``uniformity``, ``identity``, ``min_k``, or
``selectivity`` — with the operation's parameters normalised into
hashable fields.  Two things make the shape load-bearing for the
coalescer (:mod:`repro.serving.service`):

* :attr:`Request.signature` — the operation identity *excluding* the
  stream and any per-request payload.  Requests sharing a signature are
  the ones one fleet batch op can serve; requests on the same stream
  with different signatures must never be reordered (their pool draws
  interleave on the member's generator).
* :attr:`Request.mutates` — whether the request changes stream state
  (``ingest`` absorbs observations; ``learn`` at the maintainer's
  configured point commits the stored histogram).  A mutating request
  is an ordering barrier for its stream, and fences the response cache.

A :class:`Response` is the structured answer: ``ok`` plus the result
object, or a taxonomy-coded error (:func:`error_payload`) mapping the
library's exceptions — :class:`~repro.errors.EmptyStreamError`,
:class:`~repro.errors.InvalidParameterError`,
:class:`~repro.errors.OverloadedError`, ... — to stable codes a remote
client can dispatch on.  :func:`canonical` renders requests, responses,
and every result object the library returns into plain hashable
structures; the conformance suite compares coalesced and
request-at-a-time serving through it, byte for byte.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    EmptyStreamError,
    InjectedFaultError,
    InsufficientSamplesError,
    InvalidParameterError,
    OverloadedError,
    ReproError,
    ServiceClosedError,
    SlabUnavailableError,
    SnapshotError,
    UnknownStreamError,
)
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram

OPS = (
    "ingest",
    "learn",
    "test",
    "uniformity",
    "identity",
    "min_k",
    "selectivity",
)

#: Non-mutating ops whose responses are a pure function of the stream's
#: sketch state — the response cache may serve repeats of these at
#: admission, keyed by the stream's generation epoch.  ``learn`` is
#: excluded: it can commit the stored histogram (a mutation), and its
#: result legitimately reflects that commit.
CACHEABLE_OPS = ("test", "uniformity", "identity", "min_k", "selectivity")


@dataclass(frozen=True)
class Request:
    """One client request against a named stream.

    Build through the classmethod constructors (:meth:`ingest`,
    :meth:`test`, ...) rather than the raw dataclass — they normalise
    payloads (ingest values become an int tuple, so requests stay
    hashable and traces stay byte-comparable) and keep unused fields
    ``None``.
    """

    op: str
    stream: str
    k: int | None = None
    epsilon: float | None = None
    norm: str | None = None
    max_k: int | None = None
    start: int | None = None
    stop: int | None = None
    reference: str | None = None
    values: tuple | None = None
    #: Latency budget in milliseconds, counted from admission; ``None``
    #: = no deadline.  Excluded from :attr:`signature` — a deadline
    #: changes *whether* a request runs, never which batch op serves it.
    deadline_ms: float | None = None

    # ----------------------------- constructors ------------------- #

    @classmethod
    def ingest(cls, stream: str, values) -> "Request":
        """Absorb a batch of observations into ``stream``'s reservoir."""
        # tolist() keeps the payload hashable without coercing: a float
        # batch stays float, so the maintainer's one-pass dtype/range
        # validation still sees it (and rejects it with member context).
        flat = np.asarray(values).ravel().tolist()
        return cls(op="ingest", stream=stream, values=tuple(flat))

    @classmethod
    def learn(cls, stream: str, k: int | None = None, epsilon: float | None = None) -> "Request":
        """Learn a k-histogram summary of ``stream`` now."""
        return cls(op="learn", stream=stream, k=k, epsilon=epsilon)

    @classmethod
    def test(
        cls,
        stream: str,
        k: int | None = None,
        epsilon: float | None = None,
        *,
        norm: str = "l2",
    ) -> "Request":
        """Algorithm 2's tiling k-histogram verdict (``norm`` l1 or l2)."""
        return cls(op="test", stream=stream, k=k, epsilon=epsilon, norm=norm)

    @classmethod
    def uniformity(cls, stream: str, epsilon: float | None = None) -> "Request":
        """The [GR00] collision uniformity verdict."""
        return cls(op="uniformity", stream=stream, epsilon=epsilon)

    @classmethod
    def identity(
        cls, stream: str, reference: str, epsilon: float | None = None
    ) -> "Request":
        """l2 identity verdict against a reference registered by name."""
        return cls(op="identity", stream=stream, reference=reference, epsilon=epsilon)

    @classmethod
    def min_k(
        cls,
        stream: str,
        epsilon: float | None = None,
        *,
        max_k: int | None = None,
        norm: str = "l1",
    ) -> "Request":
        """Smallest credible bucket count for ``stream``."""
        return cls(op="min_k", stream=stream, epsilon=epsilon, max_k=max_k, norm=norm)

    @classmethod
    def selectivity(cls, stream: str, start: int, stop: int) -> "Request":
        """Estimated mass of ``[start, stop)`` under ``stream``'s summary."""
        return cls(op="selectivity", stream=stream, start=int(start), stop=int(stop))

    # ----------------------------- coalescing keys ---------------- #

    @property
    def signature(self) -> tuple:
        """The batchable operation identity (stream excluded).

        Requests with equal signatures are answered by one fleet batch
        op; per-request payloads that do not change *which* batch op
        runs (ingest values, selectivity bounds) are excluded, so one
        batch can carry many of them.
        """
        if self.op == "ingest":
            return ("ingest",)
        if self.op == "selectivity":
            return ("selectivity",)
        if self.op == "learn":
            return ("learn", self.k, self.epsilon)
        if self.op == "test":
            return ("test", self.norm, self.k, self.epsilon)
        if self.op == "uniformity":
            return ("uniformity", self.epsilon)
        if self.op == "identity":
            return ("identity", self.reference, self.epsilon)
        if self.op == "min_k":
            return ("min_k", self.norm, self.epsilon, self.max_k)
        raise InvalidParameterError(f"unknown op {self.op!r}")

    @property
    def mutates(self) -> bool:
        """Whether this request may change its stream's state.

        ``ingest`` always does; ``learn`` does when it runs at the
        maintainer's configured operating point (the stored histogram —
        which ``selectivity`` reads — is refreshed).  The service treats
        every ``learn`` as mutating: a conservative fence costs a cache
        miss, a missed fence would serve a stale byte.
        """
        return self.op in ("ingest", "learn")

    @property
    def cache_key(self) -> tuple:
        """The response-cache identity of a cacheable request.

        :attr:`signature` plus the per-request payload fields the
        signature deliberately drops (selectivity bounds).  Only defined
        for :data:`CACHEABLE_OPS`; deadlines stay excluded — they gate
        *whether* a request runs, never what it answers.
        """
        if self.op == "selectivity":
            return ("selectivity", self.start, self.stop)
        return self.signature

    def with_deadline(self, deadline_ms: float | None) -> "Request":
        """This request carrying a latency budget (or shedding one).

        A non-``None`` budget must be a finite number of milliseconds,
        ``>= 0``; zero is legal and means "already expired", which the
        deadline tests use to exercise the rejection path
        deterministically.
        """
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
            if not np.isfinite(deadline_ms) or deadline_ms < 0:
                raise InvalidParameterError(
                    f"deadline_ms must be finite and >= 0, got {deadline_ms!r}"
                )
        return dataclasses.replace(self, deadline_ms=deadline_ms)


@dataclass(frozen=True)
class Response:
    """The structured answer to one :class:`Request`."""

    ok: bool
    op: str
    stream: str
    result: object | None = None
    error: "tuple | None" = None  # (code, message, retry_after)

    @property
    def error_code(self) -> str | None:
        """The taxonomy code (``"empty_stream"``, ...) or ``None``."""
        return self.error[0] if self.error is not None else None

    @property
    def retry_after(self) -> float | None:
        """Backoff hint in seconds, when the error carries one."""
        return self.error[2] if self.error is not None else None


# ------------------------------------------------------------------ #
# error taxonomy
# ------------------------------------------------------------------ #

# Most-derived first: the first match wins, so the specific serving
# codes shadow the broad InvalidParameterError bucket they subclass.
_TAXONOMY: tuple[tuple[type, str], ...] = (
    (EmptyStreamError, "empty_stream"),
    (UnknownStreamError, "unknown_stream"),
    (OverloadedError, "overloaded"),
    (ServiceClosedError, "service_closed"),
    (DeadlineExceededError, "deadline_exceeded"),
    (InjectedFaultError, "injected_fault"),
    (InsufficientSamplesError, "insufficient_samples"),
    (InvalidParameterError, "invalid_parameter"),
    (SlabUnavailableError, "slab_unavailable"),
    (SnapshotError, "snapshot_error"),
    (ReproError, "internal"),
)


def error_code(exc: BaseException) -> str:
    """The stable taxonomy code for one library exception."""
    for cls, code in _TAXONOMY:
        if isinstance(exc, cls):
            return code
    raise TypeError(
        f"only ReproError subclasses map to the serving taxonomy, got "
        f"{type(exc).__name__}"
    )


def error_payload(exc: ReproError) -> tuple:
    """The ``Response.error`` triple for one library exception."""
    retry_after = getattr(exc, "retry_after", None)
    return (error_code(exc), str(exc), retry_after)


def error_response(request: Request, exc: ReproError) -> Response:
    """A failed :class:`Response` for ``request`` carrying ``exc``."""
    return Response(
        ok=False, op=request.op, stream=request.stream, error=error_payload(exc)
    )


# ------------------------------------------------------------------ #
# canonical form
# ------------------------------------------------------------------ #


def canonical(value: object) -> object:
    """``value`` as nested plain tuples — equality is byte-equality.

    Handles every result object the serving layer returns (learn/test/
    selection/uniformity/identity results, histograms, floats, ints)
    plus requests and responses themselves.  Two serving runs whose
    canonical response traces are equal returned byte-identical
    verdicts, histograms, and query logs.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, tuple(value.ravel().tolist()))
    if isinstance(value, TilingHistogram):
        return (
            "TilingHistogram",
            tuple(value.boundaries.tolist()),
            tuple(value.values.tolist()),
        )
    if isinstance(value, PriorityHistogram):
        return (
            "PriorityHistogram",
            value.n,
            tuple(
                (piece.interval.start, piece.interval.stop, piece.value, piece.priority)
                for piece in value.pieces()
            ),
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (field.name, canonical(getattr(value, field.name)))
                for field in dataclasses.fields(value)
            ),
        )
    if isinstance(value, (list, tuple)):
        return tuple(canonical(item) for item in value)
    if isinstance(value, dict):
        return tuple(
            (key, canonical(item)) for key, item in sorted(value.items())
        )
    raise TypeError(f"no canonical form for {type(value).__name__}")
