"""A seeded, skewed workload driver for the serving layer.

Real serving traffic is nothing like a uniform sweep: a few hot tenants
dominate (heavy-tailed popularity), arrivals clump into bursts, and
clients chain operations ("that test failed — relearn the summary").
:class:`WorkloadGenerator` reproduces those three structures
deterministically from a seed:

* **Pareto-skewed popularity** — stream ``rank r`` is drawn with weight
  ``(r + 1) ** -alpha`` under a seeded rank-to-stream permutation, so
  the hot set is stable for a seed but not always streams ``0..h``.
* **temporal bursts** — every ``burst_every`` requests, a *refresh
  storm* of ``burst_len`` requests arrives with gaps shrunk by
  ``burst_boost``: a popularity-sampled cohort of distinct streams
  flushes new observations (an ingest wave) and is then re-probed (a
  probe wave over the same cohort) — the synchronized
  tick-then-requery rhythm of dashboard-style serving.
* **correlated chains** — a ``test`` request is followed, with
  probability ``chain_after_test``, by a ``learn`` on the same stream
  with no gap: the pessimistic relearn-on-failure client.  (The chain
  fires independently of the eventual verdict — a trace is a pure
  function of the seed, never of service state.)

The trace is a list of ``(at_us, Request)`` events.  Determinism is
load-bearing twice over: the Hypothesis suite pins byte-identical
traces per seed (:func:`trace_bytes`), and the conformance suite
replays one trace through differently-configured services expecting
byte-identical response logs.

:func:`replay` is the closed-loop driver: ``clients`` concurrent
submitters share the trace in order (admission order equals trace
order — each take-and-enqueue happens without yielding to the loop),
retry overload rejections after the advertised ``retry_after``, and
record per-request latency into a :class:`ReplayReport` with p50/p99
and throughput — the numbers ``BENCH_serve.json`` tracks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError, OverloadedError
from repro.serving.requests import CACHEABLE_OPS, Request, Response, canonical
from repro.serving.service import HistogramService
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class WorkloadConfig:
    """The workload's shape knobs (all defaults are bench-sized down).

    Attributes
    ----------
    streams / requests / seed:
        Fleet width, trace length after warmup, and the seed that
        fixes everything.
    n / k / epsilon:
        The domain and operating point requests assume (must match the
        service under test).
    alpha:
        Pareto popularity exponent; larger concentrates traffic on
        fewer streams.
    mix:
        ``(op, weight)`` pairs for the request mix.  ``identity``
        requests reference the name in ``reference``; register that
        distribution on the service before replaying.
    l1_fraction:
        Fraction of ``test`` / ``min_k`` requests probing the l1 norm
        (the rest are l2) — two tester signatures keeps the coalescer
        honest.
    chain_after_test:
        Probability a ``test`` is chained with an immediate ``learn``
        on the same stream.
    requery_bias:
        Probability a probe *re-issues* a recently issued probe
        verbatim (same stream, same parameters) instead of drawing a
        fresh one — the dashboard-refresh client whose repeats the
        response cache absorbs.  ``0.0`` (the default) consumes zero
        extra rng draws, so existing seeded traces stay byte-identical.
    burst_every / burst_len / burst_boost:
        Storm period and length (in requests) and the gap-shrink
        factor inside a storm.  A storm spends its first half as an
        ingest wave over a popularity-sampled cohort of distinct
        streams and the rest re-probing that cohort (ops drawn from
        the probe part of ``mix``).
    base_gap_us:
        Mean inter-arrival gap outside bursts, microseconds.
    ingest_batch:
        Values per ingest request.
    warmup:
        Prefix the trace with one ingest per stream so probes never
        face an all-quiet fleet.
    warmup_batch:
        Values per *warmup* ingest (default ``ingest_batch``).  Sized
        to the reservoir capacity it pre-fills every stream, so the
        steady state — full reservoirs, capacity-sized pools — starts
        at event zero instead of storms in.
    deadline_ms:
        Latency budget stamped on every post-warmup request (``None``
        = no deadlines).  Warmup ingests stay deadline-free so the
        fleet always warms deterministically.  A trace with deadlines
        is still byte-stable, but its *responses* depend on serving
        speed — keep deadlines off when pinning response traces.
    """

    streams: int = 64
    requests: int = 512
    seed: int = 0
    n: int = 4096
    k: int = 8
    epsilon: float = 0.3
    alpha: float = 1.2
    mix: tuple = (
        ("ingest", 5.0),
        ("test", 3.0),
        ("selectivity", 2.0),
        ("learn", 1.0),
        ("min_k", 0.5),
        ("uniformity", 0.5),
        ("identity", 0.0),
    )
    l1_fraction: float = 0.2
    chain_after_test: float = 0.35
    requery_bias: float = 0.0
    burst_every: int = 128
    burst_len: int = 32
    burst_boost: float = 8.0
    base_gap_us: float = 200.0
    ingest_batch: int = 64
    warmup: bool = True
    warmup_batch: int | None = None
    deadline_ms: float | None = None
    reference: str = "baseline"

    def __post_init__(self) -> None:
        if self.streams < 1 or self.requests < 0:
            raise InvalidParameterError(
                f"need streams >= 1 and requests >= 0, got "
                f"streams={self.streams}, requests={self.requests}"
            )
        if self.alpha <= 0:
            raise InvalidParameterError(f"alpha must be > 0, got {self.alpha!r}")
        known = {op for op, _ in self.mix}
        unknown = known - {
            "ingest", "learn", "test", "uniformity", "identity",
            "min_k", "selectivity",
        }
        if unknown:
            raise InvalidParameterError(f"unknown ops in mix: {sorted(unknown)}")
        if not any(weight > 0 for _, weight in self.mix):
            raise InvalidParameterError("mix needs at least one positive weight")
        if not 0.0 <= self.requery_bias <= 1.0:
            raise InvalidParameterError(
                f"requery_bias must be in [0, 1], got {self.requery_bias!r}"
            )


class WorkloadGenerator:
    """Deterministic trace factory for one :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig) -> None:
        self._config = config
        width = len(str(max(config.streams - 1, 0)))
        self._names = [f"s{i:0{width}d}" for i in range(config.streams)]
        rng = as_rng(config.seed)
        # Popularity: Pareto weights over ranks, then a seeded
        # permutation maps ranks onto streams so the hot set is
        # seed-dependent, not always the first streams.
        ranks = np.arange(config.streams, dtype=np.float64)
        weights = (ranks + 1.0) ** -config.alpha
        weights /= weights.sum()
        order = rng.permutation(config.streams)
        popularity = np.empty(config.streams, dtype=np.float64)
        popularity[order] = weights
        self._popularity = popularity
        # Per-stream value model: a hotspot window each stream favours,
        # so summaries differ across streams and ingests keep
        # re-shaping them.
        self._hotspots = rng.integers(0, config.n, size=config.streams)
        self._hot_width = max(config.n // 32, 1)
        self._rng = rng

    @property
    def stream_names(self) -> list[str]:
        """The stream names the trace addresses, in member order."""
        return list(self._names)

    @property
    def popularity(self) -> np.ndarray:
        """Per-stream draw probability (the permuted Pareto weights)."""
        return self._popularity.copy()

    def _draw_stream(self, rng: np.random.Generator) -> int:
        return int(rng.choice(len(self._names), p=self._popularity))

    def _draw_values(
        self, rng: np.random.Generator, member: int, size: "int | None" = None
    ) -> np.ndarray:
        """An ingest batch: 70% hotspot window, 30% background."""
        config = self._config
        size = config.ingest_batch if size is None else size
        hot = rng.random(size) < 0.7
        values = rng.integers(0, config.n, size=size)
        offsets = rng.integers(0, self._hot_width, size=size)
        values[hot] = (self._hotspots[member] + offsets[hot]) % config.n
        return values.astype(np.int64)

    def _draw_range(self, rng: np.random.Generator) -> tuple[int, int]:
        config = self._config
        start = int(rng.integers(0, config.n))
        width = 1 + int(rng.integers(0, max(config.n // 8, 1)))
        return start, min(start + width, config.n)

    def trace(self) -> "list[tuple[float, Request]]":
        """The full event list ``[(at_us, request), ...]``, seeded.

        Calling :meth:`trace` twice on one generator returns equal
        traces (the generator reseeds itself); two generators with
        equal configs are byte-identical (:func:`trace_bytes`).
        """
        config = self._config
        rng = as_rng(config.seed + 1)
        events: list[tuple[float, Request]] = []
        at_us = 0.0
        if config.warmup:
            for member, name in enumerate(self._names):
                events.append(
                    (
                        at_us,
                        Request.ingest(
                            name,
                            self._draw_values(rng, member, config.warmup_batch),
                        ),
                    )
                )
        ops = [op for op, weight in config.mix if weight > 0]
        weights = np.asarray(
            [weight for _, weight in config.mix if weight > 0], dtype=np.float64
        )
        weights /= weights.sum()
        probe_ops = [op for op in ops if op != "ingest"]
        probe_weights = np.asarray(
            [weight for op, weight in config.mix if weight > 0 and op != "ingest"],
            dtype=np.float64,
        )
        if probe_ops:
            probe_weights /= probe_weights.sum()
        cohort: "np.ndarray | None" = None
        ingest_wave = max(config.burst_len // 2, 1)
        # The requery window: the last few cacheable probes, eligible
        # for verbatim replay under ``requery_bias``.  Bounded so the
        # repeat traffic stays *recent* (a cache-sized working set).
        recent: list[Request] = []
        issued = 0
        while issued < config.requests:
            position = issued % max(config.burst_every, 1)
            in_burst = position < config.burst_len
            if in_burst and position == 0:
                # A storm's cohort: distinct streams, hot ones first in
                # expectation (weighted sampling without replacement).
                size = min(config.streams, ingest_wave)
                cohort = rng.choice(
                    config.streams, size=size, replace=False, p=self._popularity
                )
            gap = rng.exponential(config.base_gap_us)
            if in_burst:
                gap /= config.burst_boost
            at_us += gap
            if in_burst and cohort is not None:
                member = int(cohort[position % len(cohort)])
                if position < ingest_wave:
                    op = "ingest"
                elif probe_ops:
                    op = probe_ops[int(rng.choice(len(probe_ops), p=probe_weights))]
                else:
                    op = ops[int(rng.choice(len(ops), p=weights))]
            else:
                member = self._draw_stream(rng)
                op = ops[int(rng.choice(len(ops), p=weights))]
            if (
                config.requery_bias
                and recent
                and op != "ingest"
                and rng.random() < config.requery_bias
            ):
                # The refresh client: re-issue a recent probe verbatim
                # (same stream, same parameters) — repeat traffic the
                # response cache can absorb.  Guarded so ``bias == 0``
                # consumes zero extra rng draws.
                request = recent[int(rng.integers(0, len(recent)))]
                op = request.op
                name = request.stream
            else:
                name = self._names[member]
                if op == "ingest":
                    request = Request.ingest(name, self._draw_values(rng, member))
                elif op == "learn":
                    request = Request.learn(name)
                elif op == "test":
                    norm = "l1" if rng.random() < config.l1_fraction else "l2"
                    request = Request.test(name, norm=norm)
                elif op == "uniformity":
                    request = Request.uniformity(name)
                elif op == "identity":
                    request = Request.identity(name, config.reference)
                elif op == "min_k":
                    norm = "l1" if rng.random() < config.l1_fraction else "l2"
                    request = Request.min_k(name, max_k=2 * config.k, norm=norm)
                else:  # selectivity
                    start, stop = self._draw_range(rng)
                    request = Request.selectivity(name, start, stop)
                if op in CACHEABLE_OPS:
                    recent.append(request)
                    if len(recent) > 32:
                        del recent[0]
            if config.deadline_ms is not None:
                request = request.with_deadline(config.deadline_ms)
            events.append((at_us, request))
            issued += 1
            if op == "test" and rng.random() < config.chain_after_test:
                # The pessimistic client: relearn right after the test,
                # same stream, no gap.  Chained learns ride the trace
                # budget like any other request.
                chained = Request.learn(name)
                if config.deadline_ms is not None:
                    chained = chained.with_deadline(config.deadline_ms)
                events.append((at_us, chained))
                issued += 1
        return events


def trace_bytes(trace: "list[tuple[float, Request]]") -> bytes:
    """A byte-stable rendering of a trace (for determinism pins)."""
    return repr(
        tuple((at_us, canonical(request)) for at_us, request in trace)
    ).encode()


@dataclass(frozen=True)
class ReplayReport:
    """What one closed-loop replay measured."""

    requests: int
    ok: int
    errors: "tuple[tuple[str, int], ...]"
    rejected: int
    retried: int
    wall_s: float
    throughput_rps: float
    p50_us: float
    p99_us: float
    responses: "tuple[Response, ...] | None" = field(default=None, repr=False)

    @property
    def error_counts(self) -> dict[str, int]:
        """Taxonomy code -> count, as a dict."""
        return dict(self.errors)


#: Exponent cap for overload backoff: delays grow at most ``2 ** 5`` =
#: 32x the advertised ``retry_after``, so a long retry budget (the
#: storm benches run ``max_retries=50``) cannot sleep for hours.
_BACKOFF_CAP = 5


async def replay(
    service: HistogramService,
    trace: "list[tuple[float, Request]]",
    *,
    clients: int = 16,
    max_retries: int = 8,
    retry_seed: int = 0,
    collect: bool = False,
) -> ReplayReport:
    """Drive ``trace`` through ``service`` with a closed client loop.

    ``clients`` submitters pull the next trace event in order —
    taking an event and entering ``submit`` happens without yielding,
    so the *admission* order is exactly the trace order no matter how
    many clients run; concurrency shows up as how many requests are
    in flight (and so how much the coalescer can batch), not as
    reordering.

    Overload rejections back off *exponentially with seeded jitter*:
    retry ``a`` sleeps ``retry_after * 2**min(a, 5) * U`` with ``U``
    drawn uniformly from ``[0.5, 1.5)`` off ``retry_seed`` — growth
    keeps a storm of rejected clients from hammering a saturated
    admission queue in lockstep, jitter de-synchronises their
    re-arrivals, and the seed keeps the sleep schedule replayable.
    Retries stop after ``max_retries`` attempts.

    With ``collect=True`` the report carries every response in trace
    order — the conformance suite's byte-identity input.
    """
    if clients < 1:
        raise InvalidParameterError(f"clients must be >= 1, got {clients}")
    loop = asyncio.get_running_loop()
    backoff_rng = as_rng(retry_seed)
    cursor = 0
    latencies: list[float] = []
    responses: "list[Response | None]" = [None] * len(trace) if collect else []
    ok = 0
    rejected = 0
    retried = 0
    failures: dict[str, int] = {}

    async def client() -> None:
        nonlocal cursor, ok, rejected, retried
        while True:
            if cursor >= len(trace):
                return
            index = cursor
            cursor += 1
            _, request = trace[index]
            started = loop.time()
            response = None
            attempts = 0
            while True:
                try:
                    response = await service.submit(request)
                except OverloadedError as exc:
                    rejected += 1
                    if attempts >= max_retries:
                        failures["overloaded"] = failures.get("overloaded", 0) + 1
                        break
                    delay = (
                        exc.retry_after
                        * 2.0 ** min(attempts, _BACKOFF_CAP)
                        * (0.5 + backoff_rng.random())
                    )
                    attempts += 1
                    retried += 1
                    await asyncio.sleep(delay)
                    continue
                break
            latencies.append(loop.time() - started)
            if response is not None:
                if collect:
                    responses[index] = response
                if response.ok:
                    ok += 1
                else:
                    code = response.error_code
                    failures[code] = failures.get(code, 0) + 1

    started = loop.time()
    await asyncio.gather(*(client() for _ in range(min(clients, max(len(trace), 1)))))
    wall_s = loop.time() - started
    lat_us = np.asarray(latencies, dtype=np.float64) * 1e6
    return ReplayReport(
        requests=len(trace),
        ok=ok,
        errors=tuple(sorted(failures.items())),
        rejected=rejected,
        retried=retried,
        wall_s=wall_s,
        throughput_rps=(len(trace) / wall_s) if wall_s > 0 else float("inf"),
        p50_us=float(np.percentile(lat_us, 50)) if lat_us.size else 0.0,
        p99_us=float(np.percentile(lat_us, 99)) if lat_us.size else 0.0,
        responses=tuple(responses) if collect else None,
    )
