"""`HistogramService`: request coalescing over a maintained fleet.

The fleet layers answer *batches* fast — pooled draws, stacked sort-free
compiles, lockstep Algorithm-2 searches — but a serving deployment
receives *requests*: concurrent connections each asking one question of
one named stream.  This module is the layer between the two:

* **admission** — :meth:`HistogramService.submit` validates the stream
  name and enqueues the request on a bounded admission queue; a full
  queue is an explicit :class:`~repro.errors.OverloadedError` with a
  ``retry_after`` hint (backpressure, not silent buffering).
* **coalescing** — a single collector task drains the queue in windows
  (up to ``max_batch`` requests, lingering at most ``max_linger_us``
  for stragglers once one request is in hand) and partitions each
  window into *hazard-safe* batches: requests sharing an operation
  signature fan into one :class:`~repro.streaming.FleetMaintainer`
  batch op, while requests on the same stream never reorder across a
  different-signature request (their pool draws interleave on the
  member's private generator, so cross-signature order is what keeps
  results replayable).  Duplicate in-window requests share one
  execution.
* **response caching** — repeat non-mutating requests are served at
  admission from a bounded LRU keyed by
  ``(stream, generation, request identity)``.  The generation epoch
  (:meth:`~repro.streaming.FleetMaintainer.generation`) moves on every
  state mutation, so a cached hit is byte-identical to a cold execution
  by construction; a pending ingest/learn on a stream fences later
  reads of that stream until it resolves, preserving per-stream
  ordering.
* **backpressure-safe shutdown** — :meth:`close` stops admission
  (later submits raise :class:`~repro.errors.ServiceClosedError`),
  drains the backlog, and closes the executor the service owns.

The binding contract mirrors every engine PR before it: for any
``(max_batch, max_linger_us, workers)`` choice, the canonical response
trace (:func:`repro.serving.requests.canonical`) is **byte-identical**
to request-at-a-time serving (``max_batch=1``) of the same admission
order — verdicts, histograms, and flatness query logs included.  The
speedup is real but free of semantics: ``BENCH_serve.json`` tracks it.
"""

from __future__ import annotations

import asyncio
import os
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.api.shard import ParallelExecutor
from repro.core.params import GreedyParams, TesterParams
from repro.errors import (
    DeadlineExceededError,
    EmptyStreamError,
    InvalidParameterError,
    OverloadedError,
    ReproError,
    ServiceClosedError,
    SnapshotError,
    UnknownStreamError,
)
from repro.histograms.intervals import Interval
from repro.serving.requests import (
    CACHEABLE_OPS,
    OPS,
    Request,
    Response,
    error_response,
)
from repro.streaming.fleet import FleetMaintainer
from repro.utils.faults import FaultPlan

_STOP = object()

# A delta chain this deep triggers a full "compaction" checkpoint: the
# next write re-writes every slab into ``service.snap`` and prunes the
# delta files, so restore cost and corruption surface stay bounded.
_COMPACT_EVERY = 8


@dataclass(frozen=True)
class ServiceConfig:
    """The serving layer's knobs.

    Attributes
    ----------
    max_batch:
        Largest admission window (and so largest fleet batch) the
        coalescer forms.  ``1`` disables coalescing — the
        request-at-a-time reference the conformance suite compares
        against.
    max_linger_us:
        After the first request of a window arrives, how long (in
        microseconds) the coalescer waits for stragglers before
        serving a short window.  ``0`` serves whatever is already
        queued without waiting.
    max_queue:
        Admission queue bound; a submit beyond it is rejected with
        :class:`~repro.errors.OverloadedError`.
    retry_after_s:
        The backoff hint (seconds) carried by overload rejections.
    cache_capacity:
        Bound on the response cache (entries); ``0`` disables it.  The
        cache serves repeat non-mutating requests at admission, keyed by
        ``(stream, generation, request identity)`` — an ingest or learn
        bumps the stream's generation and structurally orphans its
        entries, so a hit is always byte-identical to a cold execution.
    """

    max_batch: int = 32
    max_linger_us: float = 500.0
    max_queue: int = 1024
    retry_after_s: float = 0.05
    cache_capacity: int = 256

    def __post_init__(self) -> None:
        if int(self.max_batch) != self.max_batch or self.max_batch < 1:
            raise InvalidParameterError(
                f"max_batch must be a positive integer, got {self.max_batch!r}"
            )
        if self.max_linger_us < 0:
            raise InvalidParameterError(
                f"max_linger_us must be >= 0, got {self.max_linger_us!r}"
            )
        if int(self.max_queue) != self.max_queue or self.max_queue < 1:
            raise InvalidParameterError(
                f"max_queue must be a positive integer, got {self.max_queue!r}"
            )
        if self.retry_after_s < 0:
            raise InvalidParameterError(
                f"retry_after_s must be >= 0, got {self.retry_after_s!r}"
            )
        if int(self.cache_capacity) != self.cache_capacity or self.cache_capacity < 0:
            raise InvalidParameterError(
                f"cache_capacity must be a non-negative integer, got "
                f"{self.cache_capacity!r}"
            )


class HistogramService:
    """Asyncio front end over a :class:`~repro.streaming.FleetMaintainer`.

    Parameters
    ----------
    streams:
        The hosted stream names, one fleet member each (order fixes the
        member indices).
    n / k / epsilon:
        The shared domain size and the maintainer's default operating
        point, as in :class:`~repro.streaming.FleetMaintainer`.
    config:
        The :class:`ServiceConfig` batching/backpressure knobs.
    references:
        Named reference distributions identity requests resolve against
        (``Request.identity(stream, "baseline", ...)``); more can be
        registered later via :meth:`register_reference`.
    workers:
        ``> 1`` builds a :class:`~repro.api.ParallelExecutor` the
        service *owns* — member compiles fan across its fork pool, and
        :meth:`close` shuts it down.  Mutually exclusive with
        ``executor``.
    executor:
        A caller-owned executor to share instead; the service will not
        close it.
    max_respawns / faults:
        Fault-tolerance knobs for the executor the service owns
        (``workers > 1``): how many pool respawns before it degrades to
        inline execution, and an optional test-only
        :class:`~repro.utils.faults.FaultPlan` chaos seam.  Both require
        the service to own its executor — a caller-owned executor
        carries its own settings.
    reservoir_capacity / refresh_every / params / engine /
    tester_engine / rng:
        Forwarded to the maintainer.
    snapshot_dir:
        Directory for warm-start checkpoints (created if missing).  At
        construction the service tries to restore
        ``<snapshot_dir>/service.snap``; success warm-starts the whole
        maintainer tree (:attr:`warm_started` turns true), and *any*
        restore failure — no file yet, corrupt or truncated file, a
        configuration mismatch — records its reason
        (:attr:`restore_error`) and falls back to a cold build, never a
        crash.  A draining :meth:`close` always writes a final
        checkpoint; crash-safe atomic writes mean a kill mid-checkpoint
        leaves the previous generation restorable.
    checkpoint_every:
        Additionally checkpoint after every this-many admission windows
        (between windows, under the collector — checkpoints never
        interleave with a batch).  ``None`` (default) checkpoints only
        at drain-close.  Requires ``snapshot_dir``.  Windows in which no
        stream's generation moved (only rejected, expired, or repeat
        read traffic) skip the write — checkpoint cost follows churn,
        not wall-clock.
    checkpoint_mode:
        ``"full"`` (default) re-writes every slab each checkpoint.
        ``"delta"`` writes differential checkpoints: only slabs whose
        owning member's generation moved since the parent snapshot are
        re-written, unchanged payloads are carried as references into
        the parent file, and every ``_COMPACT_EVERY`` links a full
        compaction snapshot re-bases the chain (pruning the delta
        files).  A delta that cannot be expressed against its parent
        falls back to a full write — self-healing, never an error.
        Requires ``snapshot_dir``.

    Use as an async context manager, or call :meth:`start` /
    :meth:`close` explicitly.  All execution happens on the event-loop
    thread — the service is a batching layer, not a thread pool; its
    concurrency win is turning queued requests into fleet ops.
    """

    def __init__(
        self,
        streams: Sequence[str],
        n: int,
        k: int,
        epsilon: float = 0.25,
        *,
        config: ServiceConfig | None = None,
        references: "Mapping[str, object] | None" = None,
        workers: int = 1,
        executor: "ParallelExecutor | None" = None,
        max_respawns: int | None = None,
        faults: "FaultPlan | None" = None,
        reservoir_capacity: int = 4096,
        refresh_every: int | None = None,
        params: GreedyParams | None = None,
        tester_params: TesterParams | None = None,
        engine: str = "lockstep",
        tester_engine: str = "compiled",
        rng: "int | None | np.random.Generator" = None,
        snapshot_dir: "str | os.PathLike | None" = None,
        checkpoint_every: int | None = None,
        checkpoint_mode: str = "full",
    ) -> None:
        streams = list(streams)
        if not streams:
            raise InvalidParameterError("HistogramService needs at least one stream")
        if len(set(streams)) != len(streams):
            raise InvalidParameterError("stream names must be unique")
        if workers != 1 and executor is not None:
            raise InvalidParameterError("pass workers or executor, not both")
        self._names = streams
        self._index = {name: member for member, name in enumerate(streams)}
        self._config = config if config is not None else ServiceConfig()
        self._references = dict(references) if references else {}
        self._owns_executor = executor is None and workers > 1
        if not self._owns_executor and (max_respawns is not None or faults is not None):
            raise InvalidParameterError(
                "max_respawns/faults configure the executor the service owns; "
                "they require workers > 1 and no caller-owned executor"
            )
        if self._owns_executor:
            executor_kwargs = {} if max_respawns is None else {"max_respawns": max_respawns}
            self._executor = ParallelExecutor(workers, faults=faults, **executor_kwargs)
        else:
            self._executor = executor
        self._maintainer = FleetMaintainer(
            len(streams),
            n,
            k,
            epsilon,
            reservoir_capacity=reservoir_capacity,
            refresh_every=refresh_every,
            params=params,
            engine=engine,
            tester_engine=tester_engine,
            rng=rng,
            executor=self._executor,
        )
        self._tester_params = tester_params
        self._n = int(n)
        self._queue: asyncio.Queue | None = None
        self._collector: asyncio.Task | None = None
        self._accepting = False
        self._stats = {
            "submitted": 0,
            "served": 0,
            "rejected": 0,
            "windows": 0,
            "batches": 0,
            "coalesced": 0,
            "largest_batch": 0,
            "deadline_hits": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "checkpoints": 0,
            "checkpoint_failures": 0,
            "checkpoint_bytes": 0,
        }
        self._cache: "OrderedDict[tuple, Response]" = OrderedDict()
        self._pending_mutations: dict[str, int] = {}
        if checkpoint_mode not in ("full", "delta"):
            raise InvalidParameterError(
                f"checkpoint_mode must be 'full' or 'delta', got "
                f"{checkpoint_mode!r}"
            )
        if checkpoint_mode == "delta" and snapshot_dir is None:
            raise InvalidParameterError("checkpoint_mode='delta' requires snapshot_dir")
        self._checkpoint_mode = checkpoint_mode
        if checkpoint_every is not None:
            if snapshot_dir is None:
                raise InvalidParameterError(
                    "checkpoint_every requires snapshot_dir"
                )
            if int(checkpoint_every) != checkpoint_every or checkpoint_every < 1:
                raise InvalidParameterError(
                    f"checkpoint_every must be a positive integer, got "
                    f"{checkpoint_every!r}"
                )
            checkpoint_every = int(checkpoint_every)
        self._snapshot_dir = (
            os.fspath(snapshot_dir) if snapshot_dir is not None else None
        )
        self._checkpoint_every = checkpoint_every
        self._warm_started = False
        self._restored_from: str | None = None
        self._restore_error: str | None = None
        # Delta-chain state.  ``_chain_parent`` is None until this
        # process writes its first checkpoint (always a full one — a
        # restored process's generation counters are not comparable to
        # the writer's), and ``_checkpoint_generations`` is the
        # per-member watermark the next delta diffs against.
        self._chain_parent: str | None = None
        self._chain_depth = 0
        self._delta_seq = 0
        self._checkpoint_generations: "list[int] | None" = None
        if self._snapshot_dir is not None:
            os.makedirs(self._snapshot_dir, exist_ok=True)
            self._delta_seq = self._scan_delta_seq()
            restore_path = self._latest_checkpoint_path()
            try:
                self._restore(restore_path)
            except SnapshotError as exc:
                # Graceful degradation: a missing, corrupt, truncated,
                # or mismatched snapshot means a cold start, never a
                # crash.  (A partial maintainer restore cannot leak —
                # restore raises before touching state at that layer.)
                self._restore_error = f"{exc.reason}: {exc}"
            else:
                self._warm_started = True
                self._restored_from = restore_path

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def streams(self) -> list[str]:
        """The hosted stream names, in member order."""
        return list(self._names)

    @property
    def maintainer(self) -> FleetMaintainer:
        """The underlying fleet maintainer (reservoirs, summaries)."""
        return self._maintainer

    @property
    def config(self) -> ServiceConfig:
        """The batching/backpressure knobs."""
        return self._config

    @property
    def snapshot_path(self) -> str | None:
        """Where checkpoints live (``None`` without ``snapshot_dir``)."""
        if self._snapshot_dir is None:
            return None
        return os.path.join(self._snapshot_dir, "service.snap")

    @property
    def warm_started(self) -> bool:
        """Whether construction restored state from a snapshot."""
        return self._warm_started

    @property
    def restored_from(self) -> str | None:
        """The checkpoint file the warm start restored — in delta mode
        the newest chain link, not the full parent (``None`` if cold)."""
        return self._restored_from

    @property
    def restore_error(self) -> str | None:
        """Why the warm-start restore fell back cold (``None`` if it didn't)."""
        return self._restore_error

    @property
    def stats(self) -> dict:
        """Serving counters plus per-phase learn timing buckets.

        ``timings`` mirrors the executor's cumulative
        compile/rescore/argmin/commit wall-clock
        (:meth:`~repro.api.ParallelExecutor.record_timing`); a purely
        serial service reports zeroed buckets.
        """
        stats: dict = dict(self._stats)
        if self._executor is not None:
            stats["timings"] = dict(self._executor.health()["timings"])
        else:
            stats["timings"] = {
                "compile": 0.0,
                "rescore": 0.0,
                "argmin": 0.0,
                "commit": 0.0,
            }
        return stats

    def health(self) -> dict:
        """One structured snapshot of service and executor health.

        ``stats`` are the serving counters (including ``deadline_hits``
        and ``rejected``); ``executor`` is the owned or shared
        executor's :meth:`~repro.api.ParallelExecutor.health` — respawn
        and degradation history — or ``None`` for a purely serial
        service.
        """
        return {
            "streams": len(self._names),
            "accepting": self._accepting,
            "warm_started": self._warm_started,
            "generations": self._maintainer.generations,
            "stats": self.stats,
            "executor": (
                self._executor.health() if self._executor is not None else None
            ),
        }

    def register_reference(self, name: str, reference: object) -> None:
        """Register a named reference for identity requests."""
        self._references[name] = reference

    # -------------------------------------------------------------- #
    # persistence
    # -------------------------------------------------------------- #

    def checkpoint(self) -> str:
        """Write one crash-safe snapshot of the whole maintainer tree.

        The write is temp-file + fsync + atomic rename, so a crash mid-
        checkpoint leaves the previous generation intact and restorable.
        In ``checkpoint_mode="delta"`` (with an in-process parent and a
        chain shorter than ``_COMPACT_EVERY``) only slabs whose owning
        member's generation moved since the parent are re-written; the
        rest ride as references into the parent file.  A delta that
        cannot be expressed (parent dropped a referenced slab) falls
        back to a full compaction write.  Raises
        :class:`~repro.errors.InvalidParameterError` without a
        ``snapshot_dir``; any write failure propagates (the periodic and
        drain-close call sites swallow it into the
        ``checkpoint_failures`` counter instead of killing serving).
        Returns the path actually written.
        """
        path = self.snapshot_path
        if path is None:
            raise InvalidParameterError(
                "checkpoint() requires snapshot_dir at construction"
            )
        from repro.persist import codec, format as persist_format

        maintainer_meta, slabs = codec.maintainer_state(self._maintainer)
        meta = {"streams": list(self._names), "maintainer": maintainer_meta}
        generations = self._maintainer.generations
        written: str | None = None
        if (
            self._checkpoint_mode == "delta"
            and self._chain_parent is not None
            and self._checkpoint_generations is not None
            and self._chain_depth < _COMPACT_EVERY
        ):
            changed = {
                f
                for f, (old, new) in enumerate(
                    zip(self._checkpoint_generations, generations)
                )
                if old != new
            }
            delta_slabs = {}
            unchanged = []
            for name, slab in slabs.items():
                owner = codec.slab_member(name)
                if owner is None or owner in changed:
                    delta_slabs[name] = slab
                else:
                    unchanged.append(name)
            delta_path = os.path.join(
                self._snapshot_dir, f"service-delta-{self._delta_seq + 1:06d}.snap"
            )
            try:
                persist_format.write_snapshot(
                    delta_path,
                    kind="service",
                    meta=meta,
                    slabs=delta_slabs,
                    parent=self._chain_parent,
                    unchanged=unchanged,
                )
            except SnapshotError:
                # The parent cannot back this delta (e.g. a referenced
                # slab vanished from its manifest) — self-heal by
                # compacting to a full snapshot below.
                pass
            else:
                written = delta_path
                self._delta_seq += 1
                self._chain_parent = delta_path
                self._chain_depth += 1
        if written is None:
            persist_format.write_snapshot(path, kind="service", meta=meta, slabs=slabs)
            written = path
            self._chain_parent = path
            self._chain_depth = 0
            self._prune_deltas()
        self._checkpoint_generations = generations
        self._stats["checkpoints"] += 1
        self._stats["checkpoint_bytes"] = os.path.getsize(written)
        return written

    def _scan_delta_seq(self) -> int:
        """Highest delta sequence number present in the snapshot dir."""
        highest = 0
        for name in os.listdir(self._snapshot_dir):
            if name.startswith("service-delta-") and name.endswith(".snap"):
                try:
                    seq = int(name[len("service-delta-") : -len(".snap")])
                except ValueError:
                    continue
                highest = max(highest, seq)
        return highest

    def _latest_checkpoint_path(self) -> str:
        """The newest checkpoint on disk: the max-seq delta, else the full."""
        if self._delta_seq > 0:
            candidate = os.path.join(
                self._snapshot_dir, f"service-delta-{self._delta_seq:06d}.snap"
            )
            if os.path.exists(candidate):
                return candidate
        return self.snapshot_path

    def _prune_deltas(self) -> None:
        """Drop superseded delta files after a full compaction write."""
        for name in os.listdir(self._snapshot_dir):
            if name.startswith("service-delta-") and name.endswith(".snap"):
                try:
                    os.unlink(os.path.join(self._snapshot_dir, name))
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        self._delta_seq = 0

    def _restore(self, path: str) -> None:
        """Warm-start the maintainer tree from ``path`` (or raise)."""
        from repro.persist import codec, format as persist_format

        snap = persist_format.load_snapshot(path, kind="service")
        streams = snap.meta.get("streams")
        if streams != list(self._names):
            raise SnapshotError(
                f"snapshot {path!r} hosts streams {streams!r}, the service "
                f"hosts {list(self._names)!r}",
                reason="config-mismatch",
            )
        codec.restore_maintainer(self._maintainer, snap.meta["maintainer"], snap.slab)

    def _maybe_checkpoint(self, *, final: bool = False) -> None:
        """Checkpoint if due (or at drain-close); failures never raise."""
        if self._snapshot_dir is None:
            return
        if not final:
            if self._checkpoint_every is None:
                return
            if self._stats["windows"] % self._checkpoint_every != 0:
                return
            if (
                self._checkpoint_generations is not None
                and self._maintainer.generations == self._checkpoint_generations
            ):
                # Nothing mutated since the last successful checkpoint —
                # the window held only rejected/expired/repeat-read
                # traffic, so the file on disk is already current.
                return
        try:
            self.checkpoint()
        except Exception:
            # A failed checkpoint must not take serving down — the
            # previous generation on disk stays valid either way.
            self._stats["checkpoint_failures"] += 1

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    async def start(self) -> "HistogramService":
        """Create the admission queue and the collector task."""
        if self._collector is not None:
            raise InvalidParameterError("service already started")
        self._queue = asyncio.Queue(maxsize=self._config.max_queue)
        self._collector = asyncio.get_running_loop().create_task(
            self._collect(), name="repro-serve-collector"
        )
        self._accepting = True
        return self

    async def close(self, *, drain: bool = True) -> None:
        """Stop admission, then drain (or abandon) the backlog.

        ``drain=True`` (the default) serves every already-admitted
        request before returning; ``drain=False`` cancels the collector
        and fails pending requests with
        :class:`~repro.errors.ServiceClosedError`.  Either way the
        service's own executor (``workers > 1`` at construction) is
        closed — its fork-pool workers and shared-memory slabs do not
        outlive the service.  Idempotent.
        """
        self._accepting = False
        if self._collector is not None:
            if drain:
                await self._queue.put(_STOP)
                await self._collector
                self._maybe_checkpoint(final=True)
            else:
                self._collector.cancel()
                try:
                    await self._collector
                except asyncio.CancelledError:
                    pass
                while not self._queue.empty():
                    entry = self._queue.get_nowait()
                    if entry is _STOP:
                        continue
                    future = entry[1]
                    if not future.done():
                        future.set_exception(
                            ServiceClosedError("service closed before serving")
                        )
            self._collector = None
            self._queue = None
        if self._owns_executor and self._executor is not None:
            self._executor.close()

    async def __aenter__(self) -> "HistogramService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -------------------------------------------------------------- #
    # admission
    # -------------------------------------------------------------- #

    async def submit(self, request: Request) -> Response:
        """Admit one request and await its structured response.

        Request-level failures (unknown stream, quiet stream, invalid
        parameters, an already-spent ``deadline_ms`` budget) come back
        as error :class:`Response` objects; *admission*-level failures
        raise — :class:`~repro.errors.OverloadedError` with a
        ``retry_after`` hint when the queue is full,
        :class:`~repro.errors.ServiceClosedError` once shutdown began.

        A request carrying ``deadline_ms`` starts its clock here: the
        budget covers queueing and lingering, and a request that ages
        out before its batch executes resolves to a
        ``deadline_exceeded`` error response (the work is skipped, not
        half-done).
        """
        if not self._accepting or self._queue is None:
            raise ServiceClosedError("service is not accepting requests")
        self._stats["submitted"] += 1
        if request.stream not in self._index:
            self._stats["served"] += 1
            return error_response(
                request,
                UnknownStreamError(
                    f"unknown stream {request.stream!r} (service hosts "
                    f"{len(self._index)} streams)"
                ),
            )
        if request.op not in OPS:
            # Rejected at admission: a hand-built Request with a bogus
            # op must not reach the coalescer (signature would raise
            # mid-window and strand the rest of the backlog).
            self._stats["served"] += 1
            return error_response(
                request,
                InvalidParameterError(
                    f"unknown op {request.op!r} (one of {', '.join(OPS)})"
                ),
            )
        loop = asyncio.get_running_loop()
        deadline = None
        if request.deadline_ms is not None:
            budget_ms = request.deadline_ms
            if not np.isfinite(budget_ms) or budget_ms < 0:
                self._stats["served"] += 1
                return error_response(
                    request,
                    InvalidParameterError(
                        f"deadline_ms must be finite and >= 0, got {budget_ms!r}"
                    ),
                )
            if budget_ms == 0:
                # The degenerate budget is already spent at admission —
                # and is how tests exercise the deadline path without
                # racing the clock.
                self._stats["served"] += 1
                self._stats["deadline_hits"] += 1
                return error_response(request, self._deadline_error(request))
            deadline = loop.time() + budget_ms / 1e3
        if (
            self._config.cache_capacity
            and request.op in CACHEABLE_OPS
            and not self._pending_mutations.get(request.stream)
        ):
            # Serve a repeat read at admission.  The key carries the
            # stream's generation, so an entry outlives a mutation only
            # as an orphan; the pending-mutation fence above keeps an
            # admitted-but-unexecuted ingest/learn ordered before later
            # reads of its stream, exactly as the batch planner would.
            key = (
                request.stream,
                self._maintainer.generation(self._index[request.stream]),
                request.cache_key,
            )
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._stats["cache_hits"] += 1
                self._stats["served"] += 1
                return cached
            self._stats["cache_misses"] += 1
        future = loop.create_future()
        try:
            self._queue.put_nowait((request, future, deadline))
        except asyncio.QueueFull:
            self._stats["rejected"] += 1
            raise OverloadedError(
                f"admission queue full ({self._config.max_queue} requests)",
                retry_after=self._config.retry_after_s,
            ) from None
        if request.mutates:
            # Fence the stream until this mutation resolves (served,
            # expired, or failed — the done callback runs either way).
            stream = request.stream
            self._pending_mutations[stream] = (
                self._pending_mutations.get(stream, 0) + 1
            )
            future.add_done_callback(lambda _f, s=stream: self._release_fence(s))
        return await future

    def _release_fence(self, stream: str) -> None:
        remaining = self._pending_mutations.get(stream, 0) - 1
        if remaining > 0:
            self._pending_mutations[stream] = remaining
        else:
            self._pending_mutations.pop(stream, None)

    # -------------------------------------------------------------- #
    # the collector
    # -------------------------------------------------------------- #

    async def _collect(self) -> None:
        """Drain admission windows until the shutdown sentinel arrives."""
        config = self._config
        linger_s = config.max_linger_us / 1e6
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._queue.get()
            if entry is _STOP:
                return
            window = [entry]
            stopping = False
            if config.max_batch > 1:
                # Drain synchronously first — already-queued requests
                # join the window for free; only an *empty* queue spends
                # linger budget awaiting stragglers (one wait_for per
                # lull, not per request, so linger measures waiting
                # rather than task-wrapping overhead).
                deadline = loop.time() + linger_s
                while len(window) < config.max_batch:
                    try:
                        entry = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        timeout = deadline - loop.time()
                        if timeout <= 0:
                            break
                        try:
                            entry = await asyncio.wait_for(
                                self._queue.get(), timeout
                            )
                        except asyncio.TimeoutError:
                            break
                    if entry is _STOP:
                        stopping = True
                        break
                    window.append(entry)
            self._serve_window(window)
            self._maybe_checkpoint()
            if stopping:
                return

    @staticmethod
    def _deadline_error(request: Request) -> DeadlineExceededError:
        return DeadlineExceededError(
            f"deadline of {request.deadline_ms:g} ms expired before "
            f"{request.op!r} executed; resubmit with a fresh budget"
        )

    def _expire_overdue(self, window: list) -> list:
        """Resolve aged-out requests; the still-live remainder executes.

        The pre-execution deadline check: a request whose absolute
        deadline passed while it queued or lingered gets a
        ``deadline_exceeded`` error response and never reaches a fleet
        op — its work is skipped entirely, which is the only
        deadline semantics compatible with batched execution.
        """
        now = asyncio.get_running_loop().time()
        live = []
        for entry in window:
            request, future, deadline = entry
            if deadline is not None and now >= deadline:
                self._stats["deadline_hits"] += 1
                self._stats["served"] += 1
                if not future.done():  # pragma: no branch - submit awaits it
                    future.set_result(
                        error_response(request, self._deadline_error(request))
                    )
            else:
                live.append(entry)
        return live

    def _serve_window(self, window: list) -> None:
        """Partition one admission window and execute its batches."""
        self._stats["windows"] += 1
        window = self._expire_overdue(window)
        for batch in self._plan_batches(window):
            self._stats["batches"] += 1
            size = len(batch)
            self._stats["largest_batch"] = max(self._stats["largest_batch"], size)
            if size > 1:
                self._stats["coalesced"] += size
            self._execute_batch(batch)
            self._stats["served"] += size

    @staticmethod
    def _plan_batches(window: list) -> "list[list]":
        """Split a window into hazard-safe same-signature batches.

        Repeatedly takes the window's oldest unserved request and
        gathers every later request with the *same signature*, skipping
        over foreign-signature requests only for streams that have not
        been blocked.  A request with a different signature blocks its
        stream for the rest of the pass: same-stream requests never
        reorder across it, so each executed batch is a permutation of
        the admission order that preserves every stream's own request
        sequence — which, with per-member generators, is exactly the
        invariance the byte-identity contract needs.
        """
        batches = []
        remaining = window
        while remaining:
            signature = remaining[0][0].signature
            batch = []
            blocked: set[str] = set()
            rest = []
            for entry in remaining:
                request = entry[0]
                if request.signature == signature and request.stream not in blocked:
                    batch.append(entry)
                else:
                    blocked.add(request.stream)
                    rest.append(entry)
            batches.append(batch)
            remaining = rest
        return batches

    # -------------------------------------------------------------- #
    # batch execution
    # -------------------------------------------------------------- #

    def _execute_batch(self, batch: list) -> None:
        """Run one same-signature batch and resolve its futures.

        Per-request pre-checks (readiness, reference resolution, range
        validation) run identically for a 32-request batch and a
        singleton, so the request-at-a-time reference emits the same
        structured errors byte for byte.  Library failures of the
        shared fleet op map to one structured error per affected
        request; non-library exceptions propagate to the waiting
        futures unmapped (programming errors should crash loudly).
        """
        op = batch[0][0].op
        try:
            if op == "ingest":
                self._execute_ingest(batch)
            else:
                self._execute_probe(op, batch)
        except ReproError as exc:
            for request, future, _ in batch:
                if not future.done():
                    future.set_result(error_response(request, exc))
        except BaseException as exc:
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(exc)
            raise

    def _execute_ingest(self, batch: list) -> None:
        """Absorb ingest batches entry by entry, in admission order."""
        for request, future, _ in batch:
            member = self._index[request.stream]
            try:
                values = np.asarray(request.values)
                if values.size == 0:
                    values = values.astype(np.int64)
                self._maintainer.update_many(member, values)
            except ReproError as exc:
                future.set_result(error_response(request, exc))
            else:
                future.set_result(
                    Response(
                        ok=True,
                        op="ingest",
                        stream=request.stream,
                        result=len(request.values),
                    )
                )

    def _execute_probe(self, op: str, batch: list) -> None:
        """One fleet-batched probe over the batch's distinct streams."""
        ready = self._maintainer.ready
        pending: list = []  # entries the shared fleet op will answer
        members: list[int] = []  # distinct, first-occurrence order
        seen: dict[str, int] = {}  # stream -> position in `members`
        head = batch[0][0]
        for request, future, _ in batch:
            if request.op == "identity" and request.reference not in self._references:
                future.set_result(
                    error_response(
                        request,
                        InvalidParameterError(
                            f"unknown identity reference {request.reference!r}; "
                            "register it with register_reference()"
                        ),
                    )
                )
                continue
            if request.op == "selectivity" and not (
                0 <= request.start < request.stop <= self._n
            ):
                future.set_result(
                    error_response(
                        request,
                        InvalidParameterError(
                            f"selectivity range [{request.start}, {request.stop}) "
                            f"outside the domain [0, {self._n})"
                        ),
                    )
                )
                continue
            member = self._index[request.stream]
            if not ready[member]:
                future.set_result(
                    error_response(
                        request,
                        EmptyStreamError(
                            f"stream {request.stream!r} has no observations yet; "
                            "ingest() it first"
                        ),
                    )
                )
                continue
            if request.stream not in seen:
                seen[request.stream] = len(members)
                members.append(member)
            pending.append((request, future))
        if not pending:
            return
        results = self._run_probe(op, head, members)
        cacheable = self._config.cache_capacity and op in CACHEABLE_OPS
        for request, future in pending:
            response = Response(
                ok=True,
                op=op,
                stream=request.stream,
                result=results(request, seen[request.stream]),
            )
            if cacheable:
                # Keyed at the *post*-execution generation: the probe
                # itself may have grown pools or compiled sketches, and
                # the response reflects that state.
                key = (
                    request.stream,
                    self._maintainer.generation(self._index[request.stream]),
                    request.cache_key,
                )
                self._cache[key] = response
                self._cache.move_to_end(key)
                while len(self._cache) > self._config.cache_capacity:
                    self._cache.popitem(last=False)
            future.set_result(response)

    def _run_probe(self, op: str, head: Request, members: list[int]):
        """Dispatch one batch op; returns a per-request result reader."""
        maintainer = self._maintainer
        if op == "test":
            rows = maintainer.test(
                head.k,
                head.epsilon,
                norm=head.norm,
                params=self._tester_params,
                members=members,
            )
            return lambda request, position: rows[position]
        if op == "min_k":
            rows = maintainer.min_k(
                head.epsilon,
                max_k=head.max_k,
                norm=head.norm,
                params=self._tester_params,
                members=members,
            )
            return lambda request, position: rows[position]
        if op == "learn":
            rows = maintainer.learn(head.k, head.epsilon, members=members)
            return lambda request, position: rows[position]
        if op == "uniformity":
            rows = maintainer.uniformity(
                head.epsilon, params=self._tester_params, members=members
            )
            return lambda request, position: rows[position]
        if op == "identity":
            rows = maintainer.identity(
                self._references[head.reference],
                head.epsilon,
                params=self._tester_params,
                members=members,
            )
            return lambda request, position: rows[position]
        if op == "selectivity":
            histograms = maintainer.histograms_for(members)
            return lambda request, position: float(
                histograms[position].range_mass(
                    Interval(request.start, request.stop)
                )
            )
        raise InvalidParameterError(f"unknown op {op!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HistogramService(streams={len(self._names)}, n={self._n}, "
            f"max_batch={self._config.max_batch}, "
            f"served={self._stats['served']})"
        )
