"""``repro-serve``: replay a skewed workload through the serving layer.

A one-command demonstration of the serving stack: build a
:class:`~repro.serving.HistogramService` over ``--streams`` named
streams, generate the seeded Pareto/burst/chain workload, replay it
closed-loop, and print the latency/throughput report — once coalesced
(``--max-batch``) and once request-at-a-time for comparison unless
``--no-baseline``.
"""

from __future__ import annotations

import argparse
import asyncio

import numpy as np

from repro.serving.service import HistogramService, ServiceConfig
from repro.serving.workload import (
    ReplayReport,
    WorkloadConfig,
    WorkloadGenerator,
    replay,
)
from repro.utils.faults import FaultPlan


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Replay a skewed workload through the coalescing serving layer.",
    )
    parser.add_argument("--streams", type=int, default=64, help="fleet width")
    parser.add_argument("--requests", type=int, default=512, help="trace length")
    parser.add_argument("--n", type=int, default=4096, help="domain size")
    parser.add_argument("--k", type=int, default=8, help="histogram pieces")
    parser.add_argument("--epsilon", type=float, default=0.3, help="accuracy")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--max-batch", type=int, default=32, help="coalescer window bound"
    )
    parser.add_argument(
        "--linger-us", type=float, default=500.0, help="coalescer linger"
    )
    parser.add_argument(
        "--clients", type=int, default=16, help="concurrent replay clients"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="executor workers (1 = in-process)"
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="latency budget stamped on every post-warmup request",
    )
    parser.add_argument(
        "--chaos-kill-every",
        type=int,
        default=None,
        metavar="N",
        help="chaos mode: SIGKILL the worker running every N-th pool task "
        "(requires --workers > 1)",
    )
    parser.add_argument(
        "--chaos-kill-limit",
        type=int,
        default=None,
        metavar="M",
        help="cap the number of injected worker kills",
    )
    parser.add_argument(
        "--max-respawns",
        type=int,
        default=None,
        help="pool respawns before the executor degrades to inline execution",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the request-at-a-time comparison run",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=256,
        metavar="N",
        help="response-cache bound in entries (default 256); repeat "
        "non-mutating requests on an unchanged stream serve from it "
        "at admission, byte-identical to cold execution",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the response cache (same as --cache-capacity 0)",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="warm-start directory: restore DIR/service.snap at startup "
        "(cold build if absent/corrupt) and checkpoint there at drain-close "
        "(implies --no-baseline)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="additionally checkpoint after every N admission windows "
        "(requires --snapshot-dir)",
    )
    parser.add_argument(
        "--checkpoint-mode",
        choices=("full", "delta"),
        default="full",
        help="checkpoint strategy: 'full' re-writes every slab, 'delta' "
        "writes differential checkpoints re-writing only changed "
        "members' slabs (compacted every few links; requires "
        "--snapshot-dir)",
    )
    return parser


def _report(label: str, report: ReplayReport, health: dict) -> None:
    stats = health["stats"]
    print(f"[{label}]")
    print(
        f"  {report.requests} requests, {report.ok} ok, "
        f"errors={dict(report.errors)}, rejected={report.rejected}"
    )
    print(
        f"  wall {report.wall_s * 1e3:8.1f} ms   "
        f"throughput {report.throughput_rps:9.1f} req/s"
    )
    print(
        f"  latency p50 {report.p50_us:9.1f} us   p99 {report.p99_us:9.1f} us"
    )
    print(
        f"  batches {stats['batches']}, largest {stats['largest_batch']}, "
        f"coalesced requests {stats['coalesced']}, "
        f"deadline hits {stats['deadline_hits']}"
    )
    lookups = stats["cache_hits"] + stats["cache_misses"]
    hit_rate = stats["cache_hits"] / lookups if lookups else 0.0
    print(
        f"  cache: {stats['cache_hits']} hits / {lookups} lookups "
        f"(hit rate {hit_rate:.1%})"
    )
    executor = health["executor"]
    if executor is not None:
        print(
            f"  executor: crashes {executor['worker_crashes']}, "
            f"respawns {executor['respawns']}, "
            f"retried tasks {executor['retried_tasks']}, "
            f"degraded {executor['degraded']}, "
            f"slab fallbacks {executor['slab_fallbacks']}"
        )


async def _run(args: argparse.Namespace) -> None:
    config = WorkloadConfig(
        streams=args.streams,
        requests=args.requests,
        seed=args.seed,
        n=args.n,
        k=args.k,
        epsilon=args.epsilon,
        deadline_ms=args.deadline_ms,
    )
    generator = WorkloadGenerator(config)
    trace = generator.trace()
    print(
        f"workload: {len(trace)} events over {args.streams} streams "
        f"(seed {args.seed}, Pareto alpha {config.alpha})"
    )
    reference = np.full(args.n, 1.0 / args.n)
    modes = [("coalesced", args.max_batch, args.linger_us)]
    if not args.no_baseline and args.snapshot_dir is None:
        # A second run against the same snapshot dir would warm-start
        # off the first run's drain checkpoint and skew the comparison.
        modes.append(("one-at-a-time", 1, 0.0))
    for label, max_batch, linger_us in modes:
        faults = None
        if args.chaos_kill_every is not None:
            # One plan per run: chaos schedules never leak across the
            # baseline comparison.
            faults = FaultPlan(
                seed=args.seed,
                kill_every=args.chaos_kill_every,
                kill_limit=args.chaos_kill_limit,
            )
            label = f"{label}+chaos"
        cache_capacity = 0 if args.no_cache else args.cache_capacity
        service = HistogramService(
            generator.stream_names,
            args.n,
            args.k,
            args.epsilon,
            config=ServiceConfig(
                max_batch=max_batch,
                max_linger_us=linger_us,
                cache_capacity=cache_capacity,
            ),
            references={config.reference: reference},
            workers=args.workers,
            max_respawns=args.max_respawns,
            faults=faults,
            rng=args.seed,
            snapshot_dir=args.snapshot_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_mode=args.checkpoint_mode,
        )
        if args.snapshot_dir is not None:
            if service.warm_started:
                print(f"warm start: restored {service.restored_from}")
            else:
                print(f"cold start: {service.restore_error}")
        async with service:
            report = await replay(service, trace, clients=args.clients)
            _report(label, report, service.health())
        if args.snapshot_dir is not None:
            stats = service.stats
            print(
                f"checkpoints: {stats['checkpoints']} written "
                f"({stats['checkpoint_failures']} failed, last "
                f"{stats['checkpoint_bytes']} bytes, mode "
                f"{args.checkpoint_mode}) -> {service.snapshot_path}"
            )


def main(argv: "list[str] | None" = None) -> int:
    args = _parser().parse_args(argv)
    asyncio.run(_run(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
