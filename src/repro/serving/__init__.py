"""The asyncio serving layer: request coalescing over maintained fleets.

``repro.serving`` turns the fleet engines into a service: concurrent
clients submit :class:`Request` objects against named streams, a
bounded admission queue applies backpressure, and a coalescer folds
same-operation requests into :class:`~repro.streaming.FleetMaintainer`
batch ops — without changing a single byte of any answer relative to
request-at-a-time serving.  Requests can carry ``deadline_ms`` latency
budgets (aged-out work is skipped with a ``deadline_exceeded`` code),
and the executor underneath self-heals through worker crashes — see
``README.md`` ("Serving", "Robustness") for the tour and
``examples/async_serving.py`` for a runnable walkthrough.
"""

from repro.serving.requests import (
    OPS,
    Request,
    Response,
    canonical,
    error_code,
    error_payload,
    error_response,
)
from repro.serving.service import HistogramService, ServiceConfig
from repro.serving.workload import (
    ReplayReport,
    WorkloadConfig,
    WorkloadGenerator,
    replay,
    trace_bytes,
)

__all__ = [
    "OPS",
    "HistogramService",
    "ReplayReport",
    "Request",
    "Response",
    "ServiceConfig",
    "WorkloadConfig",
    "WorkloadGenerator",
    "canonical",
    "error_code",
    "error_payload",
    "error_response",
    "replay",
    "trace_bytes",
]
