"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidDistributionError(ReproError):
    """A probability vector is malformed (negative mass, wrong shape,
    or does not sum to one within tolerance)."""


class InvalidIntervalError(ReproError):
    """An interval is malformed (empty where not allowed, reversed
    endpoints, or out of the domain ``[0, n)``)."""


class InvalidHistogramError(ReproError):
    """A histogram representation violates its invariants (overlapping
    tiles, uncovered domain for a tiling histogram, negative values)."""


class InvalidParameterError(ReproError):
    """An algorithm parameter is out of its documented range
    (e.g. ``epsilon`` outside ``(0, 1)`` or non-positive ``k``)."""


class InsufficientSamplesError(ReproError):
    """An estimator was asked for a quantity its sample set cannot
    support (e.g. a collision estimate from fewer than two samples
    when ``strict=True``)."""


class EmptyStreamError(InvalidParameterError):
    """A streaming maintainer was probed (``test()``, ``min_k()``, or
    ``histogram``) before its reservoir absorbed any observation.

    Subclasses :class:`InvalidParameterError` so existing callers that
    catch the broader class keep working, while new code can handle the
    probe-too-early case precisely instead of seeing a stale-pool
    failure from deeper in the sampling stack."""


class UnknownStreamError(InvalidParameterError):
    """A serving request named a stream the service does not host.

    Subclasses :class:`InvalidParameterError` for the same reason
    :class:`EmptyStreamError` does: broad handlers keep working, while
    the serving layer maps this case to its own structured error code."""


class OverloadedError(ReproError):
    """The serving admission queue is full; the request was rejected.

    Carries ``retry_after`` (seconds), the service's hint for when the
    caller should resubmit.  This is an *admission* failure — nothing
    about the request itself is wrong, and resubmitting later is always
    legitimate."""

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ServiceClosedError(ReproError):
    """A request was submitted to a serving layer that is draining or
    has shut down.  Unlike :class:`OverloadedError` there is no point
    retrying against the same service instance."""


class DeadlineExceededError(ReproError):
    """A request's ``deadline_ms`` budget expired before it executed.

    Raised (and mapped to the ``deadline_exceeded`` response code) at
    admission when the budget is already spent, or pre-execution when a
    request aged out while queued behind a window.  The work was *not*
    performed — a caller that still wants the answer resubmits with a
    fresh budget."""


class SlabUnavailableError(ReproError):
    """A shared-memory slab's segment is gone (or no longer large enough).

    Raised by :meth:`repro.utils.shm.SharedSlab.attach` when the named
    segment was unlinked and not re-created — the owning executor
    closed, or the handle outlived the parent that registered it — or
    when the name was recycled for a segment too small to back the
    slab's ``shape * itemsize``.  Structured (instead of the raw
    ``FileNotFoundError`` the OS reports) so the serving taxonomy can
    classify the failure rather than reporting ``internal``."""


class SnapshotError(ReproError):
    """A snapshot file cannot be restored (and a cold rebuild should run).

    Raised by :mod:`repro.persist` on any malformed-snapshot condition —
    missing file, bad magic, format-version or kind mismatch, truncated
    payload, checksum mismatch, or a configuration fingerprint that does
    not match the restoring instance.  Carries ``reason``, a short
    stable code naming the condition; every restore seam catches this
    and falls back to a cold rebuild, never a crash."""

    def __init__(self, message: str, *, reason: str = "invalid") -> None:
        super().__init__(message)
        self.reason = str(reason)


class InjectedFaultError(ReproError):
    """A deterministic chaos fault fired (:class:`repro.utils.faults.FaultPlan`).

    Only ever raised by test/chaos seams — a sample source wrapped by
    :meth:`~repro.utils.faults.FaultPlan.wrap_source`, for instance —
    never by production code paths.  Subclasses :class:`ReproError` so
    the serving layer maps it to a structured response like any other
    library failure instead of crashing the collector."""
