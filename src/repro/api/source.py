"""The `SampleSource` protocol: one formal contract for sampling access.

Every algorithm in the library consumes a distribution through a single
operation — ``sample(size, rng) -> np.ndarray`` of int64 values in
``[0, n)``.  Historically that contract was duck-typed in four separate
places (the learner, both testers, and the selection search); this module
makes it a :class:`typing.Protocol` and supplies adapters so the same
front door accepts

* :class:`repro.distributions.DiscreteDistribution` (and subclasses such
  as :class:`~repro.distributions.EmpiricalDistribution`),
* :class:`repro.streaming.ReservoirSampler` (bootstrap view of a stream),
* raw integer arrays / sequences of observed values (wrapped in
  :class:`ArraySource`, a with-replacement bootstrap).

:class:`CountingSource` instruments any source with draw accounting — the
sessions' sample-reuse guarantees are asserted against it in the test
suite and reported by the reuse benchmark.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.rng import as_rng


@runtime_checkable
class SampleSource(Protocol):
    """Anything the algorithms can draw i.i.d. samples from."""

    def sample(
        self, size: int, rng: int | None | np.random.Generator = None
    ) -> np.ndarray:
        """Return ``size`` int64 samples from ``[0, n)``."""
        ...


class ArraySource:
    """Bootstrap sampling access over a raw column of observed values.

    Draws are uniform with replacement from the array, i.e. i.i.d. samples
    of its empirical distribution — the cheapest way to point the paper's
    algorithms at a data column without materialising a pmf first.

    Parameters
    ----------
    values:
        1-d integer array of observations.
    n:
        Domain size; defaults to ``max(values) + 1``.
    """

    __slots__ = ("_values", "_n")

    def __init__(self, values: np.ndarray, n: int | None = None) -> None:
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise InvalidParameterError(
                f"values must be a 1-d array, got shape {values.shape}"
            )
        if values.size == 0:
            raise InvalidParameterError("ArraySource needs at least one value")
        if values.min() < 0:
            raise InvalidParameterError("values must be non-negative")
        inferred = int(values.max()) + 1
        if n is None:
            n = inferred
        elif n < inferred:
            raise InvalidParameterError(
                f"n={n} too small for values up to {inferred - 1}"
            )
        self._values = values
        self._n = int(n)

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    @property
    def size(self) -> int:
        """Number of underlying observations."""
        return int(self._values.size)

    def sample(
        self, size: int, rng: int | None | np.random.Generator = None
    ) -> np.ndarray:
        """Draw ``size`` values uniformly with replacement."""
        if size < 0:
            raise InvalidParameterError(f"sample size must be >= 0, got {size}")
        idx = as_rng(rng).integers(0, self._values.size, size=size)
        return self._values[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArraySource(size={self.size}, n={self._n})"


class CountingSource:
    """Wrap a source and count every draw made through it.

    Attributes
    ----------
    calls:
        Number of ``sample()`` invocations.
    samples_drawn:
        Total samples returned across all calls.
    """

    __slots__ = ("_inner", "calls", "samples_drawn")

    def __init__(self, inner: SampleSource) -> None:
        self._inner = inner
        self.calls = 0
        self.samples_drawn = 0

    def sample(
        self, size: int, rng: int | None | np.random.Generator = None
    ) -> np.ndarray:
        result = self._inner.sample(size, rng)
        self.calls += 1
        self.samples_drawn += int(np.asarray(result).size)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CountingSource(calls={self.calls}, samples_drawn={self.samples_drawn})"
        )


def as_sample_source(source: object, n: int | None = None) -> SampleSource:
    """Normalise ``source`` to a :class:`SampleSource`.

    Objects already exposing ``sample(size, rng)`` pass through untouched;
    arrays and sequences are wrapped in :class:`ArraySource` (with domain
    size ``n`` when given).
    """
    if isinstance(source, SampleSource):
        return source
    if isinstance(source, (np.ndarray, list, tuple)):
        return ArraySource(np.asarray(source), n)
    raise InvalidParameterError(
        f"cannot build a SampleSource from {type(source).__name__}; need "
        "a sample(size, rng) method or a value array"
    )
