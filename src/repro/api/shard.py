"""`ShardPlan` + `ParallelExecutor`: the parallel shard engine's front.

The sharded sample layer (:mod:`repro.samples.sharded`) makes every
sketch compile a sum of independent per-shard summaries; this module
supplies the two objects that turn that algebra into throughput:

* :class:`ShardPlan` — how one logical sample pool splits into
  mergeable shards (deterministic contiguous chunks, so a sharded run
  is replayable and byte-identical to the monolithic one);
* :class:`ParallelExecutor` — an order-preserving ``map`` over a
  process pool, with ``workers=1`` falling back to inline execution
  (no pool, no shared memory, zero overhead).  Sample pools and prefix
  stacks travel through shared-memory slabs
  (:mod:`repro.utils.shm`), not pickles, so fanning a fleet's member
  compiles or a big batch of flatness misses across workers moves
  kilobyte handles, not megabyte arrays.

:class:`~repro.api.HistogramSession` and
:class:`~repro.api.HistogramFleet` accept either via ``executor=``; the
executor is *only* an evaluation strategy — every draw, verdict,
histogram, query log, and memo count is byte-identical to the
single-buffer engine for any ``(shards, workers)`` choice, which the
conformance matrix (``tests/test_conformance_matrix.py``) pins.

The executor owns its pool and any shared segments it allocated: call
:meth:`ParallelExecutor.close` (or use it as a context manager) when
done.  One executor can be shared by any number of sessions, fleets,
and maintainers.
"""

from __future__ import annotations

import multiprocessing
import weakref
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.errors import InvalidParameterError
from repro.samples.sharded import sharded_interval_prefixes, shard_chunks
from repro.utils.shm import SharedSlab, create_slab


class ShardPlan:
    """How a logical sample pool splits into mergeable shards.

    ``num_shards=1`` is the monolithic plan (every compile runs exactly
    the single-buffer code path).  Larger plans bound the size of any
    buffer that must be sorted at once to ``ceil(m / num_shards)``,
    which is what the out-of-core learn benchmark exercises; because
    shard combination is exact integer math, the compiled sketches do
    not depend on the plan.
    """

    __slots__ = ("_num_shards",)

    def __init__(self, num_shards: int = 1) -> None:
        if int(num_shards) != num_shards or num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be a positive integer, got {num_shards!r}"
            )
        self._num_shards = int(num_shards)

    @property
    def num_shards(self) -> int:
        """Number of shards every pool splits into."""
        return self._num_shards

    def split(self, values: np.ndarray) -> "list[np.ndarray]":
        """The plan's contiguous chunks of one raw sample array (views)."""
        return shard_chunks(values, self._num_shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardPlan(num_shards={self._num_shards})"


class _ExecutorState:
    """Everything a dead executor must give back to the OS.

    Split out of :class:`ParallelExecutor` so a ``weakref.finalize``
    callback can reap it without holding (and so immortalising) the
    executor itself.  The finalizer doubles as an ``atexit`` hook — the
    stdlib runs any still-pending finalizers at interpreter shutdown —
    so even an executor that is *never* collected (a crashed server's
    module global, say) stops stranding fork-pool workers and
    ``/dev/shm`` segments.
    """

    __slots__ = ("pool", "segments", "scratch", "retired", "closed")

    def __init__(self) -> None:
        self.pool: ProcessPoolExecutor | None = None
        self.segments: list = []
        self.scratch: dict = {}
        self.retired: list = []
        self.closed = False


def _reap_executor(state: _ExecutorState) -> None:
    """Shut one executor's pool down and release its shared segments.

    The body of :meth:`ParallelExecutor.close`, shared with the
    GC/atexit safety net.  Idempotent: the first call wins, later calls
    (explicit ``close`` after a finalizer, or vice versa) are no-ops.
    """
    if state.closed:
        return
    state.closed = True
    if state.pool is not None:
        state.pool.shutdown(wait=True)
        state.pool = None
    for segment in state.segments + state.retired:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - live array views remain
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
    state.segments = []
    state.scratch = {}
    state.retired = []


class ParallelExecutor:
    """Deterministic fan-out over a process pool (``workers=1`` = inline).

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) never creates a pool or a
        shared segment — ``map`` runs inline, ``shared_zeros`` falls
        back to plain arrays — so an executor-accepting call site needs
        no second code path for the serial case.
    plan:
        The :class:`ShardPlan` compiles split pools by; defaults to one
        shard per worker.
    resolve_min_batch:
        Smallest number of batched flatness-miss rows worth shipping to
        the pool; smaller batches resolve inline (per-probe IPC would
        dwarf the numpy work).  The conformance tests set ``1`` to force
        the parallel path on tiny fleets.

    ``map`` preserves task order and runs every task exactly once, so a
    parallel run is a reordering of the same arithmetic — results are
    combined positionally by the callers, never by completion order.

    Lifecycle: :meth:`close` (or the context manager) is still the
    polite way out, but an executor that is dropped without it — a
    crashed server, an abandoned session — is reaped by a
    ``weakref.finalize`` safety net that shuts the fork pool down and
    unlinks every shared segment, at collection time or at interpreter
    exit, whichever comes first.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        plan: ShardPlan | None = None,
        resolve_min_batch: int = 256,
    ) -> None:
        if int(workers) != workers or workers < 1:
            raise InvalidParameterError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if resolve_min_batch < 1:
            raise InvalidParameterError(
                f"resolve_min_batch must be >= 1, got {resolve_min_batch!r}"
            )
        self._workers = int(workers)
        self._plan = plan if plan is not None else ShardPlan(self._workers)
        self._resolve_min_batch = int(resolve_min_batch)
        self._state = _ExecutorState()
        self._finalizer = weakref.finalize(self, _reap_executor, self._state)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def workers(self) -> int:
        """Pool size (1 = inline)."""
        return self._workers

    @property
    def plan(self) -> ShardPlan:
        """The shard plan compiles split pools by."""
        return self._plan

    @property
    def parallel(self) -> bool:
        """Whether this executor fans work across processes at all."""
        return self._workers > 1

    @property
    def resolve_min_batch(self) -> int:
        """Smallest flatness-miss batch shipped to the pool."""
        return self._resolve_min_batch

    @property
    def _closed(self) -> bool:
        return self._state.closed

    @property
    def _segments(self) -> list:
        return self._state.segments

    # -------------------------------------------------------------- #
    # execution
    # -------------------------------------------------------------- #

    def map(self, fn, tasks: "list") -> list:
        """Run ``fn`` over ``tasks``, preserving order.

        Inline when the executor is serial or the batch is trivial;
        otherwise through the (lazily created) process pool.  ``fn``
        must be a module-level function and every task picklable —
        which the shard task payloads (chunk arrays or
        :class:`~repro.utils.shm.SharedSlab` handles plus scalars) are.
        """
        tasks = list(tasks)
        if self._workers == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        pool = self._ensure_pool()
        chunksize = max(1, len(tasks) // (self._workers * 2))
        return list(pool.map(fn, tasks, chunksize=chunksize))

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise InvalidParameterError("executor is closed")
        if self._state.pool is None:
            methods = multiprocessing.get_all_start_methods()
            # fork shares the parent's read-only state for free and
            # starts in milliseconds; spawn is the portable fallback.
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._state.pool = ProcessPoolExecutor(
                max_workers=self._workers, mp_context=context
            )
        return self._state.pool

    # -------------------------------------------------------------- #
    # shared-memory slabs
    # -------------------------------------------------------------- #

    def shared_zeros(
        self, shape: tuple, dtype=np.int64
    ) -> tuple[np.ndarray, SharedSlab | None]:
        """A zeroed array workers can attach to, plus its handle.

        On a serial executor this is a plain ``np.zeros`` with a
        ``None`` handle — callers branch on the handle, not on the
        worker count.  Segments are owned by the executor and released
        by :meth:`close`.
        """
        if self._workers == 1:
            return np.zeros(shape, dtype=dtype), None
        if self._closed:
            raise InvalidParameterError("executor is closed")
        segment, array, slab = create_slab(shape, dtype, zero=True)
        self._state.segments.append(segment)
        return array, slab

    def scratch(
        self, key: str, shape: tuple, dtype=np.int64
    ) -> tuple[np.ndarray, SharedSlab | None]:
        """A reusable (uninitialised) shared scratch slab, keyed.

        One segment lives per ``key``, grown when a request outsizes it
        — so a fleet recompiling dirty members on every refresh reuses
        one input slab instead of leaking a segment per pass.  Serial
        executors return a plain array and a ``None`` handle.
        """
        if self._workers == 1:
            return np.empty(shape, dtype=dtype), None
        if self._closed:
            raise InvalidParameterError("executor is closed")
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        segment = self._state.scratch.get(key)
        if segment is not None and segment.size < nbytes:
            self._state.segments.remove(segment)
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live array views remain
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            segment = None
        if segment is None:
            segment = create_slab(shape, dtype, zero=False)[0]
            self._state.scratch[key] = segment
            self._state.segments.append(segment)
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        return array, SharedSlab(segment.name, tuple(shape), dtype.str)

    def release(self, *slabs: "SharedSlab | None") -> None:
        """Release ``shared_zeros`` segments before :meth:`close`.

        Long-lived executors serve many short-lived fleets; each fleet
        registers a finalizer that hands its stack slabs back here when
        it is collected, so ``/dev/shm`` usage tracks the *live* fleets
        rather than every fleet ever built.  The segment's name is
        unlinked immediately; if some array still exports the buffer
        (e.g. a session kept a compiled member alive past its fleet),
        the mapping is parked and unmapped at :meth:`close`.  Idempotent
        and safe after :meth:`close`.
        """
        if self._closed:
            return
        state = self._state
        for slab in slabs:
            if slab is None:
                continue
            segment = next(
                (s for s in state.segments if s.name == slab.name), None
            )
            if segment is None:
                continue
            state.segments.remove(segment)
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live array views remain
                state.retired.append(segment)

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Shut the pool down and release every shared segment.

        Idempotent, and interchangeable with the GC safety net: an
        executor dropped without ``close()`` is reaped by its
        ``weakref.finalize`` (at collection or interpreter exit), and a
        ``close()`` after that is a no-op.
        """
        self._finalizer()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelExecutor(workers={self._workers}, "
            f"plan={self._plan!r}, closed={self._closed})"
        )


# ------------------------------------------------------------------ #
# worker task functions (module-level, picklable)
# ------------------------------------------------------------------ #


def _compile_member_rows(args: tuple) -> None:
    """Compile one fleet member's slab from the shared sample stack.

    ``args``: ``(sets_slab, row, fleet_index, n, dense, num_shards,
    count_slab, pair_slab)``.  Reads member ``row``'s ``(r, m)`` sample
    sets from the input slab, builds its hit/pair prefix rows through
    the shard-mergeable builder (bit-equal to the monolithic
    :meth:`~repro.core.flatness.FleetTesterSketches.compile_member`
    path), and writes the ``(n + 1, r)`` gather layout straight into
    the fleet's shared stacks — nothing but the handle travels back.
    """
    (sets_slab, row, fleet_index, n, dense, num_shards, count_slab, pair_slab) = args
    sets = sets_slab.attach()[row]
    grid = np.arange(n + 1, dtype=np.int64)
    count_rows, pair_rows = sharded_interval_prefixes(
        list(sets), n, grid, num_shards=num_shards, dense=dense
    )
    count_slab.attach()[fleet_index] = count_rows.T
    pair_slab.attach()[fleet_index] = pair_rows.T
