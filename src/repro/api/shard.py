"""`ShardPlan` + `ParallelExecutor`: the parallel shard engine's front.

The sharded sample layer (:mod:`repro.samples.sharded`) makes every
sketch compile a sum of independent per-shard summaries; this module
supplies the two objects that turn that algebra into throughput:

* :class:`ShardPlan` — how one logical sample pool splits into
  mergeable shards (deterministic contiguous chunks, so a sharded run
  is replayable and byte-identical to the monolithic one);
* :class:`ParallelExecutor` — an order-preserving ``map`` over a
  process pool, with ``workers=1`` falling back to inline execution
  (no pool, no shared memory, zero overhead).  Sample pools and prefix
  stacks travel through shared-memory slabs
  (:mod:`repro.utils.shm`), not pickles, so fanning a fleet's member
  compiles or a big batch of flatness misses across workers moves
  kilobyte handles, not megabyte arrays.

:class:`~repro.api.HistogramSession` and
:class:`~repro.api.HistogramFleet` accept either via ``executor=``; the
executor is *only* an evaluation strategy — every draw, verdict,
histogram, query log, and memo count is byte-identical to the
single-buffer engine for any ``(shards, workers)`` choice, which the
conformance matrix (``tests/test_conformance_matrix.py``) pins.

The executor owns its pool and any shared segments it allocated: call
:meth:`ParallelExecutor.close` (or use it as a context manager) when
done.  One executor can be shared by any number of sessions, fleets,
and maintainers.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

import numpy as np

from repro.errors import InvalidParameterError
from repro.samples.sharded import sharded_interval_prefixes, shard_chunks
from repro.utils.faults import DELAY, KILL, FaultPlan
from repro.utils.shm import (
    SharedSlab,
    create_slab,
    register_parent_segment,
    unregister_parent_segment,
)

#: Bound on the structured health-event log an executor keeps.
_MAX_HEALTH_EVENTS = 64


class ShardPlan:
    """How a logical sample pool splits into mergeable shards.

    ``num_shards=1`` is the monolithic plan (every compile runs exactly
    the single-buffer code path).  Larger plans bound the size of any
    buffer that must be sorted at once to ``ceil(m / num_shards)``,
    which is what the out-of-core learn benchmark exercises; because
    shard combination is exact integer math, the compiled sketches do
    not depend on the plan.
    """

    __slots__ = ("_num_shards",)

    def __init__(self, num_shards: int = 1) -> None:
        if int(num_shards) != num_shards or num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be a positive integer, got {num_shards!r}"
            )
        self._num_shards = int(num_shards)

    @property
    def num_shards(self) -> int:
        """Number of shards every pool splits into."""
        return self._num_shards

    def split(self, values: np.ndarray) -> "list[np.ndarray]":
        """The plan's contiguous chunks of one raw sample array (views)."""
        return shard_chunks(values, self._num_shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardPlan(num_shards={self._num_shards})"


class _ExecutorState:
    """Everything a dead executor must give back to the OS.

    Split out of :class:`ParallelExecutor` so a ``weakref.finalize``
    callback can reap it without holding (and so immortalising) the
    executor itself.  The finalizer doubles as an ``atexit`` hook — the
    stdlib runs any still-pending finalizers at interpreter shutdown —
    so even an executor that is *never* collected (a crashed server's
    module global, say) stops stranding fork-pool workers and
    ``/dev/shm`` segments.
    """

    __slots__ = (
        "pool",
        "segments",
        "scratch",
        "retired",
        "closed",
        "degraded",
        "counters",
        "events",
        "timings",
    )

    def __init__(self) -> None:
        self.pool: ProcessPoolExecutor | None = None
        self.segments: list = []
        self.scratch: dict = {}
        self.retired: list = []
        self.closed = False
        self.degraded = False
        self.counters = {
            "worker_crashes": 0,
            "respawns": 0,
            "retried_tasks": 0,
            "degraded_maps": 0,
            "slab_fallbacks": 0,
        }
        self.events: list = []
        self.timings = {
            "compile": 0.0,
            "rescore": 0.0,
            "argmin": 0.0,
            "commit": 0.0,
        }


def _reap_executor(state: _ExecutorState) -> None:
    """Shut one executor's pool down and release its shared segments.

    The body of :meth:`ParallelExecutor.close`, shared with the
    GC/atexit safety net.  Idempotent: the first call wins, later calls
    (explicit ``close`` after a finalizer, or vice versa) are no-ops.
    """
    if state.closed:
        return
    state.closed = True
    if state.pool is not None:
        state.pool.shutdown(wait=True)
        state.pool = None
    for segment in state.segments + state.retired:
        unregister_parent_segment(segment.name)
        try:
            segment.close()
        except BufferError:  # pragma: no cover - live array views remain
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
    state.segments = []
    state.scratch = {}
    state.retired = []


class ParallelExecutor:
    """Deterministic fan-out over a process pool (``workers=1`` = inline).

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) never creates a pool or a
        shared segment — ``map`` runs inline, ``shared_zeros`` falls
        back to plain arrays — so an executor-accepting call site needs
        no second code path for the serial case.
    plan:
        The :class:`ShardPlan` compiles split pools by; defaults to one
        shard per worker.
    resolve_min_batch:
        Smallest number of batched flatness-miss rows worth shipping to
        the pool; smaller batches resolve inline (per-probe IPC would
        dwarf the numpy work).  The conformance tests set ``1`` to force
        the parallel path on tiny fleets.

    max_respawns:
        How many times a crashed pool (a worker SIGKILLed by the OOM
        killer, a segfaulting fork, an injected chaos kill) is respawned
        and the in-flight task batch re-issued before the executor
        *degrades*: permanently falls back to inline ``workers=1``
        execution.  Every task is a pure, idempotent write, so a
        re-issued or degraded batch is byte-identical to a healthy one.
    learn_fan_min_candidates:
        Smallest per-round dirty-candidate count for which the lockstep
        learn engine fans its rescore over the pool
        (:mod:`repro.core.lockstep`).  ``None`` (the default) disables
        the fan — on a machine without spare cores the per-round IPC
        only costs; set a threshold to opt large-grid learns in.  Purely
        an evaluation strategy: results are byte-identical either way
        (the conformance matrix sets ``1`` to force the fan on tiny
        grids).
    faults:
        A test-only :class:`~repro.utils.faults.FaultPlan` chaos seam;
        ``None`` (the default) costs nothing on any path.

    ``map`` preserves task order and runs every task exactly once *per
    attempt*, so a parallel run is a reordering of the same arithmetic —
    results are combined positionally by the callers, never by
    completion order.  Recovery rides the same property: a broken pool
    loses the whole attempt, and the retry recomputes every task, so a
    partially-completed crashed batch can never leak half-written state
    into a result (slab writes are per-task idempotent).

    The degradation ladder is ``parallel → respawn (bounded) → inline``;
    every rung is byte-identical, and each transition emits a structured
    health event (:meth:`health`).

    Lifecycle: :meth:`close` (or the context manager) is still the
    polite way out, but an executor that is dropped without it — a
    crashed server, an abandoned session — is reaped by a
    ``weakref.finalize`` safety net that shuts the fork pool down and
    unlinks every shared segment, at collection time or at interpreter
    exit, whichever comes first.  An executor that *degrades* reaps its
    ``/dev/shm`` names eagerly at that moment (no worker can ever attach
    again; parent-held mappings stay valid until close).
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        plan: ShardPlan | None = None,
        resolve_min_batch: int = 256,
        max_respawns: int = 2,
        faults: "FaultPlan | None" = None,
        learn_fan_min_candidates: int | None = None,
    ) -> None:
        if int(workers) != workers or workers < 1:
            raise InvalidParameterError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if resolve_min_batch < 1:
            raise InvalidParameterError(
                f"resolve_min_batch must be >= 1, got {resolve_min_batch!r}"
            )
        if int(max_respawns) != max_respawns or max_respawns < 0:
            raise InvalidParameterError(
                f"max_respawns must be a non-negative integer, got {max_respawns!r}"
            )
        if learn_fan_min_candidates is not None and learn_fan_min_candidates < 1:
            raise InvalidParameterError(
                "learn_fan_min_candidates must be None or >= 1, "
                f"got {learn_fan_min_candidates!r}"
            )
        self._workers = int(workers)
        self._plan = plan if plan is not None else ShardPlan(self._workers)
        self._resolve_min_batch = int(resolve_min_batch)
        self._max_respawns = int(max_respawns)
        self._learn_fan_min_candidates = (
            None if learn_fan_min_candidates is None else int(learn_fan_min_candidates)
        )
        self._faults = faults
        self._state = _ExecutorState()
        self._finalizer = weakref.finalize(self, _reap_executor, self._state)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def workers(self) -> int:
        """Pool size (1 = inline)."""
        return self._workers

    @property
    def plan(self) -> ShardPlan:
        """The shard plan compiles split pools by."""
        return self._plan

    @property
    def parallel(self) -> bool:
        """Whether this executor fans work across processes at all.

        Flips to ``False`` permanently once the executor degrades —
        callers that branch on it (fleet compiles, miss-batch fan-out)
        then take the serial code path, which is byte-identical.
        """
        return self._workers > 1 and not self._state.degraded

    @property
    def degraded(self) -> bool:
        """Whether the respawn budget was exhausted (inline-only now)."""
        return self._state.degraded

    @property
    def resolve_min_batch(self) -> int:
        """Smallest flatness-miss batch shipped to the pool."""
        return self._resolve_min_batch

    @property
    def max_respawns(self) -> int:
        """Pool respawns allowed before degrading to inline execution."""
        return self._max_respawns

    @property
    def learn_fan_min_candidates(self) -> int | None:
        """Dirty-candidate floor for fanning lockstep rescores (None = off)."""
        return self._learn_fan_min_candidates

    def record_timing(self, phase: str, seconds: float) -> None:
        """Accumulate wall-clock into a per-phase profiling bucket.

        The learn engines bill their compile/rescore/argmin/commit time
        here; :meth:`health` (and the serving layer's ``stats()``)
        expose the buckets so perf work starts from a breakdown instead
        of a stopwatch.  Unknown phases get their own bucket.
        """
        timings = self._state.timings
        timings[phase] = timings.get(phase, 0.0) + float(seconds)

    def health(self) -> dict:
        """A structured snapshot of the executor's fault history.

        ``counters`` track worker crashes, pool respawns, re-issued
        tasks, maps served inline after degradation, and slab
        allocations that fell back to plain arrays; ``events`` is the
        bounded log of ladder transitions, oldest first; ``timings``
        holds the cumulative per-phase learn wall-clock buckets
        (:meth:`record_timing`).
        """
        state = self._state
        return {
            "workers": self._workers,
            "parallel": self.parallel,
            "degraded": state.degraded,
            "closed": state.closed,
            **dict(state.counters),
            "timings": dict(state.timings),
            "events": [dict(event) for event in state.events],
        }

    @property
    def _closed(self) -> bool:
        return self._state.closed

    @property
    def _segments(self) -> list:
        return self._state.segments

    def _record_event(self, kind: str, detail: str) -> None:
        events = self._state.events
        events.append({"kind": kind, "detail": detail})
        if len(events) > _MAX_HEALTH_EVENTS:
            del events[: len(events) - _MAX_HEALTH_EVENTS]

    # -------------------------------------------------------------- #
    # execution
    # -------------------------------------------------------------- #

    def map(self, fn, tasks: "list") -> list:
        """Run ``fn`` over ``tasks``, preserving order — and self-heal.

        Inline when the executor is serial, degraded, or the batch is
        trivial; otherwise through the (lazily created) process pool.
        ``fn`` must be a module-level function and every task picklable
        — which the shard task payloads (chunk arrays or
        :class:`~repro.utils.shm.SharedSlab` handles plus scalars) are.

        A pool broken mid-batch (worker death: SIGKILL, OOM, segfault)
        is respawned and the whole attempt re-issued, up to
        ``max_respawns`` times; past the budget the executor degrades
        permanently and serves this batch — and every later one —
        inline.  Tasks are pure idempotent writes, so every recovery
        rung returns byte-identical results.
        """
        tasks = list(tasks)
        if self._workers == 1 or self._state.degraded or len(tasks) <= 1:
            if self._state.degraded:
                self._state.counters["degraded_maps"] += 1
            return self._run_inline(fn, tasks)
        attempts = 0
        while True:
            payload, target = self._arm(fn, tasks)
            try:
                pool = self._ensure_pool()
                chunksize = max(1, len(tasks) // (self._workers * 2))
                return list(pool.map(target, payload, chunksize=chunksize))
            except BrokenExecutor:
                attempts += 1
                self._discard_broken_pool(attempts)
                if attempts > self._max_respawns:
                    self._degrade(
                        f"respawn budget ({self._max_respawns}) exhausted after "
                        f"{attempts} pool failures"
                    )
                    self._state.counters["degraded_maps"] += 1
                    return self._run_inline(fn, tasks)
                self._state.counters["retried_tasks"] += len(tasks)

    def _arm(self, fn, tasks: "list") -> tuple:
        """The (payload, target) for one attempt, faults armed if any.

        With no :class:`~repro.utils.faults.FaultPlan` this is the bare
        ``(tasks, fn)`` — zero overhead on the production path.  With a
        plan, each task is wrapped with its directive for this attempt;
        the plan's task counter advances per attempt, so a retried batch
        sees fresh schedule positions.
        """
        if self._faults is None:
            return tasks, fn
        directives = self._faults.task_directives(len(tasks))
        parent_pid = os.getpid()
        return (
            [
                (fn, task, directive, parent_pid)
                for task, directive in zip(tasks, directives)
            ],
            _run_with_fault,
        )

    def _run_inline(self, fn, tasks: "list") -> list:
        """One attempt executed in-process (serial/degraded/trivial)."""
        payload, target = self._arm(fn, tasks)
        return [target(task) for task in payload]

    def _discard_broken_pool(self, attempt: int) -> None:
        """Tear the broken pool down and log the crash; respawn is lazy."""
        state = self._state
        state.counters["worker_crashes"] += 1
        self._record_event(
            "worker_crash", f"pool broken on map attempt {attempt}"
        )
        if state.pool is not None:
            state.pool.shutdown(wait=True)
            state.pool = None
        if attempt <= self._max_respawns:
            state.counters["respawns"] += 1
            self._record_event(
                "respawn", f"pool respawned (attempt {attempt + 1})"
            )
        # Mappings parked by release() under live views can be retried
        # now — eager reaping, rather than waiting for close/finalize.
        still_parked = []
        for segment in state.retired:
            try:
                segment.close()
                unregister_parent_segment(segment.name)
            except BufferError:  # pragma: no cover - views still live
                still_parked.append(segment)
        state.retired = still_parked

    def _degrade(self, reason: str) -> None:
        """Fall back to inline execution for good; reap shm names now.

        The executor keeps serving — every later :meth:`map` runs in the
        parent, :meth:`shared_zeros` / :meth:`scratch` hand out plain
        arrays — but nothing will ever attach a segment by name again,
        so every ``/dev/shm`` name is unlinked *eagerly* instead of at
        close/finalize.  Parent-held mappings (live compiled stacks)
        survive via the parent-segment registry until :meth:`close`.
        """
        state = self._state
        if state.degraded:  # pragma: no cover - defensive; degrade is one-way
            return
        state.degraded = True
        self._record_event("degraded", reason)
        if state.pool is not None:  # pragma: no cover - pool already torn down
            state.pool.shutdown(wait=True)
            state.pool = None
        for segment in state.segments:
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        state.retired.extend(state.segments)
        state.segments = []
        state.scratch = {}

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise InvalidParameterError("executor is closed")
        if self._state.pool is None:
            methods = multiprocessing.get_all_start_methods()
            # fork shares the parent's read-only state for free and
            # starts in milliseconds; spawn is the portable fallback.
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._state.pool = ProcessPoolExecutor(
                max_workers=self._workers, mp_context=context
            )
        return self._state.pool

    # -------------------------------------------------------------- #
    # shared-memory slabs
    # -------------------------------------------------------------- #

    def shared_zeros(
        self, shape: tuple, dtype=np.int64
    ) -> tuple[np.ndarray, SharedSlab | None]:
        """A zeroed array workers can attach to, plus its handle.

        On a serial (or degraded) executor this is a plain ``np.zeros``
        with a ``None`` handle — callers branch on the handle, not on
        the worker count.  An allocation that fails — a full
        ``/dev/shm``, or an injected chaos fault — degrades to the same
        plain-array shape rather than raising, bumping the
        ``slab_fallbacks`` health counter.  Segments are owned by the
        executor and released by :meth:`close`.
        """
        if self._workers == 1 or self._state.degraded:
            return np.zeros(shape, dtype=dtype), None
        if self._closed:
            raise InvalidParameterError("executor is closed")
        if self._faults is not None and self._faults.take_alloc():
            self._note_slab_fallback("injected allocation failure")
            return np.zeros(shape, dtype=dtype), None
        try:
            segment, array, slab = create_slab(shape, dtype, zero=True)
        except OSError as exc:  # pragma: no cover - needs a full /dev/shm
            self._note_slab_fallback(f"shared allocation failed: {exc}")
            return np.zeros(shape, dtype=dtype), None
        register_parent_segment(segment)
        self._state.segments.append(segment)
        return array, slab

    def scratch(
        self, key: str, shape: tuple, dtype=np.int64
    ) -> tuple[np.ndarray, SharedSlab | None]:
        """A reusable (uninitialised) shared scratch slab, keyed.

        One segment lives per ``key``, grown when a request outsizes it
        — so a fleet recompiling dirty members on every refresh reuses
        one input slab instead of leaking a segment per pass.  Serial
        and degraded executors return a plain array and a ``None``
        handle, as does an allocation that fails (injected or real) —
        callers already branch on the handle.
        """
        if self._workers == 1 or self._state.degraded:
            return np.empty(shape, dtype=dtype), None
        if self._closed:
            raise InvalidParameterError("executor is closed")
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        segment = self._state.scratch.get(key)
        if segment is not None and segment.size < nbytes:
            self._state.segments.remove(segment)
            del self._state.scratch[key]
            unregister_parent_segment(segment.name)
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live array views remain
                self._state.retired.append(segment)
            segment = None
        if segment is None:
            if self._faults is not None and self._faults.take_alloc():
                self._note_slab_fallback("injected allocation failure")
                return np.empty(shape, dtype=dtype), None
            try:
                segment = create_slab(shape, dtype, zero=False)[0]
            except OSError as exc:  # pragma: no cover - needs a full /dev/shm
                self._note_slab_fallback(f"shared allocation failed: {exc}")
                return np.empty(shape, dtype=dtype), None
            register_parent_segment(segment)
            self._state.scratch[key] = segment
            self._state.segments.append(segment)
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        return array, SharedSlab(segment.name, tuple(shape), dtype.str)

    def _note_slab_fallback(self, detail: str) -> None:
        """Record one slab request served by a plain (private) array."""
        self._state.counters["slab_fallbacks"] += 1
        self._record_event("slab_fallback", detail)

    def release(self, *slabs: "SharedSlab | None") -> None:
        """Release ``shared_zeros`` segments before :meth:`close`.

        Long-lived executors serve many short-lived fleets; each fleet
        registers a finalizer that hands its stack slabs back here when
        it is collected, so ``/dev/shm`` usage tracks the *live* fleets
        rather than every fleet ever built.  The segment's name is
        unlinked immediately; if some array still exports the buffer
        (e.g. a session kept a compiled member alive past its fleet),
        the mapping is parked and unmapped at :meth:`close`.  Idempotent
        and safe after :meth:`close`.
        """
        if self._closed:
            return
        state = self._state
        for slab in slabs:
            if slab is None:
                continue
            segment = next(
                (s for s in state.segments if s.name == slab.name), None
            )
            if segment is None:
                continue
            state.segments.remove(segment)
            unregister_parent_segment(segment.name)
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live array views remain
                state.retired.append(segment)

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Shut the pool down and release every shared segment.

        Idempotent, and interchangeable with the GC safety net: an
        executor dropped without ``close()`` is reaped by its
        ``weakref.finalize`` (at collection or interpreter exit), and a
        ``close()`` after that is a no-op.
        """
        self._finalizer()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelExecutor(workers={self._workers}, "
            f"plan={self._plan!r}, closed={self._closed})"
        )


# ------------------------------------------------------------------ #
# worker task functions (module-level, picklable)
# ------------------------------------------------------------------ #


def _run_with_fault(payload: tuple):
    """Run one task with its chaos directive armed (fault-plan seam).

    ``payload``: ``(fn, task, directive, parent_pid)``.  A ``kill``
    directive SIGKILLs the worker process *before* the task body — but
    only off the parent: when the task ends up executing inline (serial,
    degraded, or trivial-batch paths) the kill is skipped and the
    healthy computation runs, which is what keeps every rung of the
    degradation ladder byte-identical.  A ``delay`` directive sleeps
    first and leaves the result untouched.
    """
    fn, task, directive, parent_pid = payload
    if directive is not None:
        kind = directive[0]
        if kind == KILL and os.getpid() != parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - worker dies
        elif kind == DELAY:
            time.sleep(directive[1])
    return fn(task)


def _compile_member_rows(args: tuple) -> None:
    """Compile one fleet member's slab from the shared sample stack.

    ``args``: ``(sets_slab, row, fleet_index, n, dense, num_shards,
    count_slab, pair_slab)``.  Reads member ``row``'s ``(r, m)`` sample
    sets from the input slab, builds its hit/pair prefix rows through
    the shard-mergeable builder (bit-equal to the monolithic
    :meth:`~repro.core.flatness.FleetTesterSketches.compile_member`
    path), and writes the ``(n + 1, r)`` gather layout straight into
    the fleet's shared stacks — nothing but the handle travels back.
    """
    (sets_slab, row, fleet_index, n, dense, num_shards, count_slab, pair_slab) = args
    sets = sets_slab.attach()[row]
    grid = np.arange(n + 1, dtype=np.int64)
    count_rows, pair_rows = sharded_interval_prefixes(
        list(sets), n, grid, num_shards=num_shards, dense=dense
    )
    count_slab.attach()[fleet_index] = count_rows.T
    pair_slab.attach()[fleet_index] = pair_rows.T
