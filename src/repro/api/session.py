"""`HistogramSession`: draw once, sketch once, answer many questions.

The paper's headline is sub-linear *sample* complexity, and the one-shot
entry points honour it per call — but a workload that asks several
questions of the same distribution (a ``(k, epsilon)`` grid, model
selection, learn-then-test pipelines) re-draws and re-sketches for every
call.  :class:`HistogramSession` amortises that: constructed from any
:class:`~repro.api.SampleSource`, it maintains one growable sample pool
per sketch family (see :class:`~repro.api.SketchBundle`) and answers

* :meth:`learn` / :meth:`learn_many` — Algorithm 1 (Theorems 1/2),
* :meth:`test_l2` / :meth:`test_l1` / :meth:`test_many` — Algorithm 2
  (Theorems 3/4),
* :meth:`min_k` — the smallest credible bucket count,

with cross-call caching of raw draws, built sketches, and compiled
candidate grids.  Sharing samples across calls is sound for the same
reason :func:`repro.core.selection.estimate_min_k` may share them across
candidate ``k``: the analyses union-bound over all ``n^2`` intervals, so
every estimate is simultaneously valid.  (The price is that answers are
*correlated* — repeated calls do not give independent 2/3-confidence
amplification; open a fresh session per independent trial for that.)

A fresh session's *first* sampling operation is seed-for-seed identical
to the corresponding legacy function — it performs the same draws in the
same order as :func:`~repro.core.greedy.learn_histogram`,
:func:`~repro.core.tester.test_k_histogram_l2` /
:func:`~repro.core.tester.test_k_histogram_l1`, or
:func:`~repro.core.selection.estimate_min_k`.  Later operations share
the generator, so once any draw has happened the other family's fill
(correctly) no longer reproduces a legacy call at the same seed.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import replace

import numpy as np

from repro.api.sketches import SketchBundle
from repro.api.source import SampleSource, as_sample_source
from repro.core.greedy import _ENGINES, learn_from_samples
from repro.core.lockstep import LockstepRun, lockstep_learn
from repro.core.params import GreedyParams, TesterParams, greedy_rounds
from repro.core.results import LearnResult, TestResult
from repro.core.selection import SelectionResult, select_min_k_on_sketch
from repro.core.tester import (
    test_l1_on_sketch,
    test_l2_on_sketch,
    validate_tester_engine,
)
from repro.errors import InvalidParameterError
from repro.utils.rng import as_rng


class HistogramSession:
    """Batched learn/test facade over one shared sample budget.

    Parameters
    ----------
    source:
        Anything :func:`repro.api.as_sample_source` accepts — a
        distribution, a reservoir, or a raw value array.
    n:
        Domain size.
    rng:
        Seed or generator; owns every draw the session makes.
    scale:
        Default multiplier on the paper's sample sizes when no explicit
        budget or params are given (as in the legacy functions).
    method:
        Default learner candidate strategy, ``"fast"`` or
        ``"exhaustive"``.
    engine:
        Default learner scoring engine: ``"incremental"`` (dirty-region
        rescoring), ``"full"`` (rescore everything each round; kept for
        the equivalence tests), or ``"lockstep"`` (cached per-grid-point
        score terms with dirty-span refresh — the engine fleets batch
        across members, see :mod:`repro.core.lockstep`).  All three are
        byte-identical.
    tester_engine:
        Default tester flatness engine, ``"compiled"`` (precompiled
        prefix gathers plus a memoised oracle, shared across every
        tester/min-k call on one budget) or ``"full"`` (per-query
        searches; the byte-identical reference path).
    learn_budget:
        Optional fixed :class:`GreedyParams` for every learn call; only
        the round count is re-derived per ``(k, epsilon)``.  A fixed
        budget is what makes a grid share one compiled sketch.
    test_budget:
        Optional fixed :class:`TesterParams` for every test/min-k call.
    max_candidates:
        Default candidate cap forwarded to the learner.
    executor:
        Optional :class:`repro.api.ParallelExecutor`: sketch compiles
        run through the shard-mergeable builders, with per-shard work
        fanned across the executor's process pool when it is parallel.
        Purely an evaluation strategy — results are byte-identical to
        the single-buffer engine for any ``(shards, workers)`` choice.
        The executor is owned by the caller (one can serve many
        sessions and fleets); close it when done.
    """

    def __init__(
        self,
        source: object,
        n: int,
        *,
        rng: int | None | np.random.Generator = None,
        scale: float = 1.0,
        method: str = "fast",
        engine: str = "incremental",
        tester_engine: str = "compiled",
        learn_budget: GreedyParams | None = None,
        test_budget: TesterParams | None = None,
        max_candidates: int | None = None,
        executor: "object | None" = None,
    ) -> None:
        if int(n) != n or n < 1:
            raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
        if engine not in _ENGINES:
            raise InvalidParameterError(
                f"engine must be one of {_ENGINES}, got {engine!r}"
            )
        validate_tester_engine(tester_engine)
        self._source: SampleSource = as_sample_source(source, n)
        self._n = int(n)
        self._rng = as_rng(rng)
        self._scale = float(scale)
        self._method = method
        self._engine = engine
        self._tester_engine = tester_engine
        self._learn_budget = learn_budget
        self._test_budget = test_budget
        self._max_candidates = max_candidates
        self._executor = executor
        self._bundle = SketchBundle(
            self._source, self._n, self._rng, executor=executor
        )

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    @property
    def source(self) -> SampleSource:
        """The normalised sample source."""
        return self._source

    @property
    def samples_drawn(self) -> int:
        """Total samples drawn from the source so far."""
        return self._bundle.samples_drawn

    @property
    def draw_events(self) -> dict[str, int]:
        """Pool-filling draw events per sketch family (diagnostics)."""
        return dict(self._bundle.draw_events)

    @property
    def generation(self) -> int:
        """Mutation epoch of the underlying bundle.

        Monotonically increasing; two reads of the same value bracket a
        span in which no retained sketch state changed, so any derived
        answer computed in between is still valid.
        """
        return self._bundle.generation

    def invalidate(self) -> None:
        """Forget all drawn samples and sketches.

        Call after the source's contents change (e.g. a reservoir that
        absorbed new stream items); the next operation re-draws.
        """
        self._bundle.invalidate()

    def snapshot(self, path) -> None:
        """Write this session's warm state (pools, sketches, rng) to ``path``.

        See :meth:`repro.api.SketchBundle.snapshot`; the write is
        crash-safe (temp file + fsync + atomic rename).
        """
        self._bundle.snapshot(path)

    def restore(self, path) -> None:
        """Adopt a snapshot's warm state in place (zero-copy mmap views).

        Raises :class:`~repro.errors.SnapshotError` on a missing,
        corrupt, or mismatched snapshot — the session stays usable and
        rebuilds cold.  See :meth:`repro.api.SketchBundle.restore`.
        """
        self._bundle.restore(path)

    # -------------------------------------------------------------- #
    # parameter resolution
    # -------------------------------------------------------------- #

    def _learn_params(
        self, k: int, epsilon: float, params: GreedyParams | None
    ) -> GreedyParams:
        if params is not None:
            return params
        if self._learn_budget is not None:
            return replace(
                self._learn_budget, rounds=greedy_rounds(k, epsilon)
            )
        return GreedyParams.from_paper(self._n, k, epsilon, scale=self._scale)

    def _test_params(
        self, norm: str, k: int, epsilon: float, params: TesterParams | None
    ) -> TesterParams:
        if params is not None:
            return params
        if self._test_budget is not None:
            return self._test_budget
        if norm == "l2":
            return TesterParams.l2_from_paper(self._n, epsilon, scale=self._scale)
        return TesterParams.l1_from_paper(self._n, k, epsilon, scale=self._scale)

    # -------------------------------------------------------------- #
    # learning
    # -------------------------------------------------------------- #

    def learn(
        self,
        k: int,
        epsilon: float,
        *,
        method: str | None = None,
        engine: str | None = None,
        params: GreedyParams | None = None,
        max_candidates: int | None = None,
    ) -> LearnResult:
        """Learn a near-optimal k-histogram from the shared pool.

        Semantics of :func:`repro.core.greedy.learn_histogram`; samples
        and compiled sketches are reused across calls whenever the
        resolved sizes allow it.
        """
        method = self._method if method is None else method
        engine = self._engine if engine is None else engine
        if max_candidates is None:
            max_candidates = self._max_candidates
        resolved = self._learn_params(k, epsilon, params)
        samples, compiled = self._bundle.compiled_sketches(
            resolved, method=method, max_candidates=max_candidates
        )
        return learn_from_samples(
            samples,
            self._n,
            k,
            epsilon,
            params=resolved,
            method=method,
            engine=engine,
            compiled=compiled,
            executor=self._executor,
        )

    def prefetch_learn(
        self,
        grid: Iterable[tuple[int, float]],
        *,
        params: GreedyParams | None = None,
    ) -> None:
        """Grow the learn-family pool to cover a planned grid up front.

        One draw event covers the elementwise-largest resolved budget;
        the subsequent :meth:`learn` calls are then sample-free.  Useful
        on its own to move sampling cost out of a timed or
        latency-sensitive region.
        """
        resolved = [self._learn_params(k, e, params) for k, e in grid]
        if not resolved:
            return
        self._bundle.ensure_learn_pool(
            GreedyParams(
                weight_sample_size=max(p.weight_sample_size for p in resolved),
                collision_sets=max(p.collision_sets for p in resolved),
                collision_set_size=max(p.collision_set_size for p in resolved),
                rounds=1,
            )
        )

    def learn_many(
        self,
        grid: Iterable[tuple[int, float]],
        *,
        method: str | None = None,
        engine: str | None = None,
        params: GreedyParams | None = None,
        max_candidates: int | None = None,
    ) -> list[LearnResult]:
        """:meth:`learn` for every ``(k, epsilon)`` point of a grid.

        The whole grid is planned before anything is drawn
        (:meth:`prefetch_learn`), so the batch issues at most one draw
        event for the learn family regardless of grid size.  On the
        lockstep engine the points additionally run their greedy rounds
        *together* (one rescore/argmin/commit pass per round across the
        batch, :func:`repro.core.lockstep.lockstep_learn`) — results
        stay byte-identical to calling :meth:`learn` per point.
        """
        points = list(grid)
        self.prefetch_learn(points, params=params)
        engine = self._engine if engine is None else engine
        if engine == "lockstep":
            method = self._method if method is None else method
            if max_candidates is None:
                max_candidates = self._max_candidates
            runs = []
            for k, epsilon in points:
                resolved = self._learn_params(k, epsilon, params)
                _, compiled = self._bundle.compiled_sketches(
                    resolved, method=method, max_candidates=max_candidates
                )
                runs.append(
                    LockstepRun(
                        compiled=compiled,
                        params=resolved,
                        method=method,
                        n=self._n,
                    )
                )
            return lockstep_learn(runs, executor=self._executor)
        return [
            self.learn(
                k,
                epsilon,
                method=method,
                engine=engine,
                params=params,
                max_candidates=max_candidates,
            )
            for k, epsilon in points
        ]

    # -------------------------------------------------------------- #
    # testing
    # -------------------------------------------------------------- #

    def _tester_inputs(self, resolved: TesterParams, engine: str | None):
        """Resolve the engine plus (multi, compiled) for one tester call."""
        engine = self._tester_engine if engine is None else engine
        validate_tester_engine(engine)
        if engine == "compiled":
            multi, compiled = self._bundle.compiled_tester(resolved)
        else:
            multi, compiled = self._bundle.multi_sketch(resolved), None
        return engine, multi, compiled

    def test_l2(
        self,
        k: int,
        epsilon: float,
        *,
        params: TesterParams | None = None,
        engine: str | None = None,
    ) -> TestResult:
        """Theorem 3 tester (l2 norm) over the shared test-family pool.

        With ``engine="compiled"`` (the session default) the call runs on
        the cached :class:`~repro.core.flatness.CompiledTesterSketches`,
        sharing its flatness-verdict memo with every other tester or
        min-k call on the same budget.
        """
        resolved = self._test_params("l2", k, epsilon, params)
        engine, multi, compiled = self._tester_inputs(resolved, engine)
        return test_l2_on_sketch(
            multi, self._n, k, epsilon, resolved, engine=engine, compiled=compiled
        )

    def test_l1(
        self,
        k: int,
        epsilon: float,
        *,
        params: TesterParams | None = None,
        engine: str | None = None,
    ) -> TestResult:
        """Theorem 4 tester (l1 norm) over the shared test-family pool."""
        resolved = self._test_params("l1", k, epsilon, params)
        engine, multi, compiled = self._tester_inputs(resolved, engine)
        return test_l1_on_sketch(
            multi, self._n, k, epsilon, resolved, engine=engine, compiled=compiled
        )

    def test_many(
        self,
        grid: Iterable[tuple[int, float]],
        *,
        norm: str = "l2",
        params: TesterParams | None = None,
        engine: str | None = None,
    ) -> list[TestResult]:
        """Run the tester at every ``(k, epsilon)`` point of a grid.

        Like :meth:`learn_many`, the pool is grown once to the largest
        resolved budget before any point runs.  Grid points whose
        resolved budgets coincide share one compiled oracle, so interval
        verdicts established at one ``k`` are free at every other — the
        binary searches of nearby points mostly overlap.
        """
        if norm not in ("l1", "l2"):
            raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")
        points = list(grid)
        if points:
            resolved = [self._test_params(norm, k, e, params) for k, e in points]
            self._bundle.ensure_tester_pool(
                TesterParams(
                    num_sets=max(p.num_sets for p in resolved),
                    set_size=max(p.set_size for p in resolved),
                )
            )
        runner = self.test_l2 if norm == "l2" else self.test_l1
        return [runner(k, epsilon, params=params, engine=engine) for k, epsilon in points]

    # -------------------------------------------------------------- #
    # model selection
    # -------------------------------------------------------------- #

    def min_k(
        self,
        epsilon: float,
        *,
        max_k: int | None = None,
        norm: str = "l1",
        params: TesterParams | None = None,
        engine: str | None = None,
    ) -> SelectionResult:
        """Smallest accepted ``k`` (semantics of :func:`estimate_min_k`).

        Shares the test-family pool with :meth:`test_l1` /
        :meth:`test_l2`: after any tester call with a compatible budget,
        model selection is sample-free — and on the compiled engine it
        additionally inherits the flatness-verdict memo, so intervals
        those calls already certified are not re-estimated.
        """
        if max_k is None:
            max_k = self._n
        if not 1 <= max_k <= self._n:
            raise InvalidParameterError(f"max_k must be in [1, n], got {max_k}")
        if norm not in ("l1", "l2"):
            raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")
        resolved = self._test_params(norm, max_k, epsilon, params)
        engine, multi, compiled = self._tester_inputs(resolved, engine)
        return select_min_k_on_sketch(
            multi,
            self._n,
            epsilon,
            max_k=max_k,
            norm=norm,
            params=resolved,
            engine=engine,
            compiled=compiled,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HistogramSession(n={self._n}, samples_drawn={self.samples_drawn}, "
            f"draw_events={self.draw_events})"
        )
