"""`HistogramFleet`: batched learn/test over many distributions at once.

The session facade (:class:`~repro.api.HistogramSession`) amortises work
*within* one distribution; a serving deployment watches a fleet of
streams over one shared domain and asks the same questions of each.
Looping sessions answers that correctly but pays the per-member
compilation stack — per-set sketch builds, per-member prefix
compilation, and a Python-level binary search per probe — ``F`` times.
:class:`HistogramFleet` batches all three:

* **pooled draws** — every operation grows all members' sample pools in
  one planned pass (each member's draws stay in its own generator's
  session order, which is what keeps the fleet replayable);
* **stacked compilation** — per-member hit/pair prefix arrays are built
  sort-free (:func:`repro.samples.collision.dense_interval_prefixes`)
  and stacked on a leading fleet axis
  (:class:`~repro.core.flatness.FleetTesterSketches`), with no
  per-member :class:`~repro.samples.estimators.MultiSketch` ever built;
* **lockstep probing** — ``test_l2`` / ``test_l1`` / ``test_many`` /
  ``min_k`` run every member's Algorithm 2 search in lockstep
  (:func:`repro.core.tester.fleet_flat_partition`), batching fresh
  flatness statistics across members while each member keeps its own
  verdict memo;
* **lockstep learning** — ``learn`` / ``learn_many`` (on the default
  ``engine="lockstep"``) drive every member's Algorithm-1 greedy rounds
  together (:func:`repro.core.lockstep.lockstep_learn`): one
  rescore/argmin/commit pass per round over all still-active members'
  stacked score state, with large-grid rescores optionally fanned over
  the executor's pool.

The binding contract mirrors the session and engine PRs before it: every
fleet operation is **byte-identical** — verdicts, learned histograms,
query logs, and per-member memo accounting — to looping
``HistogramSession(sources[f], n, rng=rngs[f], ...)`` over the members
with the same seeds.  ``BENCH_fleet.json`` tracks the measured speedup.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Sequence

import numpy as np

from repro.api.session import HistogramSession
from repro.api.shard import _compile_member_rows
from repro.core.flatness import FleetTesterSketches
from repro.core.greedy import compile_greedy_sketches
from repro.core.lockstep import LockstepRun, lockstep_learn
from repro.core.params import GreedyParams, TesterParams
from repro.core.results import LearnResult, TestResult
from repro.core.selection import SelectionResult, select_min_k_on_fleet
from repro.core.tester import fleet_test_on_sketches, validate_tester_engine
from repro.errors import InvalidParameterError
from repro.utils.rng import spawn_rngs


class HistogramFleet:
    """Vectorised learn/test facade over ``F`` sources sharing a domain.

    Parameters
    ----------
    sources:
        One entry per member — anything
        :func:`repro.api.as_sample_source` accepts.
    n:
        The shared domain size.
    rngs:
        Per-member seeds or generators (one per source).  Member ``f``
        of the fleet is byte-equivalent to
        ``HistogramSession(sources[f], n, rng=rngs[f], ...)``.
    rng:
        Alternative to ``rngs``: a base seed/generator from which one
        independent child generator per member is spawned
        (:func:`repro.utils.rng.spawn_rngs`).  Mutually exclusive with
        ``rngs``.
    scale / method / engine / tester_engine / learn_budget /
    test_budget / max_candidates:
        As in :class:`~repro.api.HistogramSession`, applied to every
        member — except the fleet's learner ``engine`` defaults to
        ``"lockstep"``, the batched path (byte-identical to the
        sessions' ``"incremental"`` default).
    executor:
        Optional :class:`~repro.api.ParallelExecutor`, shared by every
        member session.  With a parallel executor the fleet's tester
        stacks live in shared-memory slabs: member compiles fan across
        the pool (each worker writes its member's ``(n + 1, r)`` layout
        in place) and large batches of flatness misses resolve across
        workers.  Purely an evaluation strategy — byte-identical
        results for any ``(shards, workers)``; the caller owns (and
        closes) the executor.

    Operations return one result per member, in member order.  Passing
    ``engine="full"`` / ``tester_engine="full"`` (at construction or per
    call) runs the members through their sessions' reference paths —
    the fleet's own batched path is the ``"compiled"`` engine, and the
    equivalence suite holds the two bit-for-bit equal.
    """

    def __init__(
        self,
        sources: Sequence[object],
        n: int,
        *,
        rngs: "Sequence[int | None | np.random.Generator] | None" = None,
        rng: "int | None | np.random.Generator" = None,
        scale: float = 1.0,
        method: str = "fast",
        engine: str = "lockstep",
        tester_engine: str = "compiled",
        learn_budget: GreedyParams | None = None,
        test_budget: TesterParams | None = None,
        max_candidates: int | None = None,
        executor: "object | None" = None,
    ) -> None:
        sources = list(sources)
        if not sources:
            raise InvalidParameterError("HistogramFleet needs at least one source")
        if rngs is not None and rng is not None:
            raise InvalidParameterError("pass rngs or rng, not both")
        if rngs is None:
            rngs = spawn_rngs(rng, len(sources))
        else:
            rngs = list(rngs)
            if len(rngs) != len(sources):
                raise InvalidParameterError(
                    f"got {len(sources)} sources but {len(rngs)} rngs"
                )
        self._n = int(n)
        self._method = method
        self._engine = engine
        self._tester_engine = tester_engine
        self._max_candidates = max_candidates
        self._executor = executor
        self._sessions = [
            HistogramSession(
                source,
                n,
                rng=member_rng,
                scale=scale,
                method=method,
                engine=engine,
                tester_engine=tester_engine,
                learn_budget=learn_budget,
                test_budget=test_budget,
                max_candidates=max_candidates,
                executor=executor,
            )
            for source, member_rng in zip(sources, rngs)
        ]
        # One FleetTesterSketches per tester budget, lazily built and
        # repaired member by member (see _fleet_tester).
        self._tester_fleet_cache: dict[tuple[int, int], FleetTesterSketches] = {}

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def size(self) -> int:
        """Number of fleet members ``F``."""
        return len(self._sessions)

    @property
    def n(self) -> int:
        """The shared domain size."""
        return self._n

    def session(self, member: int) -> HistogramSession:
        """Member ``member``'s underlying session (shared pools and all)."""
        return self._sessions[member]

    @property
    def samples_drawn(self) -> list[int]:
        """Per-member total samples drawn so far."""
        return [session.samples_drawn for session in self._sessions]

    @property
    def draw_events(self) -> list[dict[str, int]]:
        """Per-member pool-filling draw events (diagnostics)."""
        return [session.draw_events for session in self._sessions]

    def generation(self, member: int) -> int:
        """Member ``member``'s mutation epoch (see
        :attr:`HistogramSession.generation`)."""
        return self._sessions[member].generation

    @property
    def generations(self) -> list[int]:
        """Per-member mutation epochs."""
        return [session.generation for session in self._sessions]

    def invalidate(self, member: int | None = None) -> None:
        """Forget drawn samples and sketches, fleet-wide or per member.

        Per-member invalidation is lazy and local: only that member's
        pools, caches, and fleet slabs drop; every other member's
        compiled state (and verdict memos) survives untouched.  The next
        operation re-draws and recompiles just the stale member.
        """
        members = range(self.size) if member is None else (member,)
        for index in members:
            self._sessions[index].invalidate()
            for fleet_sketches in self._tester_fleet_cache.values():
                fleet_sketches.drop_member(index)

    # -------------------------------------------------------------- #
    # persistence
    # -------------------------------------------------------------- #

    def snapshot(self, path) -> None:
        """Write every member's warm state to one snapshot file.

        The stacked ``(F, n+1, r)`` tester slabs are not persisted —
        a restored fleet re-adopts each member's compiled layout into
        fresh stacks on the next operation, byte-identically.
        """
        from repro.persist import codec, format as persist_format

        meta, slabs = codec.fleet_state(self)
        persist_format.write_snapshot(path, kind="fleet", meta=meta, slabs=slabs)

    def restore(self, path) -> None:
        """Adopt a whole-fleet snapshot in place (zero-copy per member).

        The snapshot must come from a fleet of the same shape and
        configuration (``n``, member count, engines); anything else —
        including a missing or corrupt file — raises
        :class:`~repro.errors.SnapshotError` and leaves the fleet able
        to rebuild cold.
        """
        from repro.persist import codec, format as persist_format

        snap = persist_format.load_snapshot(path, kind="fleet")
        codec.restore_fleet(self, snap.meta, snap.slab)

    # -------------------------------------------------------------- #
    # learning
    # -------------------------------------------------------------- #

    def learn(
        self,
        k: int,
        epsilon: float,
        *,
        method: str | None = None,
        engine: str | None = None,
        params: GreedyParams | None = None,
        max_candidates: int | None = None,
        members: "Sequence[int] | None" = None,
    ) -> list[LearnResult]:
        """Learn a near-optimal k-histogram per member, batched.

        Pools are grown for all listed members first (one planned pass),
        then members missing a compiled grid for this configuration are
        compiled through the sort-free dense builder and planted into
        their sessions' caches.  On the default ``engine="lockstep"``
        the members' greedy rounds then run *together* — one
        rescore/argmin/commit pass per round across the active members
        (:func:`repro.core.lockstep.lockstep_learn`); other engines loop
        :meth:`HistogramSession.learn`.  Either way results are the
        sessions' results, byte for byte.  ``members`` restricts the op
        to a subset of the fleet (results come back in the listed
        order) — the entry point serving batches and partial maintainer
        rebuilds coalesce into.
        """
        method = self._method if method is None else method
        engine = self._engine if engine is None else engine
        if max_candidates is None:
            max_candidates = self._max_candidates
        members = self._members(members)
        resolved = self._sessions[0]._learn_params(k, epsilon, params)
        compiled = self._ensure_learn_compiled(
            members, resolved, method, max_candidates
        )
        if engine == "lockstep":
            runs = [
                LockstepRun(
                    compiled=member_compiled,
                    params=resolved,
                    method=method,
                    n=self._n,
                )
                for member_compiled in compiled
            ]
            return lockstep_learn(runs, executor=self._executor)
        return [
            self._sessions[member].learn(
                k,
                epsilon,
                method=method,
                engine=engine,
                params=params,
                max_candidates=max_candidates,
            )
            for member in members
        ]

    def _ensure_learn_compiled(
        self,
        members: "list[int]",
        resolved: GreedyParams,
        method: str,
        max_candidates: int | None,
    ) -> "list":
        """Grow pools and plant compiled grids for ``members``, in order.

        Pool draws and any candidate-cap rng consumption happen member
        by member in the listed order — exactly the order looped
        sessions would use — which is what keeps every downstream learn
        route (looped, lockstep, fanned) seed-for-seed replayable.
        Returns each member's compiled sketches, positionally.
        """
        key = (
            method,
            max_candidates,
            resolved.weight_sample_size,
            resolved.collision_sets,
            resolved.collision_set_size,
        )
        # Same guard as the tester compiler: counting-based prefixes pay
        # O(r n); on very large sparse domains fall back to the one-sort
        # builder (bit-identical either way).
        prefixes = (
            "dense"
            if self._n + 1
            <= 4 * resolved.collision_sets * resolved.collision_set_size
            else "sorted"
        )
        compiled_members = []
        for member in members:
            session = self._sessions[member]
            bundle = session._bundle
            samples = bundle.learn_samples(resolved)
            if key not in bundle._compiled_cache:
                compiled = compile_greedy_sketches(
                    samples,
                    self._n,
                    method=method,
                    max_candidates=max_candidates,
                    rng=session._rng,
                    prefixes=prefixes,
                    executor=self._executor,
                )
                bundle.adopt_compiled_sketches(
                    resolved, method=method, max_candidates=max_candidates,
                    compiled=compiled,
                )
            compiled_members.append(bundle._compiled_cache[key])
        return compiled_members

    def prefetch_learn(
        self,
        grid: Iterable[tuple[int, float]],
        *,
        params: GreedyParams | None = None,
    ) -> None:
        """Grow every member's learn pool to cover a planned grid."""
        points = list(grid)
        for session in self._sessions:
            session.prefetch_learn(points, params=params)

    def learn_many(
        self,
        grid: Iterable[tuple[int, float]],
        *,
        method: str | None = None,
        engine: str | None = None,
        params: GreedyParams | None = None,
        max_candidates: int | None = None,
    ) -> list[list[LearnResult]]:
        """:meth:`learn` at every grid point; one result list per member.

        Mirrors :meth:`HistogramSession.learn_many`: pools are prefetched
        to the grid's elementwise-largest budget before any point runs,
        so the whole batch issues at most one draw event per member.
        On the default ``engine="lockstep"`` the entire ``F x P`` batch
        — every member at every grid point — runs its greedy rounds as
        one lockstep (runs whose round budgets differ drop out of the
        active mask as they converge), compile order staying point-major
        / member-minor so rng consumption matches looped sessions draw
        for draw.  Returns ``results[member][point]``.
        """
        points = list(grid)
        self.prefetch_learn(points, params=params)
        engine = self._engine if engine is None else engine
        if engine == "lockstep":
            resolved_method = self._method if method is None else method
            cap = self._max_candidates if max_candidates is None else max_candidates
            members = self._members(None)
            runs = []
            for k, epsilon in points:
                resolved = self._sessions[0]._learn_params(k, epsilon, params)
                for member_compiled in self._ensure_learn_compiled(
                    members, resolved, resolved_method, cap
                ):
                    runs.append(
                        LockstepRun(
                            compiled=member_compiled,
                            params=resolved,
                            method=resolved_method,
                            n=self._n,
                        )
                    )
            results = lockstep_learn(runs, executor=self._executor)
            return [
                [results[p * self.size + f] for p in range(len(points))]
                for f in range(self.size)
            ]
        per_point = [
            self.learn(
                k,
                epsilon,
                method=method,
                engine=engine,
                params=params,
                max_candidates=max_candidates,
            )
            for k, epsilon in points
        ]
        return [
            [point_results[f] for point_results in per_point]
            for f in range(self.size)
        ]

    # -------------------------------------------------------------- #
    # testing
    # -------------------------------------------------------------- #

    def _members(self, members: "Sequence[int] | None") -> list[int]:
        """Normalise and validate a member-subset argument."""
        if members is None:
            return list(range(self.size))
        members = [int(member) for member in members]
        for member in members:
            if not 0 <= member < self.size:
                raise InvalidParameterError(
                    f"member must be in [0, {self.size}), got {member}"
                )
        return members

    def _fleet_tester(
        self, resolved: TesterParams, members: "list[int]"
    ) -> FleetTesterSketches:
        """The stacked compiled sketches for one budget, repaired lazily.

        A member's slab is valid exactly when its session's bundle still
        caches the same compiled object the fleet planted — anything
        else (fresh member, per-member invalidation, even a direct
        ``session.invalidate()`` behind the fleet's back) recompiles
        that one slab from the member's pool and replants it.  Only the
        listed members are drawn for and compiled.

        With a parallel executor the stacks are shared-memory slabs and
        the stale members' compiles fan across the pool: pool draws
        still happen here (in member order, so the fleet stays
        replayable), the raw sets are staged into one reusable scratch
        slab, and each worker writes its member's ``(n + 1, r)`` gather
        layout straight into the stacks — bit-identical to the inline
        :meth:`~repro.core.flatness.FleetTesterSketches.compile_member`
        path.
        """
        key = (resolved.num_sets, resolved.set_size)
        executor = self._executor
        fleet_sketches = self._tester_fleet_cache.get(key)
        if fleet_sketches is None:
            stacks = None
            slabs = None
            if executor is not None and executor.parallel:
                shape = (self.size, self._n + 1, resolved.num_sets)
                count_stack, count_slab = executor.shared_zeros(shape)
                pair_stack, pair_slab = executor.shared_zeros(shape)
                stacks = (count_stack, pair_stack)
                if count_slab is None or pair_slab is None:
                    # An allocation fell back to a plain array (full
                    # /dev/shm, or an injected chaos fault): workers
                    # can't attach, so compiles go serial.  A slab that
                    # *did* allocate is about to be released — swap its
                    # still-zeroed view for a plain array first, or the
                    # stack would dangle over an unmapped segment.
                    if count_slab is not None:
                        count_stack = np.zeros_like(count_stack)
                    if pair_slab is not None:
                        pair_stack = np.zeros_like(pair_stack)
                    stacks = (count_stack, pair_stack)
                    executor.release(count_slab, pair_slab)
                    slabs = None
                else:
                    slabs = (count_slab, pair_slab)
            fleet_sketches = FleetTesterSketches(
                self._n,
                resolved.num_sets,
                resolved.set_size,
                self.size,
                stacks=stacks,
                slabs=slabs,
                executor=executor,
            )
            if slabs is not None:
                # The executor outlives this fleet (one pool, many
                # fleets); hand the stack segments back when the
                # sketches are collected so /dev/shm tracks live fleets.
                weakref.finalize(
                    fleet_sketches, executor.release, count_slab, pair_slab
                )
            self._tester_fleet_cache[key] = fleet_sketches
        pending: list[tuple[int, list]] = []
        for index in members:
            session = self._sessions[index]
            bundle = session._bundle
            member = fleet_sketches.member_or_none(index)
            cached = bundle._tester_compiled_cache.get(key)
            if member is not None and cached is member:
                continue
            if cached is not None:
                # The session compiled this budget itself (e.g. a direct
                # session call before the fleet op): keep its object —
                # and its memo — and mirror the layout into the slab.
                fleet_sketches.adopt_member(index, cached)
                continue
            pending.append((index, bundle.tester_sets(resolved)))
        if not pending:
            return fleet_sketches
        staged = sets_slab = None
        if (
            executor is not None
            and executor.parallel
            and fleet_sketches.slabs is not None
            and len(pending) > 1
        ):
            num_sets, set_size = resolved.num_sets, resolved.set_size
            staged, sets_slab = executor.scratch(
                "fleet-compile-input", (len(pending), num_sets, set_size)
            )
        if sets_slab is not None:
            for row, (_, sets) in enumerate(pending):
                for column, values in enumerate(sets):
                    staged[row, column] = values
            dense = self._n + 1 <= 4 * num_sets * set_size
            count_slab, pair_slab = fleet_sketches.slabs
            for index, _ in pending:
                fleet_sketches._detach_member(index)
            executor.map(
                _compile_member_rows,
                [
                    (
                        sets_slab,
                        row,
                        index,
                        self._n,
                        dense,
                        executor.plan.num_shards,
                        count_slab,
                        pair_slab,
                    )
                    for row, (index, _) in enumerate(pending)
                ],
            )
            for index, _ in pending:
                member = fleet_sketches.adopt_compiled_rows(index)
                self._sessions[index]._bundle.adopt_compiled_tester(
                    resolved, member
                )
        else:
            for index, sets in pending:
                member = fleet_sketches.compile_member(index, sets)
                self._sessions[index]._bundle.adopt_compiled_tester(
                    resolved, member
                )
        return fleet_sketches

    def _run_test(
        self,
        norm: str,
        k: int,
        epsilon: float,
        params: TesterParams | None,
        engine: str | None,
        members: "Sequence[int] | None" = None,
    ) -> list[TestResult]:
        engine = self._tester_engine if engine is None else engine
        validate_tester_engine(engine)
        members = self._members(members)
        resolved = self._sessions[0]._test_params(norm, k, epsilon, params)
        if engine == "full":
            runner = (
                HistogramSession.test_l2 if norm == "l2" else HistogramSession.test_l1
            )
            return [
                runner(self._sessions[member], k, epsilon, params=resolved, engine="full")
                for member in members
            ]
        fleet_sketches = self._fleet_tester(resolved, members)
        return fleet_test_on_sketches(
            fleet_sketches, self._n, k, epsilon, norm, resolved, members=members
        )

    def test_l2(
        self,
        k: int,
        epsilon: float,
        *,
        params: TesterParams | None = None,
        engine: str | None = None,
        members: "Sequence[int] | None" = None,
    ) -> list[TestResult]:
        """Theorem 3's tester per member (one lockstep search).

        ``members`` restricts the op to a subset of the fleet (results
        come back in the listed order); the default covers everyone.
        """
        return self._run_test("l2", k, epsilon, params, engine, members)

    def test_l1(
        self,
        k: int,
        epsilon: float,
        *,
        params: TesterParams | None = None,
        engine: str | None = None,
        members: "Sequence[int] | None" = None,
    ) -> list[TestResult]:
        """Theorem 4's tester per member (one lockstep search)."""
        return self._run_test("l1", k, epsilon, params, engine, members)

    def test_many(
        self,
        grid: Iterable[tuple[int, float]],
        *,
        norm: str = "l2",
        params: TesterParams | None = None,
        engine: str | None = None,
        members: "Sequence[int] | None" = None,
    ) -> list[list[TestResult]]:
        """The tester at every grid point; one verdict list per member.

        Mirrors :meth:`HistogramSession.test_many`: every member's pool
        is grown once to the grid's largest resolved budget, so the
        batch issues at most one draw event per member, and grid points
        sharing a budget share each member's verdict memo.  Returns
        ``results[member][point]`` (members in the listed order).
        """
        if norm not in ("l1", "l2"):
            raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")
        members = self._members(members)
        points = list(grid)
        if points:
            resolved = [
                self._sessions[0]._test_params(norm, k, e, params) for k, e in points
            ]
            cover = TesterParams(
                num_sets=max(p.num_sets for p in resolved),
                set_size=max(p.set_size for p in resolved),
            )
            for member in members:
                self._sessions[member]._bundle.ensure_tester_pool(cover)
        per_point = [
            self._run_test(norm, k, epsilon, params, engine, members)
            for k, epsilon in points
        ]
        return [
            [point_results[i] for point_results in per_point]
            for i in range(len(members))
        ]

    # -------------------------------------------------------------- #
    # model selection
    # -------------------------------------------------------------- #

    def min_k(
        self,
        epsilon: float,
        *,
        max_k: int | None = None,
        norm: str = "l1",
        params: TesterParams | None = None,
        engine: str | None = None,
        members: "Sequence[int] | None" = None,
    ) -> list[SelectionResult]:
        """Smallest accepted ``k`` per member (one lockstep sweep).

        Shares each member's test-family pool — and, on the compiled
        engine, its verdict memo — with :meth:`test_l1` /
        :meth:`test_l2`, exactly like :meth:`HistogramSession.min_k`.
        ``members`` restricts the sweep to a subset of the fleet.
        """
        if max_k is None:
            max_k = self._n
        if not 1 <= max_k <= self._n:
            raise InvalidParameterError(f"max_k must be in [1, n], got {max_k}")
        if norm not in ("l1", "l2"):
            raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")
        engine = self._tester_engine if engine is None else engine
        validate_tester_engine(engine)
        members = self._members(members)
        if engine == "full":
            return [
                self._sessions[member].min_k(
                    epsilon, max_k=max_k, norm=norm, params=params, engine="full"
                )
                for member in members
            ]
        resolved = self._sessions[0]._test_params(norm, max_k, epsilon, params)
        fleet_sketches = self._fleet_tester(resolved, members)
        return select_min_k_on_fleet(
            fleet_sketches,
            self._n,
            epsilon,
            max_k=max_k,
            norm=norm,
            params=resolved,
            members=members,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HistogramFleet(F={self.size}, n={self._n}, "
            f"samples_drawn={sum(self.samples_drawn)})"
        )
