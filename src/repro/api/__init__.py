"""Production facade: sessions that reuse samples and sketches.

This package is the recommended front door to the library:

* :class:`HistogramSession` — draw a sample budget once, compile sketches
  once, answer many learn/test/min-k operations over it;
* :class:`HistogramFleet` — the same facade over many distributions
  sharing a domain: pooled draws, stacked sort-free compilation, and
  lockstep tester searches, byte-identical to a loop of sessions;
* :class:`SampleSource` — the formal protocol every algorithm consumes a
  distribution through, with :func:`as_sample_source`,
  :class:`ArraySource`, and :class:`CountingSource` adapters;
* :class:`SketchBundle` — the shared pools and caches behind a session.

The classic module-level functions (:func:`repro.learn_histogram` and
friends) remain as one-shot compositions of the same machinery.
"""

from repro.api.fleet import HistogramFleet
from repro.api.session import HistogramSession
from repro.api.sketches import SketchBundle
from repro.api.source import (
    ArraySource,
    CountingSource,
    SampleSource,
    as_sample_source,
)

__all__ = [
    "ArraySource",
    "CountingSource",
    "HistogramFleet",
    "HistogramSession",
    "SampleSource",
    "SketchBundle",
    "as_sample_source",
]
