"""Production facade: sessions that reuse samples and sketches.

This package is the recommended front door to the library:

* :class:`HistogramSession` — draw a sample budget once, compile sketches
  once, answer many learn/test/min-k operations over it;
* :class:`HistogramFleet` — the same facade over many distributions
  sharing a domain: pooled draws, stacked sort-free compilation, and
  lockstep tester searches, byte-identical to a loop of sessions;
* :class:`SampleSource` — the formal protocol every algorithm consumes a
  distribution through, with :func:`as_sample_source`,
  :class:`ArraySource`, and :class:`CountingSource` adapters;
* :class:`SketchBundle` — the shared pools and caches behind a session;
* :class:`ShardPlan` / :class:`ParallelExecutor` — the parallel shard
  engine: sessions and fleets accept one via ``executor=`` and fan
  their sketch compiles (and big flatness-miss batches) across a
  process pool over shared-memory slabs, byte-identically to the
  single-buffer engine.

The classic module-level functions (:func:`repro.learn_histogram` and
friends) remain as deprecated one-shot compositions of the same
machinery.
"""

from repro.api.fleet import HistogramFleet
from repro.api.session import HistogramSession
from repro.api.shard import ParallelExecutor, ShardPlan
from repro.api.sketches import SketchBundle
from repro.api.source import (
    ArraySource,
    CountingSource,
    SampleSource,
    as_sample_source,
)

__all__ = [
    "ArraySource",
    "CountingSource",
    "HistogramFleet",
    "HistogramSession",
    "ParallelExecutor",
    "SampleSource",
    "ShardPlan",
    "SketchBundle",
    "as_sample_source",
]
