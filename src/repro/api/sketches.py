"""Shared sample pools and compiled-sketch caches for sessions.

The paper's algorithms consume two *sketch families*:

* the **learn family** — one weight sample plus ``r`` collision sets,
  compiled into prefix arrays over a candidate grid (Algorithm 1);
* the **test family** — ``r`` plain sample sets combined into a
  :class:`~repro.samples.estimators.MultiSketch` and compiled into a
  :class:`~repro.core.flatness.CompiledTesterSketches` gather layout
  (Algorithm 2 and the min-k search).

:class:`SketchBundle` owns one growable pool of raw samples per family
and memoises the derived structures.  Pools only ever grow (i.i.d. draws
are exchangeable, so the first ``m`` elements of a larger pool are a
valid size-``m`` draw), which gives the session its central guarantee:
a batch of ``(k, epsilon)`` operations issues at most one draw per
family, and an operation whose sizes fit the existing pool issues none.
Each pool is a capacity-doubling buffer with a length cursor
(:class:`_GrowablePool`), so repeated budget bumps append in amortised
O(1) per element; every consumer receives read-only views, never copies.

Draw order is chosen to match the one-shot entry points exactly — a
learn-family fill from empty performs the same ``sample()`` calls in the
same order as :func:`repro.core.greedy.draw_greedy_samples`, and a
test-family fill from empty matches
:func:`repro.core.tester.draw_tester_sets` — which is what makes a fresh
session's first sampling operation seed-for-seed identical to the
corresponding legacy function (subsequent fills share the generator, so
they are equivalent draws but not byte-replays of a legacy call).
"""

from __future__ import annotations

import numpy as np

from repro.core.flatness import (
    CompiledTesterSketches,
    compile_tester_sketches,
    compile_tester_sketches_from_sets,
)
from repro.core.greedy import (
    CompiledGreedySketches,
    GreedySamples,
    compile_greedy_sketches,
)
from repro.core.params import GreedyParams, TesterParams
from repro.errors import InvalidParameterError
from repro.samples.estimators import MultiSketch

_LEARN = "learn"
_TEST = "test"


class _GrowablePool:
    """A capacity-doubling sample buffer with a length cursor.

    ``fill_to`` draws only the missing suffix and appends it in place;
    the backing buffer doubles when exhausted, so a sequence of budget
    bumps costs amortised O(1) per element instead of a full
    reallocate-and-copy per bump.  ``view`` returns a read-only O(1)
    slice — never a copy — so derived sketches keep holding views.
    """

    __slots__ = ("_buffer", "_length")

    def __init__(self) -> None:
        self._buffer = np.empty(0, dtype=np.int64)
        self._length = 0

    @property
    def length(self) -> int:
        """Number of samples currently in the pool."""
        return self._length

    @property
    def capacity(self) -> int:
        """Allocated buffer size (>= ``length``)."""
        return int(self._buffer.shape[0])

    def fill_to(self, size: int, draw) -> None:
        """Grow the pool to ``size`` samples, drawing just the deficit."""
        if size <= self._length:
            return
        if size > self._buffer.shape[0]:
            capacity = max(size, 2 * self._buffer.shape[0])
            buffer = np.empty(capacity, dtype=np.int64)
            buffer[: self._length] = self._buffer[: self._length]
            self._buffer = buffer
        self._buffer[self._length : size] = np.asarray(
            draw(size - self._length), dtype=np.int64
        )
        self._length = size

    def view(self, size: int) -> np.ndarray:
        """Read-only view of the first ``size`` pooled samples."""
        if size > self._length:
            raise InvalidParameterError(
                f"pool holds {self._length} samples, cannot view {size}"
            )
        view = self._buffer[:size]
        view.flags.writeable = False
        return view


class SketchBundle:
    """Sample pools plus compiled sketches, shared across session calls.

    Parameters
    ----------
    source:
        A :class:`repro.api.SampleSource`.
    n:
        Domain size.
    rng:
        The generator every pool draw consumes (owned by the session).
    executor:
        Optional :class:`repro.api.ParallelExecutor`; compiles then run
        through the shard-mergeable builders (per-shard work fanned
        across the pool when the executor is parallel).  Never changes
        a compiled byte — only how it is produced.
    """

    def __init__(
        self,
        source: object,
        n: int,
        rng: np.random.Generator,
        executor: "object | None" = None,
    ) -> None:
        self._source = source
        self._n = int(n)
        self._rng = rng
        self._executor = executor
        self._weight_pool = _GrowablePool()
        self._collision_pool: list[_GrowablePool] = []
        self._tester_pool: list[_GrowablePool] = []
        self._multi_cache: dict[tuple[int, int], MultiSketch] = {}
        self._compiled_cache: dict[tuple, CompiledGreedySketches] = {}
        self._tester_compiled_cache: dict[
            tuple[int, int], CompiledTesterSketches
        ] = {}
        self.draw_events = {_LEARN: 0, _TEST: 0}
        self.samples_drawn = 0
        #: Mutation epoch: bumped whenever retained state changes — pool
        #: growth, a compiled-cache insert or plant, invalidation, or a
        #: restore (which invalidates first).  Consumers key caches and
        #: differential checkpoints on it; equality of generations means
        #: the bundle's retained state is byte-identical.
        self.generation = 0

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    def invalidate(self) -> None:
        """Drop every pool and cache (the source's contents changed)."""
        self._weight_pool = _GrowablePool()
        self._collision_pool = []
        self._tester_pool = []
        self._multi_cache = {}
        self._compiled_cache = {}
        self._tester_compiled_cache = {}
        self.generation += 1

    # -------------------------------------------------------------- #
    # pool growth
    # -------------------------------------------------------------- #

    def _draw(self, size: int) -> np.ndarray:
        self.samples_drawn += int(size)
        return np.asarray(self._source.sample(size, self._rng))

    def ensure_learn_pool(self, params: GreedyParams) -> None:
        """Grow the learn-family pools to cover ``params``' sizes."""
        grew = (
            self._weight_pool.length < params.weight_sample_size
            or len(self._collision_pool) < params.collision_sets
            or any(
                pool.length < params.collision_set_size
                for pool in self._collision_pool[: params.collision_sets]
            )
        )
        if not grew:
            return
        self.draw_events[_LEARN] += 1
        self.generation += 1
        self._weight_pool.fill_to(params.weight_sample_size, self._draw)
        # Only the sets this call will slice are extended; any further
        # pooled sets keep their size until a request actually needs them.
        for pool in self._collision_pool[: params.collision_sets]:
            pool.fill_to(params.collision_set_size, self._draw)
        while len(self._collision_pool) < params.collision_sets:
            pool = _GrowablePool()
            pool.fill_to(params.collision_set_size, self._draw)
            self._collision_pool.append(pool)

    def ensure_tester_pool(self, params: TesterParams) -> None:
        """Grow the test-family pool to cover ``params``' sizes."""
        grew = len(self._tester_pool) < params.num_sets or any(
            pool.length < params.set_size
            for pool in self._tester_pool[: params.num_sets]
        )
        if not grew:
            return
        self.draw_events[_TEST] += 1
        self.generation += 1
        for pool in self._tester_pool[: params.num_sets]:
            pool.fill_to(params.set_size, self._draw)
        while len(self._tester_pool) < params.num_sets:
            pool = _GrowablePool()
            pool.fill_to(params.set_size, self._draw)
            self._tester_pool.append(pool)

    # -------------------------------------------------------------- #
    # derived structures
    # -------------------------------------------------------------- #

    def learn_samples(self, params: GreedyParams) -> GreedySamples:
        """The learn-family draw of exactly ``params``' sizes (pool views)."""
        self.ensure_learn_pool(params)
        return GreedySamples(
            self._weight_pool.view(params.weight_sample_size),
            tuple(
                pool.view(params.collision_set_size)
                for pool in self._collision_pool[: params.collision_sets]
            ),
        )

    def compiled_sketches(
        self,
        params: GreedyParams,
        *,
        method: str,
        max_candidates: int | None = None,
    ) -> tuple[GreedySamples, CompiledGreedySketches]:
        """Samples plus compiled prefixes for one learn configuration.

        Compilation is memoised on the sizes actually consumed — a grid of
        ``(k, epsilon)`` points sharing one budget compiles once and then
        only re-runs the (cheap) greedy rounds.  The cached value carries
        the round-invariant per-candidate self-cost vector (median of the
        ``r`` collision estimates included), so repeat learns skip the
        engine's single most expensive pass entirely.
        """
        samples = self.learn_samples(params)
        key = (
            method,
            max_candidates,
            params.weight_sample_size,
            params.collision_sets,
            params.collision_set_size,
        )
        compiled = self._compiled_cache.get(key)
        if compiled is None:
            compiled = compile_greedy_sketches(
                samples,
                self._n,
                method=method,
                max_candidates=max_candidates,
                rng=self._rng,
                executor=self._executor,
            )
            self._compiled_cache[key] = compiled
            self.generation += 1
        return samples, compiled

    def tester_sets(self, params: TesterParams) -> "list[np.ndarray]":
        """The raw test-family draw of exactly ``params``' sizes (pool views).

        Grows the pool if needed; the views are what both
        :meth:`multi_sketch` and the fleet compiler consume, so the two
        paths are guaranteed to sketch the same samples.
        """
        self.ensure_tester_pool(params)
        return [
            pool.view(params.set_size)
            for pool in self._tester_pool[: params.num_sets]
        ]

    def multi_sketch(self, params: TesterParams) -> MultiSketch:
        """The test-family :class:`MultiSketch` for ``params``' sizes.

        Memoised per ``(num_sets, set_size)``: every tester or min-k call
        sharing one budget reuses both the raw draw and the built
        sketches.
        """
        key = (params.num_sets, params.set_size)
        multi = self._multi_cache.get(key)
        if multi is None:
            multi = MultiSketch.from_sample_sets(self.tester_sets(params), self._n)
            self._multi_cache[key] = multi
        return multi

    def compiled_tester(
        self, params: TesterParams
    ) -> tuple[MultiSketch | None, CompiledTesterSketches]:
        """The test-family compiled gather layout (plus the sketch, if built).

        Memoised per ``(num_sets, set_size)`` alongside
        :meth:`multi_sketch`: a grid of tester or min-k calls sharing one
        budget compiles once, and — because the compiled object carries
        the flatness-verdict memo — later calls start with every verdict
        the earlier ones already established.  Dropped by
        :meth:`invalidate` together with the pools.

        When the compiled object is already cached (or was planted by a
        fleet compiler via :meth:`adopt_compiled_tester`), the raw
        :class:`MultiSketch` is not built just to be returned — the first
        element is then whatever the multi cache holds, possibly
        ``None``.  The compiled engine never needs it; the ``"full"``
        engine asks :meth:`multi_sketch` directly.
        """
        key = (params.num_sets, params.set_size)
        compiled = self._tester_compiled_cache.get(key)
        if compiled is not None:
            return self._multi_cache.get(key), compiled
        multi = self._multi_cache.get(key)
        if multi is None and self._executor is not None:
            # Shard-mergeable compile straight from the pooled sets: no
            # per-set sketches, per-shard work fanned by the executor.
            # Bit-equal to compiling through the MultiSketch below.
            compiled = compile_tester_sketches_from_sets(
                self.tester_sets(params), self._n, executor=self._executor
            )
        else:
            multi = self.multi_sketch(params)
            compiled = compile_tester_sketches(multi)
        self._tester_compiled_cache[key] = compiled
        self.generation += 1
        return multi, compiled

    # -------------------------------------------------------------- #
    # persistence
    # -------------------------------------------------------------- #

    def snapshot(self, path) -> None:
        """Write this bundle's warm state to a snapshot file.

        Persists the sample pools, every compiled greedy/tester cache
        entry (verdict memos and accounting included), the draw
        counters, and the generator state — everything a restored
        bundle needs to answer byte-identically and to continue drawing
        the same stream of samples.  The write is crash-safe (temp file
        + fsync + atomic rename; see :mod:`repro.persist.format`).
        """
        from repro.persist import codec, format as persist_format

        meta, slabs = codec.bundle_state(self)
        persist_format.write_snapshot(path, kind="bundle", meta=meta, slabs=slabs)

    def restore(self, path) -> None:
        """Adopt a snapshot's warm state in place (zero-copy).

        Compiled slabs arrive as read-only ``np.memmap`` views planted
        through the same cache keys :meth:`compiled_sketches` /
        :meth:`compiled_tester` use; pools serve views off the mapped
        file and copy out only if they later grow.  Raises
        :class:`~repro.errors.SnapshotError` on any mismatch (missing
        or corrupt file, wrong domain size) without touching state
        beyond an :meth:`invalidate` — the caller's cold path still
        works.
        """
        from repro.persist import codec, format as persist_format

        snap = persist_format.load_snapshot(path, kind="bundle")
        codec.restore_bundle(self, snap.meta, snap.slab)

    # -------------------------------------------------------------- #
    # fleet plants (precompiled structures adopted into the caches)
    # -------------------------------------------------------------- #

    def adopt_compiled_tester(
        self, params: TesterParams, compiled: CompiledTesterSketches
    ) -> None:
        """Adopt a precompiled tester layout for ``params``' budget.

        The fleet compiler builds per-member gather layouts from the
        pooled samples without per-member sketches; planting them here
        makes every subsequent session call on this budget — tester,
        min-k, or a direct :meth:`compiled_tester` — reuse the planted
        object and its verdict memo, exactly as if the session had
        compiled it itself.  The caller vouches that ``compiled`` was
        built over :meth:`tester_sets` of the same ``params``.
        """
        if (
            compiled.n != self._n
            or compiled.num_sets != params.num_sets
            or compiled.set_size != params.set_size
        ):
            raise InvalidParameterError(
                "compiled tester layout does not match the bundle's domain "
                "or the params' (num_sets, set_size)"
            )
        self._tester_compiled_cache[(params.num_sets, params.set_size)] = compiled
        self.generation += 1

    def adopt_compiled_sketches(
        self,
        params: GreedyParams,
        *,
        method: str,
        max_candidates: int | None,
        compiled: CompiledGreedySketches,
    ) -> None:
        """Adopt precompiled greedy sketches for one learn configuration.

        Mirrors :meth:`adopt_compiled_tester` for the learn family: the
        key is the one :meth:`compiled_sketches` would use, so a later
        ``learn`` call with the same configuration skips compilation
        entirely.  The caller vouches that ``compiled`` was built over
        :meth:`learn_samples` of the same ``params``.
        """
        key = (
            method,
            max_candidates,
            params.weight_sample_size,
            params.collision_sets,
            params.collision_set_size,
        )
        self._compiled_cache[key] = compiled
        self.generation += 1
