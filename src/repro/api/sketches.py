"""Shared sample pools and compiled-sketch caches for sessions.

The paper's algorithms consume two *sketch families*:

* the **learn family** — one weight sample plus ``r`` collision sets,
  compiled into prefix arrays over a candidate grid (Algorithm 1);
* the **test family** — ``r`` plain sample sets combined into a
  :class:`~repro.samples.estimators.MultiSketch` (Algorithm 2 and the
  min-k search).

:class:`SketchBundle` owns one growable pool of raw samples per family
and memoises the derived structures.  Pools only ever grow (i.i.d. draws
are exchangeable, so the first ``m`` elements of a larger pool are a
valid size-``m`` draw), which gives the session its central guarantee:
a batch of ``(k, epsilon)`` operations issues at most one draw per
family, and an operation whose sizes fit the existing pool issues none.

Draw order is chosen to match the one-shot entry points exactly — a
learn-family fill from empty performs the same ``sample()`` calls in the
same order as :func:`repro.core.greedy.draw_greedy_samples`, and a
test-family fill from empty matches
:func:`repro.core.tester.draw_tester_sets` — which is what makes a fresh
session's first sampling operation seed-for-seed identical to the
corresponding legacy function (subsequent fills share the generator, so
they are equivalent draws but not byte-replays of a legacy call).
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import (
    CompiledGreedySketches,
    GreedySamples,
    compile_greedy_sketches,
)
from repro.core.params import GreedyParams, TesterParams
from repro.samples.estimators import MultiSketch

_LEARN = "learn"
_TEST = "test"


class SketchBundle:
    """Sample pools plus compiled sketches, shared across session calls.

    Parameters
    ----------
    source:
        A :class:`repro.api.SampleSource`.
    n:
        Domain size.
    rng:
        The generator every pool draw consumes (owned by the session).
    """

    def __init__(self, source: object, n: int, rng: np.random.Generator) -> None:
        self._source = source
        self._n = int(n)
        self._rng = rng
        self._weight_pool = np.empty(0, dtype=np.int64)
        self._collision_pool: list[np.ndarray] = []
        self._tester_pool: list[np.ndarray] = []
        self._multi_cache: dict[tuple[int, int], MultiSketch] = {}
        self._compiled_cache: dict[tuple, CompiledGreedySketches] = {}
        self.draw_events = {_LEARN: 0, _TEST: 0}
        self.samples_drawn = 0

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    def invalidate(self) -> None:
        """Drop every pool and cache (the source's contents changed)."""
        self._weight_pool = np.empty(0, dtype=np.int64)
        self._collision_pool = []
        self._tester_pool = []
        self._multi_cache = {}
        self._compiled_cache = {}

    # -------------------------------------------------------------- #
    # pool growth
    # -------------------------------------------------------------- #

    def _draw(self, size: int) -> np.ndarray:
        self.samples_drawn += int(size)
        return np.asarray(self._source.sample(size, self._rng))

    def _extend(self, pool: np.ndarray, size: int) -> np.ndarray:
        if pool.shape[0] >= size:
            return pool
        return np.concatenate([pool, self._draw(size - pool.shape[0])])

    def ensure_learn_pool(self, params: GreedyParams) -> None:
        """Grow the learn-family pools to cover ``params``' sizes."""
        grew = (
            self._weight_pool.shape[0] < params.weight_sample_size
            or len(self._collision_pool) < params.collision_sets
            or any(
                s.shape[0] < params.collision_set_size
                for s in self._collision_pool[: params.collision_sets]
            )
        )
        if not grew:
            return
        self.draw_events[_LEARN] += 1
        self._weight_pool = self._extend(self._weight_pool, params.weight_sample_size)
        # Only the sets this call will slice are extended; any further
        # pooled sets keep their size until a request actually needs them.
        for i in range(min(len(self._collision_pool), params.collision_sets)):
            self._collision_pool[i] = self._extend(
                self._collision_pool[i], params.collision_set_size
            )
        while len(self._collision_pool) < params.collision_sets:
            self._collision_pool.append(self._draw(params.collision_set_size))

    def ensure_tester_pool(self, params: TesterParams) -> None:
        """Grow the test-family pool to cover ``params``' sizes."""
        grew = len(self._tester_pool) < params.num_sets or any(
            s.shape[0] < params.set_size
            for s in self._tester_pool[: params.num_sets]
        )
        if not grew:
            return
        self.draw_events[_TEST] += 1
        for i in range(min(len(self._tester_pool), params.num_sets)):
            self._tester_pool[i] = self._extend(self._tester_pool[i], params.set_size)
        while len(self._tester_pool) < params.num_sets:
            self._tester_pool.append(self._draw(params.set_size))

    # -------------------------------------------------------------- #
    # derived structures
    # -------------------------------------------------------------- #

    def learn_samples(self, params: GreedyParams) -> GreedySamples:
        """The learn-family draw of exactly ``params``' sizes (pool views)."""
        self.ensure_learn_pool(params)
        return GreedySamples(
            self._weight_pool[: params.weight_sample_size],
            tuple(
                s[: params.collision_set_size]
                for s in self._collision_pool[: params.collision_sets]
            ),
        )

    def compiled_sketches(
        self,
        params: GreedyParams,
        *,
        method: str,
        max_candidates: int | None = None,
    ) -> tuple[GreedySamples, CompiledGreedySketches]:
        """Samples plus compiled prefixes for one learn configuration.

        Compilation is memoised on the sizes actually consumed — a grid of
        ``(k, epsilon)`` points sharing one budget compiles once and then
        only re-runs the (cheap) greedy rounds.
        """
        samples = self.learn_samples(params)
        key = (
            method,
            max_candidates,
            params.weight_sample_size,
            params.collision_sets,
            params.collision_set_size,
        )
        compiled = self._compiled_cache.get(key)
        if compiled is None:
            compiled = compile_greedy_sketches(
                samples,
                self._n,
                method=method,
                max_candidates=max_candidates,
                rng=self._rng,
            )
            self._compiled_cache[key] = compiled
        return samples, compiled

    def multi_sketch(self, params: TesterParams) -> MultiSketch:
        """The test-family :class:`MultiSketch` for ``params``' sizes.

        Memoised per ``(num_sets, set_size)``: every tester or min-k call
        sharing one budget reuses both the raw draw and the built
        sketches.
        """
        self.ensure_tester_pool(params)
        key = (params.num_sets, params.set_size)
        multi = self._multi_cache.get(key)
        if multi is None:
            multi = MultiSketch.from_sample_sets(
                [s[: params.set_size] for s in self._tester_pool[: params.num_sets]],
                self._n,
            )
            self._multi_cache[key] = multi
        return multi
