"""Fleet-lockstep greedy rounds (``engine="lockstep"``).

The serial engines (:mod:`repro.core.greedy`) pay two full-grid costs
*every* round: tabulating the left/right remainder terms — an
``O(G r)`` median pass — and two full-grid ``searchsorted`` calls to
locate each grid point's containing segment.  But a commit only changes
segments inside the dirty span, and both remainder terms at a grid
point depend only on the *content* of its containing segment (never on
segment indices), so almost all of that work recomputes values that
cannot have moved.

The lockstep engine exploits exactly that:

* the per-grid-point ``left_term`` / ``right_term`` arrays are cached
  across rounds and refreshed only over the dirty grid span — bitwise
  equal to a fresh tabulation because :func:`~repro.core.greedy._piece_costs`
  is deterministic and ``np.median(..., axis=1)`` is row-independent;
* the containing-segment indices ``ia`` / ``ib`` are recomputed each
  round *at the dirty candidates' endpoints only*
  (``searchsorted(seg_starts, grid[cand_lo])`` yields the same integers
  as indexing a full-grid table), because they *do* shift globally when
  the segment list grows;
* scoring stays the shared :func:`~repro.core.greedy._score_gather`
  spelling, and the commit is the engine's own
  :meth:`~repro.core.greedy._GreedyEngine.commit_best` — so every round
  is byte-identical to ``engine="incremental"`` by construction, which
  the conformance matrix pins.

:func:`lockstep_learn` drives any number of *runs* (fleet members,
``learn_many`` points, coalesced serving batches) through their rounds
in lockstep: per round, one rescore pass over all active runs, then one
argmin pass, then one commit pass; runs whose round budget is exhausted
drop out of the active mask.  Per-run score state — the padded ``rel``
vector and its block minima — is carved out of flat stacked buffers
mirroring ``FleetTesterSketches``' stacked-slab layout.

When the driving :class:`~repro.api.ParallelExecutor` opts in
(``learn_fan_min_candidates``), those buffers live in shared-memory
scratch slabs and the per-round rescore of large runs fans over the
pool in block-aligned chunks (:func:`_lockstep_rescore_chunk`), riding
the executor's self-healing ladder: chunk tasks are pure idempotent
slab writes, so respawned, degraded, or inline attempts are
byte-identical — including the fan being unavailable entirely (slab
allocation failure, serial executor), which falls back to the same
arithmetic run in-process.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.greedy import (
    _ARGMIN_BLOCK,
    _GATHER_CHUNK,
    _GreedyEngine,
    _package_result,
    _score_gather,
    CompiledGreedySketches,
)
from repro.core.params import GreedyParams
from repro.core.results import LearnResult


@dataclass(frozen=True)
class LockstepRun:
    """One learn to drive through the lockstep rounds.

    ``compiled`` must come from :func:`~repro.core.greedy.compile_greedy_sketches`
    over the samples the learn is for; ``params.rounds`` is the run's
    round budget (runs with smaller budgets converge and drop out of
    the lockstep earlier).
    """

    compiled: CompiledGreedySketches
    params: GreedyParams
    method: str
    n: int


class _RunState:
    """One run's engine plus its cached-term lockstep state."""

    def __init__(self, index: int, run: LockstepRun) -> None:
        self.index = index
        self.run = run
        self.rounds = run.params.rounds
        cands = run.compiled.candidates
        self.size = cands.size
        self.grid_size = cands.grid.size
        self.num_blocks = max(1, -(-self.size // _ARGMIN_BLOCK))
        self.padded = self.num_blocks * _ARGMIN_BLOCK
        self.engine: _GreedyEngine | None = None
        self.left_term: np.ndarray | None = None
        self.right_term: np.ndarray | None = None
        self.fanned = False
        self.num_chunks = 0
        self.reports: list = []
        self.rescored = 0
        self.best: int | None = None
        # Per-round segment tables (rebuilt by prepare_round).
        self._seg_starts: np.ndarray | None = None
        self._removed: np.ndarray | None = None
        self._dirty_lo = 0
        self._dirty_hi = 0

    @property
    def active(self) -> bool:
        return len(self.reports) < self.rounds

    def build_engine(
        self, rel_buffer: np.ndarray, block_min_buffer: np.ndarray
    ) -> None:
        compiled = self.run.compiled
        self.engine = _GreedyEngine(
            compiled.candidates,
            compiled.weight_prefix,
            compiled.weight_set.size,
            compiled.pair_prefix_cols,
            compiled.pairs_per_set,
            compiled.self_costs,
            incremental=True,
            rel_buffer=rel_buffer,
            block_min_buffer=block_min_buffer,
        )

    def prepare_round(self) -> None:
        """Rebuild segment tables and refresh cached terms (dirty span).

        The removed table is accumulated fresh from each row (exactly as
        the serial engines do) so untouched segment ranges stay bitwise
        round-stable; the term refresh replays the serial tabulation
        restricted to the dirty grid points, which is bit-equal because
        the remainder terms of every other point depend only on their
        unchanged containing segments.
        """
        eng = self.engine
        self._dirty_lo, self._dirty_hi = eng._dirty_lo, eng._dirty_hi
        seg_lo = np.asarray(eng._seg_lo, dtype=np.int64)
        seg_hi = np.asarray(eng._seg_hi, dtype=np.int64)
        seg_assigned = np.asarray(eng._seg_assigned, dtype=bool)
        seg_costs = np.asarray(eng._seg_cost, dtype=np.float64)
        count = seg_lo.size
        removed = np.zeros((count, count))
        for a in range(count):
            removed[a, a:] = np.cumsum(seg_costs[a:])
        self._removed = removed
        grid = eng._grid
        seg_starts = grid[seg_lo]
        self._seg_starts = seg_starts
        span = slice(self._dirty_lo, self._dirty_hi + 1)
        pts = np.arange(self._dirty_lo, self._dirty_hi + 1, dtype=np.int64)
        gp = grid[span]
        ia = np.searchsorted(seg_starts, gp, side="right") - 1
        ib = np.searchsorted(seg_starts, gp - 1, side="right") - 1
        lcost = eng._piece_cost(seg_lo[ia], pts, seg_assigned[ia])
        self.left_term[span] = np.where(seg_starts[ia] < gp, lcost, 0.0)
        rcost = eng._piece_cost(pts, seg_hi[ib], seg_assigned[ib])
        self.right_term[span] = np.where(grid[seg_hi[ib]] > gp, rcost, 0.0)

    def rescore_serial(self) -> None:
        """Score the dirty candidates in-process (endpoint-local lookups)."""
        eng = self.engine
        cands = eng._cands
        dirty = cands.intersecting(self._dirty_lo, self._dirty_hi)
        self.rescored = int(dirty.size)
        if not dirty.size:
            return
        grid = eng._grid
        seg_starts = self._seg_starts
        removed = self._removed
        for start in range(0, dirty.size, _GATHER_CHUNK):
            part = dirty[start : start + _GATHER_CHUNK]
            cand_lo = cands.lo[part]
            cand_hi = cands.hi[part]
            ia = np.searchsorted(seg_starts, grid[cand_lo], side="right") - 1
            ib = np.searchsorted(seg_starts, grid[cand_hi] - 1, side="right") - 1
            eng._rel[part] = _score_gather(
                eng._self_cost[part],
                removed[ia, ib],
                self.left_term[cand_lo],
                self.right_term[cand_hi],
            )
        eng._repair_blocks(dirty)

    def fan_tasks(self, slabs: "_LockstepSlabs") -> list:
        """Block-aligned rescore chunk payloads for this round's fan."""
        offsets = slabs.offsets[self.index]
        workers = slabs.workers
        chunk_blocks = max(1, -(-self.num_blocks // workers))
        tasks = []
        for b0 in range(0, self.num_blocks, chunk_blocks):
            c0 = b0 * _ARGMIN_BLOCK
            c1 = min(self.size, (b0 + chunk_blocks) * _ARGMIN_BLOCK)
            tasks.append(
                (
                    slabs.handles,
                    offsets,
                    (self.grid_size, self.size, self.num_blocks),
                    (c0, c1),
                    (self._dirty_lo, self._dirty_hi),
                    self._seg_starts,
                    self._removed,
                )
            )
        self.num_chunks = len(tasks)
        return tasks


class _LockstepSlabs:
    """The stacked score-state buffers, shared-memory when fanning.

    One flat buffer per kind — ``rel`` (padded), block minima, grid
    positions, candidate endpoints, self-costs, cached terms — with
    every run owning a contiguous region; ``offsets[i]`` is run ``i``'s
    ``(grid_off, cand_off, rel_off, bmin_off)``.  ``fan`` is true only
    when every buffer landed in an attachable slab on a live pool.
    """

    def __init__(self, states: list[_RunState], executor) -> None:
        self.workers = 1
        grid_total = sum(s.grid_size for s in states)
        cand_total = sum(s.size for s in states)
        rel_total = sum(s.padded for s in states)
        bmin_total = sum(s.num_blocks for s in states)
        shapes = {
            "lockstep-grid": ((grid_total,), np.int64),
            "lockstep-cands": ((2, cand_total), np.int64),
            "lockstep-self": ((cand_total,), np.float64),
            "lockstep-terms": ((2, grid_total), np.float64),
            "lockstep-rel": ((rel_total,), np.float64),
            "lockstep-blockmin": ((bmin_total,), np.float64),
        }
        threshold = (
            executor.learn_fan_min_candidates if executor is not None else None
        )
        want_fan = (
            threshold is not None
            and executor.parallel
            and any(s.size >= threshold for s in states)
        )
        arrays = {}
        handles = {}
        for key, (shape, dtype) in shapes.items():
            if want_fan:
                arrays[key], handles[key] = executor.scratch(key, shape, dtype)
            else:
                arrays[key], handles[key] = np.empty(shape, dtype=dtype), None
        self.fan = want_fan and all(h is not None for h in handles.values())
        if self.fan:
            self.workers = executor.workers
        self.handles = (
            handles["lockstep-grid"],
            handles["lockstep-cands"],
            handles["lockstep-self"],
            handles["lockstep-terms"],
            handles["lockstep-rel"],
            handles["lockstep-blockmin"],
        )
        self.offsets: list[tuple[int, int, int, int]] = []
        grid_off = cand_off = rel_off = bmin_off = 0
        for s in states:
            self.offsets.append((grid_off, cand_off, rel_off, bmin_off))
            compiled = s.run.compiled
            cands = compiled.candidates
            if self.fan:
                arrays["lockstep-grid"][grid_off : grid_off + s.grid_size] = (
                    cands.grid
                )
                arrays["lockstep-cands"][0, cand_off : cand_off + s.size] = cands.lo
                arrays["lockstep-cands"][1, cand_off : cand_off + s.size] = cands.hi
                arrays["lockstep-self"][cand_off : cand_off + s.size] = (
                    compiled.self_costs
                )
            s.left_term = arrays["lockstep-terms"][
                0, grid_off : grid_off + s.grid_size
            ]
            s.right_term = arrays["lockstep-terms"][
                1, grid_off : grid_off + s.grid_size
            ]
            s.build_engine(
                arrays["lockstep-rel"][rel_off : rel_off + s.padded],
                arrays["lockstep-blockmin"][bmin_off : bmin_off + s.num_blocks],
            )
            s.fanned = self.fan and threshold is not None and s.size >= threshold
            grid_off += s.grid_size
            cand_off += s.size
            rel_off += s.padded
            bmin_off += s.num_blocks


def _lockstep_rescore_chunk(task: tuple) -> int:
    """Rescore one block-aligned candidate chunk straight into the slabs.

    A pure idempotent write: every input (grid, endpoints, self-costs,
    this round's cached terms, segment tables) is fixed for the round,
    so re-running the task — after a worker kill, on a respawned pool,
    or inline in the parent once the executor degrades — produces the
    same bytes.  Returns the chunk's dirty-candidate count, which the
    parent sums into the round report.
    """
    (
        (grid_slab, cands_slab, self_slab, terms_slab, rel_slab, bmin_slab),
        (grid_off, cand_off, rel_off, bmin_off),
        (grid_size, size, num_blocks),
        (c0, c1),
        (dirty_lo, dirty_hi),
        seg_starts,
        removed,
    ) = task
    cands = cands_slab.attach()
    lo = cands[0, cand_off + c0 : cand_off + c1]
    hi = cands[1, cand_off + c0 : cand_off + c1]
    local = np.nonzero((hi > dirty_lo) & (lo < dirty_hi))[0]
    if not local.size:
        return 0
    grid = grid_slab.attach()[grid_off : grid_off + grid_size]
    cand_lo = lo[local]
    cand_hi = hi[local]
    ia = np.searchsorted(seg_starts, grid[cand_lo], side="right") - 1
    ib = np.searchsorted(seg_starts, grid[cand_hi] - 1, side="right") - 1
    terms = terms_slab.attach()
    rel_flat = rel_slab.attach()
    rel_flat[rel_off + c0 + local] = _score_gather(
        self_slab.attach()[cand_off + c0 + local],
        removed[ia, ib],
        terms[0, grid_off + cand_lo],
        terms[1, grid_off + cand_hi],
    )
    padded = num_blocks * _ARGMIN_BLOCK
    rel_blocks = rel_flat[rel_off : rel_off + padded].reshape(
        num_blocks, _ARGMIN_BLOCK
    )
    blocks = (c0 + local) // _ARGMIN_BLOCK
    touched = blocks[np.flatnonzero(np.diff(blocks, prepend=-1))]
    bmin = bmin_slab.attach()[bmin_off : bmin_off + num_blocks]
    bmin[touched] = rel_blocks[touched].min(axis=1)
    return int(local.size)


def lockstep_learn(
    runs: "list[LockstepRun]", *, executor=None
) -> list[LearnResult]:
    """Drive ``runs`` through their greedy rounds in lockstep.

    Per round: one rescore pass over every active run (fanned over
    ``executor``'s pool for runs at or above its
    ``learn_fan_min_candidates``, in-process otherwise), one argmin
    pass, one commit pass.  Runs drop out of the active mask as their
    round budgets converge.  Results are positionally byte-identical to
    ``engine="incremental"`` :func:`~repro.core.greedy.learn_from_samples`
    per run, for any executor shape — the fan is an evaluation strategy,
    never an answer change.

    Per-phase wall-clock is billed to ``executor.record_timing`` when
    the executor keeps timing buckets.
    """
    if not runs:
        return []
    states = [_RunState(i, run) for i, run in enumerate(runs)]
    slabs = _LockstepSlabs(states, executor)
    timings = {"rescore": 0.0, "argmin": 0.0, "commit": 0.0}
    while True:
        active = [s for s in states if s.active]
        if not active:
            break
        started = perf_counter()
        tasks: list = []
        fanned: list[_RunState] = []
        for state in active:
            state.prepare_round()
            if state.fanned:
                tasks.extend(state.fan_tasks(slabs))
                fanned.append(state)
            else:
                state.rescore_serial()
        if tasks:
            counts = executor.map(_lockstep_rescore_chunk, tasks)
            at = 0
            for state in fanned:
                state.rescored = int(sum(counts[at : at + state.num_chunks]))
                at += state.num_chunks
        timings["rescore"] += perf_counter() - started
        started = perf_counter()
        for state in active:
            state.best = state.engine._argmin()
        timings["argmin"] += perf_counter() - started
        started = perf_counter()
        for state in active:
            state.reports.append(
                state.engine.commit_best(state.rescored, state.best)
            )
        timings["commit"] += perf_counter() - started
    if executor is not None and hasattr(executor, "record_timing"):
        for phase, seconds in timings.items():
            executor.record_timing(phase, seconds)
    return [
        _package_result(s.engine, s.reports, s.run.n, s.run.params, s.run.method)
        for s in states
    ]
