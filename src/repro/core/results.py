"""Result objects returned by the paper's algorithms.

All of them are rich on purpose: the experiment harness (and the examples)
introspect partitions, per-round traces and flatness queries rather than
just final verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import GreedyParams, TesterParams
from repro.histograms.intervals import Interval
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram


@dataclass(frozen=True)
class GreedyRound:
    """Trace of one greedy iteration (Algorithm 1, steps 7-10)."""

    round_index: int
    chosen: Interval
    weight_estimate: float
    estimated_cost: float
    candidates_evaluated: int


@dataclass(frozen=True)
class LearnResult:
    """Output of the greedy learner.

    Attributes
    ----------
    histogram:
        The learned histogram flattened to a tiling (ready for queries).
    priority_histogram:
        The raw priority histogram the algorithm maintains (the paper's
        output representation).
    params:
        The resolved sample sizes used.
    rounds:
        Per-round trace (chosen interval, estimated cost, ...).
    method:
        ``"exhaustive"`` (Algorithm 1) or ``"fast"`` (Theorem 2).
    num_candidates:
        Size of the candidate interval set.
    samples_used:
        Total samples drawn.
    filled_histogram:
        Like ``histogram`` but with never-covered gaps carrying their
        estimated weight instead of 0 — an application extension that
        helps range queries over low-density regions (README.md, "Design
        notes").
    """

    histogram: TilingHistogram
    priority_histogram: PriorityHistogram
    params: GreedyParams
    rounds: list[GreedyRound]
    method: str
    num_candidates: int
    samples_used: int
    filled_histogram: TilingHistogram | None = None

    @property
    def estimated_cost(self) -> float:
        """The final round's estimated squared-l2 cost ``c_J``."""
        if not self.rounds:
            return float("nan")
        return self.rounds[-1].estimated_cost


@dataclass(frozen=True)
class FlatnessQuery:
    """One flatness-oracle invocation made by Algorithm 2."""

    interval: Interval
    accepted: bool
    reason: str
    statistic: float | None
    threshold: float | None


@dataclass(frozen=True)
class TestResult:
    """Output of the tiling k-histogram testers (Theorems 3 and 4).

    ``partition`` holds the flat intervals discovered before the verdict;
    on acceptance they cover ``[0, n)`` with at most ``k`` pieces.
    """

    __test__ = False  # not a pytest class, despite the name

    accepted: bool
    norm: str
    k: int
    epsilon: float
    partition: list[Interval]
    queries: list[FlatnessQuery]
    params: TesterParams
    samples_used: int

    @property
    def num_flatness_queries(self) -> int:
        """How many flatness tests the binary search performed."""
        return len(self.queries)


@dataclass(frozen=True)
class UniformityResult:
    """Output of the [GR00] collision uniformity tester."""

    accepted: bool
    statistic: float
    threshold: float
    epsilon: float
    samples_used: int
    collisions: int = field(default=0)
