"""Model selection: estimate the smallest credible ``k`` by testing.

The paper's testers decide membership for a *given* ``k``; iterating them
over increasing ``k`` turns them into a sub-linear model-selection
procedure (the smallest accepted ``k`` is a credible bucket count).  To
avoid paying the sample complexity once per candidate ``k``, the search
reuses one set of sample sets across all candidates — Algorithm 2 already
takes a union bound over all ``n^2`` intervals, so reuse is sound.

This module is an extension beyond the paper (README.md, "Design notes"):
the paper's machinery composes into it directly.
:func:`select_min_k_on_sketch` is the pure half operating on an
already-built sketch; :func:`estimate_min_k` is the classic draw-and-run
composition, and :meth:`repro.api.HistogramSession.min_k` the
sketch-reusing one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.flatness import CompiledTesterSketches, FleetTesterSketches
from repro.core.params import TesterParams
from repro.core.tester import (
    draw_tester_sets,
    flat_partition,
    fleet_flat_partition,
    l1_effective_scale,
    resolve_flatness_oracle,
)
from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.samples.estimators import MultiSketch
from repro.utils.deprecation import warn_one_shot_shim


@dataclass(frozen=True)
class SelectionResult:
    """Output of :func:`estimate_min_k`.

    Attributes
    ----------
    k:
        The smallest candidate ``k`` whose partition search covered the
        domain, or ``None`` when none did.
    partition:
        The flat partition found at that ``k`` (its length can be below
        ``k``).
    tried:
        Every candidate ``k`` examined, with its verdict.
    samples_used:
        Total samples drawn (shared across all candidates).
    """

    k: "int | None"
    partition: list[Interval]
    tried: list[tuple[int, bool]]
    samples_used: int


def estimate_min_k(
    source: object,
    n: int,
    epsilon: float,
    *,
    max_k: int | None = None,
    norm: str = "l1",
    params: TesterParams | None = None,
    scale: float = 1.0,
    engine: str = "compiled",
    rng: "int | None | np.random.Generator" = None,
) -> SelectionResult:
    """Smallest ``k`` for which the tiling k-histogram tester accepts.

    .. deprecated:: 1.0
        The PR-1 seed-compat one-shot shim; a fresh
        :class:`repro.api.HistogramSession`'s first ``min_k`` is
        seed-for-seed identical and reuses its draw.  Calling this
        emits a :class:`DeprecationWarning`.

    Parameters
    ----------
    source:
        Sampling access to the distribution.
    n:
        Domain size.
    epsilon:
        Testing accuracy (the answer is sound up to the testers'
        epsilon-gap: a distribution epsilon-close to a k-histogram may be
        accepted at that ``k``).
    max_k:
        Largest candidate to try (default ``n``).
    norm:
        ``"l1"`` or ``"l2"`` — which tester to use.
    params / scale / engine / rng:
        As in the testers (``engine`` selects the compiled or per-query
        flatness path; the answer is engine-independent).

    Notes
    -----
    Runs the partition search once with ``max_pieces = max_k`` and reads
    the answer off the discovered partition: the search is greedy from
    the left, so the number of flat intervals needed to cover ``[0, n)``
    is exactly the smallest ``k`` the tester would accept with these
    samples.
    """
    warn_one_shot_shim("estimate_min_k", "repro.api.HistogramSession.min_k")
    if max_k is None:
        max_k = n
    if not 1 <= max_k <= n:
        raise InvalidParameterError(f"max_k must be in [1, n], got {max_k}")
    if norm not in ("l1", "l2"):
        raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")

    if params is None:
        if norm == "l2":
            params = TesterParams.l2_from_paper(n, epsilon, scale=scale)
        else:
            params = TesterParams.l1_from_paper(n, max_k, epsilon, scale=scale)

    sample_sets = draw_tester_sets(source, params, rng)
    multi = MultiSketch.from_sample_sets(sample_sets, n)
    return select_min_k_on_sketch(
        multi, n, epsilon, max_k=max_k, norm=norm, params=params, engine=engine
    )


def select_min_k_on_sketch(
    multi: MultiSketch | None,
    n: int,
    epsilon: float,
    *,
    max_k: int,
    norm: str = "l1",
    params: TesterParams,
    engine: str = "compiled",
    compiled: CompiledTesterSketches | None = None,
) -> SelectionResult:
    """The min-k search on an already-built sketch (no source access).

    Pure in ``multi``; :func:`estimate_min_k` and
    :meth:`repro.api.HistogramSession.min_k` both delegate here.  Pass
    ``compiled`` (the session cache path) to reuse an existing
    :class:`~repro.core.flatness.CompiledTesterSketches` — its verdict
    memo then carries over from earlier tester calls, which matters here
    because the left-greedy sweep re-probes exactly the intervals those
    calls already certified.
    """
    if not 1 <= max_k <= n:
        raise InvalidParameterError(f"max_k must be in [1, n], got {max_k}")
    if norm not in ("l1", "l2"):
        raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")

    effective_scale = (
        1.0 if norm == "l2" else l1_effective_scale(n, max_k, epsilon, params)
    )
    oracle = resolve_flatness_oracle(
        multi, norm, epsilon, scale=effective_scale, engine=engine, compiled=compiled
    )
    partition, _ = flat_partition(n, max_k, oracle)
    return _selection_from_partition(n, max_k, partition, params)


def _selection_from_partition(
    n: int,
    max_k: int,
    partition: "list[Interval]",
    params: TesterParams,
) -> SelectionResult:
    """Read the min-k answer off a left-greedy partition (shared logic)."""
    covered = partition[-1].stop if partition else 0
    found: int | None = len(partition) if covered >= n else None
    tried = [(k, found is not None and k >= found) for k in range(1, max_k + 1)]
    return SelectionResult(
        k=found,
        partition=partition,
        tried=tried,
        samples_used=params.total_samples,
    )


def select_min_k_on_fleet(
    fleet: FleetTesterSketches,
    n: int,
    epsilon: float,
    *,
    max_k: int,
    norm: str = "l1",
    params: TesterParams,
    members: "list[int] | None" = None,
) -> list[SelectionResult]:
    """The min-k search across a compiled fleet, lockstep-batched.

    The fleet-axis counterpart of :func:`select_min_k_on_sketch`: one
    validated oracle, one lockstep left-greedy sweep
    (:func:`repro.core.tester.fleet_flat_partition`), one
    :class:`SelectionResult` per member in member order — each
    byte-identical to the single-sketch search on that member's compiled
    sketches, memo accounting included.
    """
    if not 1 <= max_k <= n:
        raise InvalidParameterError(f"max_k must be in [1, n], got {max_k}")
    if norm not in ("l1", "l2"):
        raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")
    if members is None:
        members = list(range(fleet.fleet_size))
    effective_scale = (
        1.0 if norm == "l2" else l1_effective_scale(n, max_k, epsilon, params)
    )
    oracle = fleet.oracle(norm, epsilon, scale=effective_scale)
    outcomes = fleet_flat_partition(n, max_k, oracle, members)
    return [
        _selection_from_partition(n, max_k, partition, params)
        for partition, _ in outcomes
    ]
