"""Flatness tests: Algorithm 3 (l2) and Algorithm 4 (l1).

Both certify that an interval ``I`` is close to flat (conditionally
uniform or light) from collision statistics:

* an interval can be light — too few hits to matter (step 1 in both
  algorithms; such intervals cost little in the final distance), or
* its conditional collision probability ``||p_I||_2^2`` — estimated by
  the median-of-r [GR00] statistic — is close to the uniform level
  ``1 / |I|``.

Pseudocode note (README.md, "Design notes"): the papers' step 3 writes ``C(|S^1|, 2)`` as
the denominator, but the surrounding proofs (Eqs. 28–29 and 35) use
``C(|S^i_I|, 2)``; we follow the proofs.

The module is layered so Algorithm 2 can run on a *compiled* engine
(README.md, "Compiled tester engine"):

* **pure verdict kernels** — :func:`l2_flatness_verdict` /
  :func:`l1_flatness_verdict` hold the papers' threshold math once;
  every engine funnels through them, which is what makes the engines
  byte-identical;
* **per-query oracles** — :func:`test_flatness_l2` /
  :func:`test_flatness_l1` answer one interval from a raw
  :class:`~repro.samples.estimators.MultiSketch` (binary searches per
  query); :func:`flatness_oracle` is their validate-once closure form
  (the ``engine="full"`` reference path);
* **compiled engine** — :func:`compile_tester_sketches` builds a
  :class:`CompiledTesterSketches`: per-set hit/pair prefixes over the
  full endpoint grid ``[0, n]`` in a C-contiguous ``(n + 1, r)`` gather
  layout, so one flatness query is two row gathers, an in-place
  length-``r`` ratio, and a median — no sorting, searching, or
  allocation — with verdicts memoised by
  ``(start, stop, metric, epsilon, scale)`` across binary searches,
  ``test_many`` grid points, and min-k sweeps;
* **fleet layer** — :class:`FleetTesterSketches` stacks many members'
  compiled layouts on a leading fleet axis and
  :class:`FleetFlatnessOracle` answers one batch of probes (at most one
  per member) with fleet-axis gathers and row-wise medians, keeping
  each member's verdict memo and accounting byte-compatible with the
  single-member engine (README.md, "Fleet serving").
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.params import flatness_l1_min_hits
from repro.errors import InvalidParameterError
from repro.samples.estimators import MultiSketch, _ratio

REASON_LIGHT = "light-weight"
REASON_COLLISION_OK = "collision-bound"
REASON_REJECTED = "rejected"

METRICS = ("l2", "l1")


@dataclass(frozen=True)
class FlatnessResult:
    """Verdict of one flatness test.

    Attributes
    ----------
    accepted:
        Whether the interval passed as (close to) flat.
    reason:
        ``"light-weight"`` (step-1 accept), ``"collision-bound"``
        (statistic under threshold) or ``"rejected"``.
    statistic:
        The median collision estimate ``z_I`` (``None`` on light accepts).
    threshold:
        The acceptance threshold compared against (``None`` on light
        accepts).
    """

    accepted: bool
    reason: str
    statistic: float | None
    threshold: float | None


FlatnessOracle = Callable[[int, int], FlatnessResult]


# ------------------------------------------------------------------ #
# validation (once per tester invocation, not per query)
# ------------------------------------------------------------------ #


def _check_interval(start: int, stop: int) -> int:
    if stop <= start:
        raise InvalidParameterError(
            f"flatness test needs a non-empty interval, got [{start}, {stop})"
        )
    return stop - start


def validate_flatness_epsilon(epsilon: float) -> None:
    """Reject out-of-range ``epsilon`` (shared by every flatness entry)."""
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")


def validate_flatness_scale(scale: float) -> None:
    """Reject out-of-range ``scale`` (the l1 light-threshold rescale)."""
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")


def validate_metric(metric: str) -> None:
    """Reject unknown flatness metrics."""
    if metric not in METRICS:
        raise InvalidParameterError(
            f"metric must be one of {METRICS}, got {metric!r}"
        )


# ------------------------------------------------------------------ #
# pure verdict kernels (one code path for every engine)
# ------------------------------------------------------------------ #


def l2_flatness_verdict(
    counts: np.ndarray,
    set_size: int,
    length: int,
    epsilon: float,
    median_z: Callable[[], float],
) -> FlatnessResult:
    """``testFlatness-l2`` (Algorithm 3) decision from per-set hit counts.

    1. ``p_hat_i(I) = 2 |S^i_I| / m``;
    2. accept if any ``|S^i_I| / m < eps^2 / 2`` (light interval);
    3. ``z_I`` = median of per-set conditional collision estimates
       (``median_z`` is called lazily — light intervals never pay for it);
    4. accept iff ``z_I <= 1/|I| + max_i eps^2 / (2 p_hat_i(I))``.

    ``counts`` may be int64 or float64: ``np.divide`` promotes both to
    the same float64 values, so the per-query and compiled engines are
    bit-identical through this single kernel.
    """
    if np.any(counts / set_size < epsilon**2 / 2):
        return FlatnessResult(True, REASON_LIGHT, None, None)
    p_hat = 2.0 * counts / set_size
    z = float(median_z())
    threshold = 1.0 / length + float(np.max(epsilon**2 / (2.0 * p_hat)))
    if z <= threshold:
        return FlatnessResult(True, REASON_COLLISION_OK, z, threshold)
    return FlatnessResult(False, REASON_REJECTED, z, threshold)


def l1_flatness_verdict(
    counts: np.ndarray,
    length: int,
    epsilon: float,
    scale: float,
    median_z: Callable[[], float],
) -> FlatnessResult:
    """``testFlatness-l1`` (Algorithm 4) decision from per-set hit counts.

    1. accept if any ``|S^i_I| < scale * 16^3 sqrt(|I|) / eps^4`` (light;
       ``scale`` rescales the paper's absolute threshold in proportion to
       the sample sizes — see
       :func:`repro.core.tester.l1_effective_scale`);
    2. ``z_I`` = median of per-set conditional collision estimates;
    3. accept iff ``z_I <= (1/|I|) (1 + eps^2 / 4)``.
    """
    min_hits = scale * flatness_l1_min_hits(length, epsilon)
    if np.any(counts < min_hits):
        return FlatnessResult(True, REASON_LIGHT, None, None)
    z = float(median_z())
    threshold = (1.0 / length) * (1.0 + epsilon**2 / 4.0)
    if z <= threshold:
        return FlatnessResult(True, REASON_COLLISION_OK, z, threshold)
    return FlatnessResult(False, REASON_REJECTED, z, threshold)


# ------------------------------------------------------------------ #
# per-query path over a raw MultiSketch (engine="full")
# ------------------------------------------------------------------ #


def _query_multi(
    multi: MultiSketch, start: int, stop: int, metric: str, epsilon: float, scale: float
) -> FlatnessResult:
    """One unvalidated flatness query answered by per-set binary searches."""
    length = _check_interval(start, stop)
    median_z = lambda: multi.median_conditional_norm(start, stop)  # noqa: E731
    if metric == "l2":
        counts = multi.counts(start, stop).astype(np.float64)
        return l2_flatness_verdict(counts, multi.set_size, length, epsilon, median_z)
    counts = multi.counts(start, stop)
    return l1_flatness_verdict(counts, length, epsilon, scale, median_z)


def test_flatness_l2(
    multi: MultiSketch, start: int, stop: int, epsilon: float
) -> FlatnessResult:
    """``testFlatness-l2`` (Algorithm 3) — one-shot, validating form."""
    _check_interval(start, stop)
    validate_flatness_epsilon(epsilon)
    return _query_multi(multi, start, stop, "l2", epsilon, 1.0)


def test_flatness_l1(
    multi: MultiSketch,
    start: int,
    stop: int,
    epsilon: float,
    scale: float = 1.0,
) -> FlatnessResult:
    """``testFlatness-l1`` (Algorithm 4) — one-shot, validating form.

    ``scale`` rescales the step-1 hit threshold in proportion to the
    sample sizes: the paper's threshold is an absolute count calibrated
    to ``m = 2^13 sqrt(kn) / eps^5``, so running at ``scale * m`` samples
    requires ``scale *`` the threshold to test the same weight level.
    """
    _check_interval(start, stop)
    validate_flatness_epsilon(epsilon)
    validate_flatness_scale(scale)
    return _query_multi(multi, start, stop, "l1", epsilon, scale)


def flatness_oracle(
    multi: MultiSketch, metric: str, epsilon: float, scale: float = 1.0
) -> FlatnessOracle:
    """A validate-once per-query oracle over a raw sketch.

    This is Algorithm 2's ``engine="full"`` reference path: parameters
    are checked here, once per tester invocation, instead of inside each
    of the O(k log n) binary-search probes; each query then re-runs the
    per-set ``searchsorted`` counts and a fresh median-of-r estimate.
    """
    validate_metric(metric)
    validate_flatness_epsilon(epsilon)
    validate_flatness_scale(scale)
    return lambda start, stop: _query_multi(multi, start, stop, metric, epsilon, scale)


# ------------------------------------------------------------------ #
# compiled engine (engine="compiled")
# ------------------------------------------------------------------ #


class CompiledTesterSketches:
    """A :class:`MultiSketch` compiled for O(r) flatness queries.

    Mirrors :class:`repro.core.greedy.CompiledGreedySketches`: the
    expensive per-draw work — one batched sort over all ``r`` sets and
    prefix evaluation on the full endpoint grid ``[0, n]`` — happens once
    at compile time (:func:`compile_tester_sketches`), after which any
    interval's per-set hit and pair counts are two gathers of contiguous
    length-``r`` rows (the ``(n + 1, r)`` C-contiguous layout below).

    On top of the gathers sits a verdict memo keyed by
    ``(start, stop, metric, epsilon, scale)``.  Algorithm 2's binary
    search, the points of a ``test_many`` grid, and min-k sweeps all
    re-probe overlapping intervals; the memo answers repeats in O(1)
    (``memo_hits`` / ``memo_misses`` account for it).  Verdicts are
    frozen dataclasses, so sharing them is safe, and the query *log*
    Algorithm 2 returns is unaffected — every probe is logged whether or
    not its verdict came from the memo.

    Memory is O(n r); for domains too large to afford that, the
    ``engine="full"`` per-query path remains available everywhere.
    """

    def __init__(
        self,
        count_prefix_cols: np.ndarray,
        pair_prefix_cols: np.ndarray,
        set_size: int,
    ) -> None:
        if (
            count_prefix_cols.shape != pair_prefix_cols.shape
            or count_prefix_cols.ndim != 2
        ):
            raise InvalidParameterError(
                "count/pair prefix layouts must be two equal-shape matrices"
            )
        self._count_cols = np.ascontiguousarray(count_prefix_cols, dtype=np.int64)
        self._pair_cols = np.ascontiguousarray(pair_prefix_cols, dtype=np.int64)
        self._set_size = int(set_size)
        num_sets = self._count_cols.shape[1]
        # Reusable per-query buffers: one flatness query allocates nothing
        # beyond numpy's internal median scratch.
        self._counts = np.empty(num_sets, dtype=np.int64)
        self._pairs = np.empty(num_sets, dtype=np.int64)
        self._denom = np.empty(num_sets, dtype=np.int64)
        self._ratio_buf = np.empty(num_sets, dtype=np.float64)
        self._memo: dict[tuple, FlatnessResult] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    @property
    def n(self) -> int:
        """Domain size (the grid holds every endpoint ``0..n``)."""
        return self._count_cols.shape[0] - 1

    @property
    def num_sets(self) -> int:
        """The replication factor ``r``."""
        return self._count_cols.shape[1]

    @property
    def set_size(self) -> int:
        """``m``, the (common) size of each sample set."""
        return self._set_size

    @property
    def memo_size(self) -> int:
        """Number of distinct memoised verdicts."""
        return len(self._memo)

    def _median_conditional_norm(self, start: int, stop: int) -> float:
        """Median-of-r [GR00] estimate from the compiled rows, in place."""
        counts = self._counts  # gathered by the caller for this interval
        np.subtract(self._pair_cols[stop], self._pair_cols[start], out=self._pairs)
        # C(counts, 2) in exact int64 math, matching utils.prefix.pairs_count.
        np.subtract(counts, 1, out=self._denom)
        np.multiply(self._denom, counts, out=self._denom)
        np.floor_divide(self._denom, 2, out=self._denom)
        return float(np.median(_ratio(self._pairs, self._denom, out=self._ratio_buf)))

    def query(
        self, start: int, stop: int, metric: str, epsilon: float, scale: float = 1.0
    ) -> FlatnessResult:
        """One memoised flatness verdict (parameters assumed validated)."""
        key = (start, stop, metric, epsilon, scale)
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        length = _check_interval(start, stop)
        counts = np.subtract(
            self._count_cols[stop], self._count_cols[start], out=self._counts
        )
        median_z = lambda: self._median_conditional_norm(start, stop)  # noqa: E731
        if metric == "l2":
            result = l2_flatness_verdict(
                counts, self._set_size, length, epsilon, median_z
            )
        else:
            result = l1_flatness_verdict(counts, length, epsilon, scale, median_z)
        self._memo[key] = result
        return result

    def oracle(
        self, metric: str, epsilon: float, scale: float = 1.0
    ) -> FlatnessOracle:
        """A validate-once flatness oracle over the compiled sketches.

        The returned closure is what Algorithm 2's partition search (and
        the min-k sweep) consume; all oracles from one compiled object
        share its verdict memo.
        """
        validate_metric(metric)
        validate_flatness_epsilon(epsilon)
        validate_flatness_scale(scale)
        return lambda start, stop: self.query(start, stop, metric, epsilon, scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledTesterSketches(n={self.n}, r={self.num_sets}, "
            f"m={self._set_size}, memo={self.memo_size})"
        )


def _resolve_stats(
    count_stack: np.ndarray,
    pair_stack: np.ndarray,
    members: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    metric: str,
    epsilon: float,
    scale: float,
    set_size: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched flatness statistics off the ``(F, n + 1, r)`` stacks.

    Returns ``(light, z, threshold)`` rows for one batch of probes.
    Every expression is row-wise (each output row depends only on its
    own probe), so any chunking of the batch — including the executor's
    member-axis split — reproduces the same bits; the expressions
    themselves mirror :func:`l2_flatness_verdict` /
    :func:`l1_flatness_verdict` operand for operand, which is what makes
    the batched results bit-identical to the scalar kernels.
    """
    counts = count_stack[members, stops] - count_stack[members, starts]
    lengths = stops - starts
    if metric == "l2":
        light = np.any(counts / set_size < epsilon**2 / 2, axis=1)
    else:
        # scale * flatness_l1_min_hits(length, epsilon), vectorised:
        # np.sqrt and math.sqrt are both correctly-rounded IEEE ops,
        # so the batched thresholds equal the scalar kernel's bits.
        min_hits = scale * ((16**3) * np.sqrt(lengths) / epsilon**4)
        light = np.any(counts < min_hits[:, None], axis=1)
    heavy = ~light
    z = np.zeros(members.shape[0])
    threshold = np.zeros(members.shape[0])
    if np.any(heavy):
        h_counts = counts[heavy]
        pairs = (
            pair_stack[members[heavy], stops[heavy]]
            - pair_stack[members[heavy], starts[heavy]]
        )
        denom = (h_counts - 1) * h_counts // 2
        ratio = np.zeros(h_counts.shape, dtype=np.float64)
        np.divide(pairs, denom, out=ratio, where=denom > 0)
        z[heavy] = np.median(ratio, axis=1)
        if metric == "l2":
            p_hat = 2.0 * h_counts / set_size
            threshold[heavy] = 1.0 / lengths[heavy] + np.max(
                epsilon**2 / (2.0 * p_hat), axis=1
            )
        else:
            threshold[heavy] = (1.0 / lengths[heavy]) * (1.0 + epsilon**2 / 4.0)
    return light, z, threshold


def _resolve_stats_task(args: tuple) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Executor task: one member-axis chunk of a flatness-miss batch.

    ``args``: ``(count_slab, pair_slab, members, starts, stops, metric,
    epsilon, scale, set_size)`` — the slabs are
    :class:`~repro.utils.shm.SharedSlab` handles to the fleet's stacks,
    so only probe coordinates travel to the pool and three small stat
    rows travel back.
    """
    (count_slab, pair_slab, members, starts, stops, metric, epsilon, scale,
     set_size) = args
    return _resolve_stats(
        count_slab.attach(),
        pair_slab.attach(),
        members,
        starts,
        stops,
        metric,
        epsilon,
        scale,
        set_size,
    )


class FleetFlatnessOracle:
    """A validate-once batched flatness oracle over a fleet's stacks.

    The lockstep partition driver (:func:`repro.core.tester.fleet_flat_partition`)
    separates memo traffic from fresh statistics: :meth:`lookup` answers a
    single member's probe from that member's verdict memo (or reports a
    miss), and :meth:`resolve` computes one batch of misses — at most one
    per member — with fleet-axis gathers and row-wise medians.  Both
    sides of the split maintain the per-member memo and its hit/miss
    accounting exactly as :meth:`CompiledTesterSketches.query` would, so
    a fleet run leaves every member's compiled sketches in the same state
    a looped single-session run would have.

    The vectorised verdict math mirrors :func:`l2_flatness_verdict` /
    :func:`l1_flatness_verdict` expression for expression (same operand
    order, same dtypes), which is what makes the batched results
    bit-identical to the scalar kernels — the lockstep suite asserts it.
    """

    __slots__ = ("_fleet", "_metric", "_epsilon", "_scale")

    def __init__(
        self, fleet: "FleetTesterSketches", metric: str, epsilon: float, scale: float
    ) -> None:
        self._fleet = fleet
        self._metric = metric
        self._epsilon = epsilon
        self._scale = scale

    @property
    def suffix(self) -> tuple:
        """The ``(metric, epsilon, scale)`` tail of every memo key."""
        return (self._metric, self._epsilon, self._scale)

    def member_memo(self, member: int) -> dict:
        """Member ``member``'s verdict memo, for direct-read fast paths.

        A caller that reads the memo directly (the lockstep driver's
        fast-forward loop) must report its hit counts through
        :meth:`flush_hits` so the per-member accounting stays identical
        to the :meth:`CompiledTesterSketches.query` path.
        """
        return self._fleet.member(member)._memo

    def flush_hits(self, members: "list[int]", hits: "list[int]") -> None:
        """Credit locally-accumulated memo hits to their members."""
        for member, count in zip(members, hits):
            if count:
                self._fleet.member(member).memo_hits += count

    def lookup(self, member: int, start: int, stop: int) -> FlatnessResult | None:
        """The memoised verdict for one member's probe, or ``None`` on miss."""
        sketches = self._fleet.member(member)
        cached = sketches._memo.get(
            (start, stop, self._metric, self._epsilon, self._scale)
        )
        if cached is not None:
            sketches.memo_hits += 1
        return cached

    def resolve(
        self, members: np.ndarray, starts: np.ndarray, stops: np.ndarray
    ) -> list[FlatnessResult]:
        """Fresh verdicts for a batch of memo misses (one per member).

        Gathers every probed member's per-set hit/pair rows with two
        fancy indexes on the ``(F, n + 1, r)`` stacks, evaluates the
        light checks and (for non-light rows only, matching the scalar
        kernels' lazy median) the median-of-r statistics, then memoises
        each verdict on its member with a miss tick.

        When the fleet's stacks live in shared memory and its executor
        is parallel, a large enough batch is split on the member axis
        and the statistics computed across workers — every expression
        is row-wise, so the chunked results are bit-identical to the
        inline pass (memoisation and accounting always happen here, in
        the parent).
        """
        members = np.asarray(members, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        if np.any(stops <= starts):
            raise InvalidParameterError(
                "flatness test needs non-empty intervals in every probe"
            )
        epsilon, scale, metric = self._epsilon, self._scale, self._metric
        set_size = self._fleet.set_size
        executor = self._fleet.executor
        slabs = self._fleet.slabs
        if (
            executor is not None
            and executor.parallel
            and slabs is not None
            and members.shape[0] >= executor.resolve_min_batch
        ):
            chunks = [
                chunk
                for chunk in np.array_split(
                    np.arange(members.shape[0]), executor.workers
                )
                if chunk.size
            ]
            count_slab, pair_slab = slabs
            parts = executor.map(
                _resolve_stats_task,
                [
                    (
                        count_slab,
                        pair_slab,
                        members[chunk],
                        starts[chunk],
                        stops[chunk],
                        metric,
                        epsilon,
                        scale,
                        set_size,
                    )
                    for chunk in chunks
                ],
            )
            light = np.concatenate([part[0] for part in parts])
            z = np.concatenate([part[1] for part in parts])
            threshold = np.concatenate([part[2] for part in parts])
        else:
            count_stack, pair_stack = self._fleet.stacks
            light, z, threshold = _resolve_stats(
                count_stack,
                pair_stack,
                members,
                starts,
                stops,
                metric,
                epsilon,
                scale,
                set_size,
            )
        results: list[FlatnessResult] = []
        fleet_members = self._fleet._members
        z_list = z.tolist()
        threshold_list = threshold.tolist()
        for member, start, stop, is_light, stat, bound in zip(
            members.tolist(), starts.tolist(), stops.tolist(),
            light.tolist(), z_list, threshold_list,
        ):
            if is_light:
                result = FlatnessResult(True, REASON_LIGHT, None, None)
            elif stat <= bound:
                result = FlatnessResult(True, REASON_COLLISION_OK, stat, bound)
            else:
                result = FlatnessResult(False, REASON_REJECTED, stat, bound)
            sketches = fleet_members[member]
            sketches.memo_misses += 1
            sketches._memo[(start, stop, metric, epsilon, scale)] = result
            results.append(result)
        return results


class FleetTesterSketches:
    """F members' compiled tester sketches stacked on a leading fleet axis.

    The per-member layout is exactly :class:`CompiledTesterSketches`'s
    C-contiguous ``(n + 1, r)`` gather matrix; the fleet stacks them into
    two ``(F, n + 1, r)`` arrays so one batched flatness step can gather
    any subset of members' rows with a single fancy index (see
    :class:`FleetFlatnessOracle`).  Every member keeps its own
    :class:`CompiledTesterSketches` wrapping a zero-copy view of its
    slab, so the verdict memo — and its hit/miss accounting — stays per
    member, byte-compatible with a looped single-session run.

    Members compile independently (:meth:`compile_member`) and can be
    dropped independently (:meth:`drop_member`), which is what gives the
    fleet facade its lazy per-member invalidation: refreshing one
    member's stream recompiles one slab, not the fleet.

    Memory is O(F n r); the per-member ``engine="full"`` path remains
    available for domains too large to afford that.
    """

    def __init__(
        self,
        n: int,
        num_sets: int,
        set_size: int,
        fleet_size: int,
        *,
        stacks: "tuple[np.ndarray, np.ndarray] | None" = None,
        slabs: "tuple | None" = None,
        executor: "object | None" = None,
    ) -> None:
        if n < 1 or num_sets < 1 or set_size < 1 or fleet_size < 1:
            raise InvalidParameterError(
                "FleetTesterSketches needs n, num_sets, set_size, fleet_size >= 1"
            )
        shape = (fleet_size, n + 1, num_sets)
        if stacks is None:
            self._count_stack = np.zeros(shape, dtype=np.int64)
            self._pair_stack = np.zeros(shape, dtype=np.int64)
        else:
            # Preallocated (typically shared-memory) stacks: zeroed
            # int64 slabs of exactly the fleet shape, provided by the
            # executor so worker processes can write member slabs and
            # read probe batches in place.
            count_stack, pair_stack = stacks
            if (
                count_stack.shape != shape
                or pair_stack.shape != shape
                or count_stack.dtype != np.int64
                or pair_stack.dtype != np.int64
            ):
                raise InvalidParameterError(
                    "preallocated stacks must be two int64 arrays of shape "
                    f"{shape}"
                )
            self._count_stack = count_stack
            self._pair_stack = pair_stack
        self._slabs = slabs
        self._executor = executor
        self._set_size = int(set_size)
        self._members: list[CompiledTesterSketches | None] = [None] * fleet_size

    @property
    def n(self) -> int:
        """Domain size (the stacks hold every endpoint ``0..n``)."""
        return self._count_stack.shape[1] - 1

    @property
    def num_sets(self) -> int:
        """The replication factor ``r``."""
        return self._count_stack.shape[2]

    @property
    def set_size(self) -> int:
        """``m``, the (common) size of each sample set."""
        return self._set_size

    @property
    def fleet_size(self) -> int:
        """Number of member slots ``F``."""
        return len(self._members)

    @property
    def stacks(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(F, n + 1, r)`` count/pair prefix stacks."""
        return self._count_stack, self._pair_stack

    @property
    def slabs(self) -> "tuple | None":
        """Shared-memory handles of the stacks (``None`` when in-heap)."""
        return self._slabs

    @property
    def executor(self) -> "object | None":
        """The :class:`~repro.api.ParallelExecutor` serving this fleet."""
        return self._executor

    def member(self, index: int) -> CompiledTesterSketches:
        """Member ``index``'s compiled sketches (must be compiled)."""
        sketches = self._members[index]
        if sketches is None:
            raise InvalidParameterError(f"fleet member {index} is not compiled")
        return sketches

    def member_or_none(self, index: int) -> CompiledTesterSketches | None:
        """Member ``index``'s compiled sketches, or ``None``."""
        return self._members[index]

    def _detach_member(self, index: int) -> None:
        """Give an outgoing member its own copy of the slab data.

        Members wrap zero-copy views of their slab, so overwriting the
        slab would otherwise mutate a previously issued
        :class:`CompiledTesterSketches` in place — leaving any held
        reference with its old verdict memo over new numbers.  Copying
        on replacement (a rare, invalidation-driven path) keeps every
        outstanding object internally consistent.
        """
        outgoing = self._members[index]
        if outgoing is not None and np.shares_memory(
            outgoing._count_cols, self._count_stack
        ):
            outgoing._count_cols = outgoing._count_cols.copy()
            outgoing._pair_cols = outgoing._pair_cols.copy()

    def compile_member(
        self, index: int, sample_sets: "list[np.ndarray]"
    ) -> CompiledTesterSketches:
        """(Re)compile one member's slab from its raw sample sets.

        Uses the sort-free dense prefix builder
        (:func:`repro.samples.collision.dense_interval_prefixes`) when
        the domain is within a constant of the member's total sample
        count — the fleet-serving regime — and falls back to the
        one-sort batched pass for very large sparse domains.  Both
        produce identical integers, so the choice never shows in any
        verdict.  The returned member wraps a zero-copy view of the slab
        and starts with a fresh (empty) verdict memo.
        """
        from repro.samples.collision import (
            batched_interval_prefixes,
            dense_interval_prefixes,
        )

        self._detach_member(index)
        n = self.n
        if len(sample_sets) != self.num_sets or any(
            s.shape[0] != self._set_size for s in sample_sets
        ):
            raise InvalidParameterError(
                "sample sets do not match the fleet's (num_sets, set_size) layout"
            )
        if n + 1 <= 4 * self.num_sets * self._set_size:
            count_rows, pair_rows = dense_interval_prefixes(sample_sets, n)
        else:
            grid = np.arange(n + 1, dtype=np.int64)
            count_rows, pair_rows = batched_interval_prefixes(sample_sets, n, grid)
        self._count_stack[index] = count_rows.T
        self._pair_stack[index] = pair_rows.T
        member = CompiledTesterSketches(
            self._count_stack[index], self._pair_stack[index], self._set_size
        )
        self._members[index] = member
        return member

    def adopt_compiled_rows(self, index: int) -> CompiledTesterSketches:
        """Wrap slab contents a worker already wrote as member ``index``.

        The parallel compile path (:meth:`repro.api.HistogramFleet` with
        an executor) detaches the outgoing member, fans the per-member
        row builds across workers — each writes its ``(n + 1, r)``
        layout straight into the shared stacks — and then adopts each
        slab here.  The member object (and its fresh, empty verdict
        memo) is exactly what :meth:`compile_member` would have built.
        """
        member = CompiledTesterSketches(
            self._count_stack[index], self._pair_stack[index], self._set_size
        )
        self._members[index] = member
        return member

    def adopt_member(self, index: int, sketches: CompiledTesterSketches) -> None:
        """Adopt an externally compiled member into the stacks.

        Copies the member's gather layout into its slab and keeps the
        *object* — verdict memo, accounting and all — as the fleet
        member, so a session that compiled (and partially memoised) its
        own sketches before joining a fleet operation loses nothing.
        """
        if (
            sketches.n != self.n
            or sketches.num_sets != self.num_sets
            or sketches.set_size != self._set_size
        ):
            raise InvalidParameterError(
                "compiled sketches do not match the fleet's (n, r, m) layout"
            )
        if self._members[index] is not sketches:
            self._detach_member(index)
            self._count_stack[index] = sketches._count_cols
            self._pair_stack[index] = sketches._pair_cols
            self._members[index] = sketches

    def drop_member(self, index: int) -> None:
        """Forget one member's compiled sketches (its source changed).

        The outgoing member is detached first, so a reference held
        elsewhere keeps consistent data when the slab is recompiled.
        """
        self._detach_member(index)
        self._members[index] = None

    def oracle(
        self, metric: str, epsilon: float, scale: float = 1.0
    ) -> FleetFlatnessOracle:
        """A validate-once batched oracle over the compiled members."""
        validate_metric(metric)
        validate_flatness_epsilon(epsilon)
        validate_flatness_scale(scale)
        return FleetFlatnessOracle(self, metric, epsilon, scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        compiled = sum(1 for m in self._members if m is not None)
        return (
            f"FleetTesterSketches(F={self.fleet_size} ({compiled} compiled), "
            f"n={self.n}, r={self.num_sets}, m={self._set_size})"
        )


def compile_tester_sketches_from_sets(
    sample_sets: "list[np.ndarray]",
    n: int,
    *,
    executor: "object | None" = None,
) -> CompiledTesterSketches:
    """Compile the tester's gather layout straight from raw sample sets.

    The shard-mergeable sibling of :func:`compile_tester_sketches`: no
    per-set :class:`~repro.samples.estimators.MultiSketch` is built —
    each set splits into the executor's shards, the per-shard summaries
    compile independently (fanned across the pool when the executor is
    parallel), and only the ``(n + 1, r)`` gather slab is materialised
    whole.  Bit-equal to compiling through the sketch for any
    ``(shards, workers)``, so sessions swap freely between the two.
    """
    if not sample_sets:
        raise InvalidParameterError(
            "compile_tester_sketches_from_sets needs at least one sample set"
        )
    from repro.samples.sharded import sharded_interval_prefixes

    num_shards = 1
    mapper = None
    if executor is not None:
        num_shards = executor.plan.num_shards
        mapper = executor.map
    grid = np.arange(n + 1, dtype=np.int64)
    count_rows, pair_rows = sharded_interval_prefixes(
        sample_sets, n, grid, num_shards=num_shards, mapper=mapper
    )
    return CompiledTesterSketches(
        np.ascontiguousarray(count_rows.T),
        np.ascontiguousarray(pair_rows.T),
        sample_sets[0].shape[0],
    )


def compile_tester_sketches(multi: MultiSketch) -> CompiledTesterSketches:
    """Compile a :class:`MultiSketch` into the tester's gather layout.

    Pure in the sketch contents, so the result is reusable by any number
    of ``(k, epsilon)`` tester or min-k calls over the same draw (which
    is how :class:`repro.api.SketchBundle` caches it).

    Each per-set sketch already holds its sorted distinct values and
    prefix sums (built once at :class:`MultiSketch` construction), so
    compilation is ``r`` batched ``searchsorted`` evaluations of the full
    endpoint grid — no re-sort of the raw samples.  (Measured against
    re-running the one-sort batched pass of
    :func:`repro.samples.collision.batched_interval_prefixes` over the
    raw sets, reusing the per-set sorts is 5-8x cheaper; the batched pass
    remains the right tool where no per-set sketches exist, i.e. the
    greedy compile path.)
    """
    n = multi.n
    grid = np.arange(n + 1, dtype=np.int64)
    per_set = [sketch.prefixes_on_grid(grid) for sketch in multi.sketches]
    count_rows = np.stack([c for c, _ in per_set])
    pair_rows = np.stack([p for _, p in per_set])
    return CompiledTesterSketches(
        np.ascontiguousarray(count_rows.T),
        np.ascontiguousarray(pair_rows.T),
        multi.set_size,
    )
