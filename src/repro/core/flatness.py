"""Flatness tests: Algorithm 3 (l2) and Algorithm 4 (l1).

Both certify that an interval ``I`` is close to flat (conditionally
uniform or light) from collision statistics:

* an interval can be light — too few hits to matter (step 1 in both
  algorithms; such intervals cost little in the final distance), or
* its conditional collision probability ``||p_I||_2^2`` — estimated by
  the median-of-r [GR00] statistic — is close to the uniform level
  ``1 / |I|``.

Pseudocode note (README.md, "Design notes"): the papers' step 3 writes ``C(|S^1|, 2)`` as
the denominator, but the surrounding proofs (Eqs. 28–29 and 35) use
``C(|S^i_I|, 2)``; we follow the proofs.

The module is layered so Algorithm 2 can run on a *compiled* engine
(README.md, "Compiled tester engine"):

* **pure verdict kernels** — :func:`l2_flatness_verdict` /
  :func:`l1_flatness_verdict` hold the papers' threshold math once;
  every engine funnels through them, which is what makes the engines
  byte-identical;
* **per-query oracles** — :func:`test_flatness_l2` /
  :func:`test_flatness_l1` answer one interval from a raw
  :class:`~repro.samples.estimators.MultiSketch` (binary searches per
  query); :func:`flatness_oracle` is their validate-once closure form
  (the ``engine="full"`` reference path);
* **compiled engine** — :func:`compile_tester_sketches` builds a
  :class:`CompiledTesterSketches`: per-set hit/pair prefixes over the
  full endpoint grid ``[0, n]`` in a C-contiguous ``(n + 1, r)`` gather
  layout, so one flatness query is two row gathers, an in-place
  length-``r`` ratio, and a median — no sorting, searching, or
  allocation — with verdicts memoised by
  ``(start, stop, metric, epsilon, scale)`` across binary searches,
  ``test_many`` grid points, and min-k sweeps.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.params import flatness_l1_min_hits
from repro.errors import InvalidParameterError
from repro.samples.estimators import MultiSketch, _ratio

REASON_LIGHT = "light-weight"
REASON_COLLISION_OK = "collision-bound"
REASON_REJECTED = "rejected"

METRICS = ("l2", "l1")


@dataclass(frozen=True)
class FlatnessResult:
    """Verdict of one flatness test.

    Attributes
    ----------
    accepted:
        Whether the interval passed as (close to) flat.
    reason:
        ``"light-weight"`` (step-1 accept), ``"collision-bound"``
        (statistic under threshold) or ``"rejected"``.
    statistic:
        The median collision estimate ``z_I`` (``None`` on light accepts).
    threshold:
        The acceptance threshold compared against (``None`` on light
        accepts).
    """

    accepted: bool
    reason: str
    statistic: float | None
    threshold: float | None


FlatnessOracle = Callable[[int, int], FlatnessResult]


# ------------------------------------------------------------------ #
# validation (once per tester invocation, not per query)
# ------------------------------------------------------------------ #


def _check_interval(start: int, stop: int) -> int:
    if stop <= start:
        raise InvalidParameterError(
            f"flatness test needs a non-empty interval, got [{start}, {stop})"
        )
    return stop - start


def validate_flatness_epsilon(epsilon: float) -> None:
    """Reject out-of-range ``epsilon`` (shared by every flatness entry)."""
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")


def validate_flatness_scale(scale: float) -> None:
    """Reject out-of-range ``scale`` (the l1 light-threshold rescale)."""
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")


def validate_metric(metric: str) -> None:
    """Reject unknown flatness metrics."""
    if metric not in METRICS:
        raise InvalidParameterError(
            f"metric must be one of {METRICS}, got {metric!r}"
        )


# ------------------------------------------------------------------ #
# pure verdict kernels (one code path for every engine)
# ------------------------------------------------------------------ #


def l2_flatness_verdict(
    counts: np.ndarray,
    set_size: int,
    length: int,
    epsilon: float,
    median_z: Callable[[], float],
) -> FlatnessResult:
    """``testFlatness-l2`` (Algorithm 3) decision from per-set hit counts.

    1. ``p_hat_i(I) = 2 |S^i_I| / m``;
    2. accept if any ``|S^i_I| / m < eps^2 / 2`` (light interval);
    3. ``z_I`` = median of per-set conditional collision estimates
       (``median_z`` is called lazily — light intervals never pay for it);
    4. accept iff ``z_I <= 1/|I| + max_i eps^2 / (2 p_hat_i(I))``.

    ``counts`` may be int64 or float64: ``np.divide`` promotes both to
    the same float64 values, so the per-query and compiled engines are
    bit-identical through this single kernel.
    """
    if np.any(counts / set_size < epsilon**2 / 2):
        return FlatnessResult(True, REASON_LIGHT, None, None)
    p_hat = 2.0 * counts / set_size
    z = float(median_z())
    threshold = 1.0 / length + float(np.max(epsilon**2 / (2.0 * p_hat)))
    if z <= threshold:
        return FlatnessResult(True, REASON_COLLISION_OK, z, threshold)
    return FlatnessResult(False, REASON_REJECTED, z, threshold)


def l1_flatness_verdict(
    counts: np.ndarray,
    length: int,
    epsilon: float,
    scale: float,
    median_z: Callable[[], float],
) -> FlatnessResult:
    """``testFlatness-l1`` (Algorithm 4) decision from per-set hit counts.

    1. accept if any ``|S^i_I| < scale * 16^3 sqrt(|I|) / eps^4`` (light;
       ``scale`` rescales the paper's absolute threshold in proportion to
       the sample sizes — see
       :func:`repro.core.tester.l1_effective_scale`);
    2. ``z_I`` = median of per-set conditional collision estimates;
    3. accept iff ``z_I <= (1/|I|) (1 + eps^2 / 4)``.
    """
    min_hits = scale * flatness_l1_min_hits(length, epsilon)
    if np.any(counts < min_hits):
        return FlatnessResult(True, REASON_LIGHT, None, None)
    z = float(median_z())
    threshold = (1.0 / length) * (1.0 + epsilon**2 / 4.0)
    if z <= threshold:
        return FlatnessResult(True, REASON_COLLISION_OK, z, threshold)
    return FlatnessResult(False, REASON_REJECTED, z, threshold)


# ------------------------------------------------------------------ #
# per-query path over a raw MultiSketch (engine="full")
# ------------------------------------------------------------------ #


def _query_multi(
    multi: MultiSketch, start: int, stop: int, metric: str, epsilon: float, scale: float
) -> FlatnessResult:
    """One unvalidated flatness query answered by per-set binary searches."""
    length = _check_interval(start, stop)
    median_z = lambda: multi.median_conditional_norm(start, stop)  # noqa: E731
    if metric == "l2":
        counts = multi.counts(start, stop).astype(np.float64)
        return l2_flatness_verdict(counts, multi.set_size, length, epsilon, median_z)
    counts = multi.counts(start, stop)
    return l1_flatness_verdict(counts, length, epsilon, scale, median_z)


def test_flatness_l2(
    multi: MultiSketch, start: int, stop: int, epsilon: float
) -> FlatnessResult:
    """``testFlatness-l2`` (Algorithm 3) — one-shot, validating form."""
    _check_interval(start, stop)
    validate_flatness_epsilon(epsilon)
    return _query_multi(multi, start, stop, "l2", epsilon, 1.0)


def test_flatness_l1(
    multi: MultiSketch,
    start: int,
    stop: int,
    epsilon: float,
    scale: float = 1.0,
) -> FlatnessResult:
    """``testFlatness-l1`` (Algorithm 4) — one-shot, validating form.

    ``scale`` rescales the step-1 hit threshold in proportion to the
    sample sizes: the paper's threshold is an absolute count calibrated
    to ``m = 2^13 sqrt(kn) / eps^5``, so running at ``scale * m`` samples
    requires ``scale *`` the threshold to test the same weight level.
    """
    _check_interval(start, stop)
    validate_flatness_epsilon(epsilon)
    validate_flatness_scale(scale)
    return _query_multi(multi, start, stop, "l1", epsilon, scale)


def flatness_oracle(
    multi: MultiSketch, metric: str, epsilon: float, scale: float = 1.0
) -> FlatnessOracle:
    """A validate-once per-query oracle over a raw sketch.

    This is Algorithm 2's ``engine="full"`` reference path: parameters
    are checked here, once per tester invocation, instead of inside each
    of the O(k log n) binary-search probes; each query then re-runs the
    per-set ``searchsorted`` counts and a fresh median-of-r estimate.
    """
    validate_metric(metric)
    validate_flatness_epsilon(epsilon)
    validate_flatness_scale(scale)
    return lambda start, stop: _query_multi(multi, start, stop, metric, epsilon, scale)


# ------------------------------------------------------------------ #
# compiled engine (engine="compiled")
# ------------------------------------------------------------------ #


class CompiledTesterSketches:
    """A :class:`MultiSketch` compiled for O(r) flatness queries.

    Mirrors :class:`repro.core.greedy.CompiledGreedySketches`: the
    expensive per-draw work — one batched sort over all ``r`` sets and
    prefix evaluation on the full endpoint grid ``[0, n]`` — happens once
    at compile time (:func:`compile_tester_sketches`), after which any
    interval's per-set hit and pair counts are two gathers of contiguous
    length-``r`` rows (the ``(n + 1, r)`` C-contiguous layout below).

    On top of the gathers sits a verdict memo keyed by
    ``(start, stop, metric, epsilon, scale)``.  Algorithm 2's binary
    search, the points of a ``test_many`` grid, and min-k sweeps all
    re-probe overlapping intervals; the memo answers repeats in O(1)
    (``memo_hits`` / ``memo_misses`` account for it).  Verdicts are
    frozen dataclasses, so sharing them is safe, and the query *log*
    Algorithm 2 returns is unaffected — every probe is logged whether or
    not its verdict came from the memo.

    Memory is O(n r); for domains too large to afford that, the
    ``engine="full"`` per-query path remains available everywhere.
    """

    def __init__(
        self,
        count_prefix_cols: np.ndarray,
        pair_prefix_cols: np.ndarray,
        set_size: int,
    ) -> None:
        if (
            count_prefix_cols.shape != pair_prefix_cols.shape
            or count_prefix_cols.ndim != 2
        ):
            raise InvalidParameterError(
                "count/pair prefix layouts must be two equal-shape matrices"
            )
        self._count_cols = np.ascontiguousarray(count_prefix_cols, dtype=np.int64)
        self._pair_cols = np.ascontiguousarray(pair_prefix_cols, dtype=np.int64)
        self._set_size = int(set_size)
        num_sets = self._count_cols.shape[1]
        # Reusable per-query buffers: one flatness query allocates nothing
        # beyond numpy's internal median scratch.
        self._counts = np.empty(num_sets, dtype=np.int64)
        self._pairs = np.empty(num_sets, dtype=np.int64)
        self._denom = np.empty(num_sets, dtype=np.int64)
        self._ratio_buf = np.empty(num_sets, dtype=np.float64)
        self._memo: dict[tuple, FlatnessResult] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    @property
    def n(self) -> int:
        """Domain size (the grid holds every endpoint ``0..n``)."""
        return self._count_cols.shape[0] - 1

    @property
    def num_sets(self) -> int:
        """The replication factor ``r``."""
        return self._count_cols.shape[1]

    @property
    def set_size(self) -> int:
        """``m``, the (common) size of each sample set."""
        return self._set_size

    @property
    def memo_size(self) -> int:
        """Number of distinct memoised verdicts."""
        return len(self._memo)

    def _median_conditional_norm(self, start: int, stop: int) -> float:
        """Median-of-r [GR00] estimate from the compiled rows, in place."""
        counts = self._counts  # gathered by the caller for this interval
        np.subtract(self._pair_cols[stop], self._pair_cols[start], out=self._pairs)
        # C(counts, 2) in exact int64 math, matching utils.prefix.pairs_count.
        np.subtract(counts, 1, out=self._denom)
        np.multiply(self._denom, counts, out=self._denom)
        np.floor_divide(self._denom, 2, out=self._denom)
        return float(np.median(_ratio(self._pairs, self._denom, out=self._ratio_buf)))

    def query(
        self, start: int, stop: int, metric: str, epsilon: float, scale: float = 1.0
    ) -> FlatnessResult:
        """One memoised flatness verdict (parameters assumed validated)."""
        key = (start, stop, metric, epsilon, scale)
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        length = _check_interval(start, stop)
        counts = np.subtract(
            self._count_cols[stop], self._count_cols[start], out=self._counts
        )
        median_z = lambda: self._median_conditional_norm(start, stop)  # noqa: E731
        if metric == "l2":
            result = l2_flatness_verdict(
                counts, self._set_size, length, epsilon, median_z
            )
        else:
            result = l1_flatness_verdict(counts, length, epsilon, scale, median_z)
        self._memo[key] = result
        return result

    def oracle(
        self, metric: str, epsilon: float, scale: float = 1.0
    ) -> FlatnessOracle:
        """A validate-once flatness oracle over the compiled sketches.

        The returned closure is what Algorithm 2's partition search (and
        the min-k sweep) consume; all oracles from one compiled object
        share its verdict memo.
        """
        validate_metric(metric)
        validate_flatness_epsilon(epsilon)
        validate_flatness_scale(scale)
        return lambda start, stop: self.query(start, stop, metric, epsilon, scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledTesterSketches(n={self.n}, r={self.num_sets}, "
            f"m={self._set_size}, memo={self.memo_size})"
        )


def compile_tester_sketches(multi: MultiSketch) -> CompiledTesterSketches:
    """Compile a :class:`MultiSketch` into the tester's gather layout.

    Pure in the sketch contents, so the result is reusable by any number
    of ``(k, epsilon)`` tester or min-k calls over the same draw (which
    is how :class:`repro.api.SketchBundle` caches it).

    Each per-set sketch already holds its sorted distinct values and
    prefix sums (built once at :class:`MultiSketch` construction), so
    compilation is ``r`` batched ``searchsorted`` evaluations of the full
    endpoint grid — no re-sort of the raw samples.  (Measured against
    re-running the one-sort batched pass of
    :func:`repro.samples.collision.batched_interval_prefixes` over the
    raw sets, reusing the per-set sorts is 5-8x cheaper; the batched pass
    remains the right tool where no per-set sketches exist, i.e. the
    greedy compile path.)
    """
    n = multi.n
    grid = np.arange(n + 1, dtype=np.int64)
    per_set = [sketch.prefixes_on_grid(grid) for sketch in multi.sketches]
    count_rows = np.stack([c for c, _ in per_set])
    pair_rows = np.stack([p for _, p in per_set])
    return CompiledTesterSketches(
        np.ascontiguousarray(count_rows.T),
        np.ascontiguousarray(pair_rows.T),
        multi.set_size,
    )
