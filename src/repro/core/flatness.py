"""Flatness tests: Algorithm 3 (l2) and Algorithm 4 (l1).

Both certify that an interval ``I`` is close to flat (conditionally
uniform or light) from collision statistics:

* an interval can be light — too few hits to matter (step 1 in both
  algorithms; such intervals cost little in the final distance), or
* its conditional collision probability ``||p_I||_2^2`` — estimated by
  the median-of-r [GR00] statistic — is close to the uniform level
  ``1 / |I|``.

Pseudocode note (README.md, "Design notes"): the papers' step 3 writes ``C(|S^1|, 2)`` as
the denominator, but the surrounding proofs (Eqs. 28–29 and 35) use
``C(|S^i_I|, 2)``; we follow the proofs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import flatness_l1_min_hits
from repro.errors import InvalidParameterError
from repro.samples.estimators import MultiSketch

REASON_LIGHT = "light-weight"
REASON_COLLISION_OK = "collision-bound"
REASON_REJECTED = "rejected"


@dataclass(frozen=True)
class FlatnessResult:
    """Verdict of one flatness test.

    Attributes
    ----------
    accepted:
        Whether the interval passed as (close to) flat.
    reason:
        ``"light-weight"`` (step-1 accept), ``"collision-bound"``
        (statistic under threshold) or ``"rejected"``.
    statistic:
        The median collision estimate ``z_I`` (``None`` on light accepts).
    threshold:
        The acceptance threshold compared against (``None`` on light
        accepts).
    """

    accepted: bool
    reason: str
    statistic: float | None
    threshold: float | None


def _check_interval(start: int, stop: int) -> int:
    if stop <= start:
        raise InvalidParameterError(
            f"flatness test needs a non-empty interval, got [{start}, {stop})"
        )
    return stop - start


def test_flatness_l2(
    multi: MultiSketch, start: int, stop: int, epsilon: float
) -> FlatnessResult:
    """``testFlatness-l2`` (Algorithm 3).

    1. ``p_hat_i(I) = 2 |S^i_I| / m``;
    2. accept if any ``|S^i_I| / m < eps^2 / 2`` (light interval);
    3. ``z_I`` = median of per-set conditional collision estimates;
    4. accept iff ``z_I <= 1/|I| + max_i eps^2 / (2 p_hat_i(I))``.
    """
    length = _check_interval(start, stop)
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    m = multi.set_size
    counts = multi.counts(start, stop).astype(np.float64)
    if np.any(counts / m < epsilon**2 / 2):
        return FlatnessResult(True, REASON_LIGHT, None, None)
    p_hat = 2.0 * counts / m
    z = float(multi.median_conditional_norm(start, stop))
    threshold = 1.0 / length + float(np.max(epsilon**2 / (2.0 * p_hat)))
    if z <= threshold:
        return FlatnessResult(True, REASON_COLLISION_OK, z, threshold)
    return FlatnessResult(False, REASON_REJECTED, z, threshold)


def test_flatness_l1(
    multi: MultiSketch,
    start: int,
    stop: int,
    epsilon: float,
    scale: float = 1.0,
) -> FlatnessResult:
    """``testFlatness-l1`` (Algorithm 4).

    1. accept if any ``|S^i_I| < 16^3 sqrt(|I|) / eps^4`` (light);
    2. ``z_I`` = median of per-set conditional collision estimates;
    3. accept iff ``z_I <= (1/|I|) (1 + eps^2 / 4)``.

    ``scale`` rescales the step-1 hit threshold in proportion to the
    sample sizes: the paper's threshold is an absolute count calibrated
    to ``m = 2^13 sqrt(kn) / eps^5``, so running at ``scale * m`` samples
    requires ``scale *`` the threshold to test the same weight level.
    """
    length = _check_interval(start, stop)
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    counts = multi.counts(start, stop)
    min_hits = scale * flatness_l1_min_hits(length, epsilon)
    if np.any(counts < min_hits):
        return FlatnessResult(True, REASON_LIGHT, None, None)
    z = float(multi.median_conditional_norm(start, stop))
    threshold = (1.0 / length) * (1.0 + epsilon**2 / 4.0)
    if z <= threshold:
        return FlatnessResult(True, REASON_COLLISION_OK, z, threshold)
    return FlatnessResult(False, REASON_REJECTED, z, threshold)
