"""The Theorem 5 lower-bound construction and distinguishers.

Theorem 5: testing tiling k-histograms in l1 requires ``Omega(sqrt(kn))``
samples, for every ``k <= 1/eps``.  The proof pairs

* a **YES instance** — ``[0, n)`` split into ``k`` near-equal intervals
  whose masses alternate between ``~2/k`` and 0, uniform within each
  (an exact tiling k-histogram), with
* a **NO instance** — the YES instance with one random heavy interval
  scrambled: a random half of its elements get probability 0 and the
  other half get twice their probability (fine structure no k-histogram
  can match).

Distinguishing the two requires ``Theta(sqrt(n/k))`` hits inside the
scrambled interval, hence ``Theta(sqrt(nk))`` samples overall.  The F4
experiment measures the empirical distinguishing advantage against
``m / sqrt(kn)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.samples.collision import CollisionSketch
from repro.utils.prefix import pairs_count
from repro.utils.rng import as_rng


def _interval_layout(n: int, k: int) -> np.ndarray:
    """Boundaries of ``k`` near-equal intervals over ``[0, n)``."""
    if not 1 <= k <= n:
        raise InvalidParameterError(f"need 1 <= k <= n, got k={k}, n={n}")
    return np.linspace(0, n, k + 1).astype(np.int64)


def heavy_intervals(n: int, k: int) -> list[Interval]:
    """The intervals carrying mass in the YES/NO construction.

    These are the even-indexed intervals of the k-way equal split
    (the first, third, ... pieces).
    """
    bounds = _interval_layout(n, k)
    return [
        Interval(int(bounds[j]), int(bounds[j + 1]))
        for j in range(0, k, 2)
    ]


def yes_instance(n: int, k: int) -> DiscreteDistribution:
    """The YES instance: an exact tiling k-histogram.

    Interval masses alternate ``w, 0, w, 0, ...`` with ``w = 1 / #heavy``
    (``~ 2/k``, matching the paper's ``b2/kc`` up to the even/odd-k
    rounding), uniform within each interval.
    """
    heavies = heavy_intervals(n, k)
    mass = 1.0 / len(heavies)
    pmf = np.zeros(n, dtype=np.float64)
    for interval in heavies:
        pmf[interval.start : interval.stop] = mass / interval.length
    return DiscreteDistribution(pmf)


def no_instance(
    n: int, k: int, rng: "int | None | np.random.Generator" = None
) -> DiscreteDistribution:
    """A NO instance: one random heavy interval scrambled.

    Within the chosen interval, a uniformly random half of the elements
    get probability 0; the remaining elements share the interval's mass
    (twice their YES probability, up to odd-length rounding).
    """
    generator = as_rng(rng)
    heavies = heavy_intervals(n, k)
    base = yes_instance(n, k).pmf.copy()
    target = heavies[int(generator.integers(len(heavies)))]
    length = target.length
    if length < 2:
        raise InvalidParameterError(
            f"interval of length {length} cannot be scrambled; increase n/k"
        )
    zeroed = generator.choice(length, size=length // 2, replace=False)
    interval_mass = base[target.start : target.stop].sum()
    segment = np.full(length, interval_mass / (length - length // 2))
    segment[zeroed] = 0.0
    base[target.start : target.stop] = segment
    return DiscreteDistribution(base)


@dataclass(frozen=True)
class DistinguisherVerdict:
    """Output of a YES/NO distinguisher.

    ``says_no`` is ``True`` when the statistic exceeds the decision
    threshold (i.e. the sample looks like a NO instance).
    """

    says_no: bool
    statistic: float
    threshold: float


def collision_distinguisher(
    samples: np.ndarray,
    n: int,
    k: int,
    threshold_factor: float = 1.5,
) -> DistinguisherVerdict:
    """The natural collision distinguisher for the Theorem 5 pair.

    For each heavy interval ``I`` of the known layout it forms the
    conditional collision estimate ``coll(S_I) / C(|S_I|, 2)`` and
    normalises by the uniform level ``1 / |I|``.  YES instances
    concentrate near 1 on every interval; a NO instance pushes one
    interval towards 2 (half support, double mass).  The verdict is NO
    when the maximum normalised statistic exceeds ``threshold_factor``.

    This distinguisher uses the samples as efficiently as the problem
    allows (collision counting is what the ``Omega(sqrt(kn))`` bound is
    tight against), so its empirical advantage curve traces the lower
    bound's transition.
    """
    if threshold_factor <= 1.0:
        raise InvalidParameterError(
            f"threshold_factor must exceed 1, got {threshold_factor}"
        )
    sketch = CollisionSketch(np.asarray(samples), n)
    best = 0.0
    for interval in heavy_intervals(n, k):
        count = sketch.count(interval.start, interval.stop)
        pairs = pairs_count(count)
        if pairs == 0:
            continue
        estimate = sketch.collisions(interval.start, interval.stop) / pairs
        best = max(best, estimate * interval.length)
    return DistinguisherVerdict(
        says_no=best > threshold_factor,
        statistic=best,
        threshold=threshold_factor,
    )
