"""The paper's algorithms.

* :func:`learn_histogram` — the greedy priority-histogram learner
  (Algorithm 1 / Theorem 1 with ``method="exhaustive"``, the improved
  Theorem 2 variant with ``method="fast"``);
* :func:`test_k_histogram_l2` / :func:`test_k_histogram_l1` — the tiling
  k-histogram testers of Section 4 (Theorems 3 and 4);
* :mod:`repro.core.lower_bound` — the Theorem 5 hard instances;
* :func:`test_uniformity` — the [GR00] collision uniformity tester
  (the ``k = 1`` special case the paper builds on).
"""

from repro.core.candidates import (
    all_interval_candidates,
    sample_endpoint_candidates,
)
from repro.core.flatness import (
    CompiledTesterSketches,
    FlatnessResult,
    FleetTesterSketches,
    compile_tester_sketches,
    flatness_oracle,
    test_flatness_l1,
    test_flatness_l2,
)
from repro.core.greedy import (
    CompiledGreedySketches,
    GreedySamples,
    compile_greedy_sketches,
    draw_greedy_samples,
    learn_from_samples,
    learn_histogram,
)
from repro.core.identity import (
    IdentityResult,
    test_identity_l2,
    test_identity_l2_on_sketch,
)
from repro.core.lower_bound import (
    collision_distinguisher,
    no_instance,
    yes_instance,
)
from repro.core.params import GreedyParams, TesterParams, greedy_rounds, xi
from repro.core.results import FlatnessQuery, LearnResult, TestResult, UniformityResult
from repro.core.selection import (
    SelectionResult,
    estimate_min_k,
    select_min_k_on_fleet,
    select_min_k_on_sketch,
)
from repro.core.tester import (
    draw_tester_sets,
    fleet_flat_partition,
    fleet_test_on_sketches,
    test_k_histogram_l1,
    test_k_histogram_l2,
    test_l1_on_sketch,
    test_l2_on_sketch,
)
from repro.core.uniformity import test_uniformity, test_uniformity_on_sketch

__all__ = [
    "CompiledGreedySketches",
    "CompiledTesterSketches",
    "FlatnessQuery",
    "FlatnessResult",
    "FleetTesterSketches",
    "GreedyParams",
    "GreedySamples",
    "IdentityResult",
    "LearnResult",
    "SelectionResult",
    "TestResult",
    "TesterParams",
    "UniformityResult",
    "all_interval_candidates",
    "collision_distinguisher",
    "compile_greedy_sketches",
    "compile_tester_sketches",
    "draw_greedy_samples",
    "draw_tester_sets",
    "estimate_min_k",
    "flatness_oracle",
    "fleet_flat_partition",
    "fleet_test_on_sketches",
    "greedy_rounds",
    "learn_from_samples",
    "learn_histogram",
    "no_instance",
    "sample_endpoint_candidates",
    "select_min_k_on_fleet",
    "select_min_k_on_sketch",
    "test_flatness_l1",
    "test_flatness_l2",
    "test_identity_l2",
    "test_identity_l2_on_sketch",
    "test_k_histogram_l1",
    "test_k_histogram_l2",
    "test_l1_on_sketch",
    "test_l2_on_sketch",
    "test_uniformity",
    "test_uniformity_on_sketch",
    "xi",
    "yes_instance",
]
