"""Tiling k-histogram testers (Algorithm 2; Theorems 3 and 4).

Algorithm 2 tries to cover ``[0, n)`` with at most ``k`` flat intervals.
Starting from the left edge it binary-searches for the farthest endpoint
whose interval still passes the flatness test, commits that interval, and
repeats; it accepts iff ``k`` intervals suffice.

Accept-condition note (DESIGN.md): the paper's pseudocode accepts when
``previous = n`` (1-based), but the binary search leaves ``low = n + 1``
when the final interval is flat; the reachable condition — implemented
here — is ``previous >= n`` in 0-based half-open coordinates.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.flatness import (
    REASON_REJECTED,
    FlatnessResult,
    test_flatness_l1,
    test_flatness_l2,
)
from repro.core.params import TesterParams
from repro.core.results import FlatnessQuery, TestResult
from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.samples.estimators import MultiSketch
from repro.utils.rng import as_rng

FlatnessOracle = Callable[[int, int], FlatnessResult]


def flat_partition(
    n: int,
    max_pieces: int,
    oracle: FlatnessOracle,
) -> tuple[list[Interval], list[FlatnessQuery]]:
    """Algorithm 2's partition search, generic over the flatness oracle.

    Returns the flat intervals found (in order) and the full query log.
    The caller decides acceptance from whether the intervals cover the
    domain.
    """
    if max_pieces < 1:
        raise InvalidParameterError(f"max_pieces must be >= 1, got {max_pieces}")
    queries: list[FlatnessQuery] = []
    partition: list[Interval] = []

    def flat(start: int, stop: int) -> bool:
        result = oracle(start, stop)
        queries.append(
            FlatnessQuery(
                interval=Interval(start, stop),
                accepted=result.accepted,
                reason=result.reason,
                statistic=result.statistic,
                threshold=result.threshold,
            )
        )
        return result.accepted

    previous = 0
    for _ in range(max_pieces):
        low, high = previous, n - 1
        while high >= low:
            mid = low + (high - low) // 2
            if flat(previous, mid + 1):
                low = mid + 1
            else:
                high = mid - 1
        if low == previous:
            # A single element is always flat in exact arithmetic; this
            # branch is a defensive guard against a stuck search.
            break
        partition.append(Interval(previous, low))
        previous = low
        if previous >= n:
            break
    return partition, queries


def _run_tester(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    norm: str,
    params: TesterParams,
    oracle_factory: Callable[[MultiSketch], FlatnessOracle],
    rng: "int | None | np.random.Generator",
) -> TestResult:
    generator = as_rng(rng)
    sample_sets = [
        np.asarray(source.sample(params.set_size, generator))
        for _ in range(params.num_sets)
    ]
    multi = MultiSketch.from_sample_sets(sample_sets, n)
    partition, queries = flat_partition(n, k, oracle_factory(multi))
    covered = partition[-1].stop if partition else 0
    return TestResult(
        accepted=covered >= n,
        norm=norm,
        k=k,
        epsilon=epsilon,
        partition=partition,
        queries=queries,
        params=params,
        samples_used=params.total_samples,
    )


def test_k_histogram_l2(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    *,
    scale: float = 1.0,
    params: TesterParams | None = None,
    rng: "int | None | np.random.Generator" = None,
) -> TestResult:
    """Theorem 3 tester: is ``p`` a tiling k-histogram, or eps-far in l2?

    Draws ``r = 16 ln(6 n^2)`` sets of ``m = 64 ln(n) / eps^4`` samples
    (times ``scale``) and runs Algorithm 2 with ``testFlatness-l2``.

    Guarantees (at ``scale = 1``): members are accepted and distributions
    eps-far in l2 are rejected, each with probability at least 2/3.
    """
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, n], got k={k}, n={n}")
    if params is None:
        params = TesterParams.l2_from_paper(n, epsilon, scale=scale)

    def factory(multi: MultiSketch) -> FlatnessOracle:
        return lambda start, stop: test_flatness_l2(multi, start, stop, epsilon)

    return _run_tester(source, n, k, epsilon, "l2", params, factory, rng)


def test_k_histogram_l1(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    *,
    scale: float = 1.0,
    params: TesterParams | None = None,
    rng: "int | None | np.random.Generator" = None,
) -> TestResult:
    """Theorem 4 tester: is ``p`` a tiling k-histogram, or eps-far in l1?

    Draws ``r = 16 ln(6 n^2)`` sets of ``m = 2^13 sqrt(kn) / eps^5``
    samples (times ``scale``) and runs Algorithm 2 with
    ``testFlatness-l1``; the light-interval threshold scales with ``m``.
    """
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, n], got k={k}, n={n}")
    if params is None:
        params = TesterParams.l1_from_paper(n, k, epsilon, scale=scale)
    # The light-interval threshold of testFlatness-l1 is an absolute hit
    # count calibrated to the paper's m; rescale it to the actual set size
    # so explicitly supplied params stay consistent.
    paper_set_size = (2**13) * np.sqrt(k * n) / epsilon**5
    effective_scale = min(1.0, params.set_size / paper_set_size)

    def factory(multi: MultiSketch) -> FlatnessOracle:
        return lambda start, stop: test_flatness_l1(
            multi, start, stop, epsilon, scale=effective_scale
        )

    return _run_tester(source, n, k, epsilon, "l1", params, factory, rng)


def count_rejections(result: TestResult) -> int:
    """Number of rejected flatness queries in a test run (diagnostics)."""
    return sum(1 for q in result.queries if q.reason == REASON_REJECTED)
