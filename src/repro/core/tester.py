"""Tiling k-histogram testers (Algorithm 2; Theorems 3 and 4).

Algorithm 2 tries to cover ``[0, n)`` with at most ``k`` flat intervals.
Starting from the left edge it binary-searches for the farthest endpoint
whose interval still passes the flatness test, commits that interval, and
repeats; it accepts iff ``k`` intervals suffice.

Accept-condition note (README.md, "Design notes"): the paper's pseudocode
accepts when ``previous = n`` (1-based), but the binary search leaves
``low = n + 1`` when the final interval is flat; the reachable condition —
implemented here — is ``previous >= n`` in 0-based half-open coordinates.

Like the learner, the module splits "draw samples" from "run the
algorithm": :func:`draw_tester_sets` touches the source,
:func:`test_l2_on_sketch` / :func:`test_l1_on_sketch` run Algorithm 2 on
an already-built :class:`~repro.samples.estimators.MultiSketch`, and the
classic :func:`test_k_histogram_l2` / :func:`test_k_histogram_l1` compose
the two (see :class:`repro.api.HistogramSession` for the sketch-reusing
path).

Each flatness oracle comes in two engines (README.md, "Compiled tester
engine"): ``engine="compiled"`` (the default) answers queries from a
:class:`~repro.core.flatness.CompiledTesterSketches` — precompiled
prefix gathers plus a verdict memo — and ``engine="full"`` re-runs the
per-set searches on every probe.  The two are byte-identical on verdicts
*and query logs* (the equivalence contract the test suite asserts);
``BENCH_tester.json`` tracks the measured speedup.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.flatness import (
    REASON_REJECTED,
    CompiledTesterSketches,
    FlatnessOracle,
    compile_tester_sketches,
    flatness_oracle,
)
from repro.core.params import TesterParams
from repro.core.results import FlatnessQuery, TestResult
from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.samples.estimators import MultiSketch
from repro.utils.rng import as_rng

TESTER_ENGINES = ("compiled", "full")


def flat_partition(
    n: int,
    max_pieces: int,
    oracle: FlatnessOracle,
) -> tuple[list[Interval], list[FlatnessQuery]]:
    """Algorithm 2's partition search, generic over the flatness oracle.

    Returns the flat intervals found (in order) and the full query log.
    The caller decides acceptance from whether the intervals cover the
    domain.  Every probe is logged, including ones a memoising oracle
    answers from cache — the log is engine-independent.
    """
    if max_pieces < 1:
        raise InvalidParameterError(f"max_pieces must be >= 1, got {max_pieces}")
    queries: list[FlatnessQuery] = []
    partition: list[Interval] = []

    def flat(start: int, stop: int) -> bool:
        result = oracle(start, stop)
        queries.append(
            FlatnessQuery(
                interval=Interval(start, stop),
                accepted=result.accepted,
                reason=result.reason,
                statistic=result.statistic,
                threshold=result.threshold,
            )
        )
        return result.accepted

    previous = 0
    for _ in range(max_pieces):
        low, high = previous, n - 1
        while high >= low:
            mid = low + (high - low) // 2
            if flat(previous, mid + 1):
                low = mid + 1
            else:
                high = mid - 1
        if low == previous:
            # A single element is always flat in exact arithmetic; this
            # branch is a defensive guard against a stuck search.
            break
        partition.append(Interval(previous, low))
        previous = low
        if previous >= n:
            break
    return partition, queries


def draw_tester_sets(
    source: object,
    params: TesterParams,
    rng: "int | None | np.random.Generator" = None,
) -> list[np.ndarray]:
    """Draw Algorithm 2's ``r`` sample sets (the only sampling step).

    Draw order is part of the public contract: ``params.num_sets``
    consecutive draws of ``params.set_size`` from one generator, so any
    caller reproducing the order is seed-for-seed compatible with the
    one-shot testers.
    """
    generator = as_rng(rng)
    return [
        np.asarray(source.sample(params.set_size, generator))
        for _ in range(params.num_sets)
    ]


def validate_tester_engine(engine: str) -> None:
    """Reject unknown tester engines."""
    if engine not in TESTER_ENGINES:
        raise InvalidParameterError(
            f"engine must be one of {TESTER_ENGINES}, got {engine!r}"
        )


def resolve_flatness_oracle(
    multi: MultiSketch,
    metric: str,
    epsilon: float,
    *,
    scale: float = 1.0,
    engine: str = "compiled",
    compiled: CompiledTesterSketches | None = None,
) -> FlatnessOracle:
    """The flatness oracle for one tester invocation, validated once.

    ``engine="compiled"`` uses ``compiled`` when given (the session cache
    path) or compiles ``multi`` on the spot; ``engine="full"`` answers
    every probe from the raw sketch (``compiled`` is ignored).
    """
    validate_tester_engine(engine)
    if engine == "full":
        return flatness_oracle(multi, metric, epsilon, scale=scale)
    if compiled is None:
        compiled = compile_tester_sketches(multi)
    return compiled.oracle(metric, epsilon, scale=scale)


def _run_on_sketch(
    multi: MultiSketch,
    n: int,
    k: int,
    epsilon: float,
    norm: str,
    params: TesterParams,
    oracle_factory: Callable[[MultiSketch], FlatnessOracle],
) -> TestResult:
    partition, queries = flat_partition(n, k, oracle_factory(multi))
    covered = partition[-1].stop if partition else 0
    return TestResult(
        accepted=covered >= n,
        norm=norm,
        k=k,
        epsilon=epsilon,
        partition=partition,
        queries=queries,
        params=params,
        samples_used=params.total_samples,
    )


def _validate_k(n: int, k: int) -> None:
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, n], got k={k}, n={n}")


def test_l2_on_sketch(
    multi: MultiSketch,
    n: int,
    k: int,
    epsilon: float,
    params: TesterParams,
    *,
    engine: str = "compiled",
    compiled: CompiledTesterSketches | None = None,
) -> TestResult:
    """Theorem 3's tester on an already-built sketch (no source access).

    Pure in ``multi``: running it any number of times — or interleaved
    with other ``(k, epsilon)`` queries over the same sketch — returns
    identical results, which is what lets sessions share one draw.
    ``engine``/``compiled`` select the flatness engine (see module
    docstring); the verdict and query log are engine-independent.
    """
    _validate_k(n, k)
    return _run_on_sketch(
        multi,
        n,
        k,
        epsilon,
        "l2",
        params,
        lambda m: resolve_flatness_oracle(
            m, "l2", epsilon, engine=engine, compiled=compiled
        ),
    )


def l1_effective_scale(n: int, k: int, epsilon: float, params: TesterParams) -> float:
    """Rescaling of ``testFlatness-l1``'s light-interval threshold.

    The threshold is an absolute hit count calibrated to the paper's
    ``m = 2^13 sqrt(kn) / eps^5``; running with ``params.set_size``
    samples per set requires scaling it proportionally so the same weight
    level is tested.
    """
    paper_set_size = (2**13) * np.sqrt(k * n) / epsilon**5
    return min(1.0, params.set_size / paper_set_size)


def test_l1_on_sketch(
    multi: MultiSketch,
    n: int,
    k: int,
    epsilon: float,
    params: TesterParams,
    *,
    engine: str = "compiled",
    compiled: CompiledTesterSketches | None = None,
) -> TestResult:
    """Theorem 4's tester on an already-built sketch (no source access)."""
    _validate_k(n, k)
    effective_scale = l1_effective_scale(n, k, epsilon, params)
    return _run_on_sketch(
        multi,
        n,
        k,
        epsilon,
        "l1",
        params,
        lambda m: resolve_flatness_oracle(
            m,
            "l1",
            epsilon,
            scale=effective_scale,
            engine=engine,
            compiled=compiled,
        ),
    )


def test_k_histogram_l2(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    *,
    scale: float = 1.0,
    params: TesterParams | None = None,
    engine: str = "compiled",
    rng: "int | None | np.random.Generator" = None,
) -> TestResult:
    """Theorem 3 tester: is ``p`` a tiling k-histogram, or eps-far in l2?

    Draws ``r = 16 ln(6 n^2)`` sets of ``m = 64 ln(n) / eps^4`` samples
    (times ``scale``) and runs Algorithm 2 with ``testFlatness-l2``.

    Guarantees (at ``scale = 1``): members are accepted and distributions
    eps-far in l2 are rejected, each with probability at least 2/3.
    """
    _validate_k(n, k)
    if params is None:
        params = TesterParams.l2_from_paper(n, epsilon, scale=scale)
    sample_sets = draw_tester_sets(source, params, rng)
    multi = MultiSketch.from_sample_sets(sample_sets, n)
    return test_l2_on_sketch(multi, n, k, epsilon, params, engine=engine)


def test_k_histogram_l1(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    *,
    scale: float = 1.0,
    params: TesterParams | None = None,
    engine: str = "compiled",
    rng: "int | None | np.random.Generator" = None,
) -> TestResult:
    """Theorem 4 tester: is ``p`` a tiling k-histogram, or eps-far in l1?

    Draws ``r = 16 ln(6 n^2)`` sets of ``m = 2^13 sqrt(kn) / eps^5``
    samples (times ``scale``) and runs Algorithm 2 with
    ``testFlatness-l1``; the light-interval threshold scales with ``m``
    (see :func:`l1_effective_scale`).
    """
    _validate_k(n, k)
    if params is None:
        params = TesterParams.l1_from_paper(n, k, epsilon, scale=scale)
    sample_sets = draw_tester_sets(source, params, rng)
    multi = MultiSketch.from_sample_sets(sample_sets, n)
    return test_l1_on_sketch(multi, n, k, epsilon, params, engine=engine)


def count_rejections(result: TestResult) -> int:
    """Number of rejected flatness queries in a test run (diagnostics)."""
    return sum(1 for q in result.queries if q.reason == REASON_REJECTED)
