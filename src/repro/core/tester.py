"""Tiling k-histogram testers (Algorithm 2; Theorems 3 and 4).

Algorithm 2 tries to cover ``[0, n)`` with at most ``k`` flat intervals.
Starting from the left edge it binary-searches for the farthest endpoint
whose interval still passes the flatness test, commits that interval, and
repeats; it accepts iff ``k`` intervals suffice.

Accept-condition note (README.md, "Design notes"): the paper's pseudocode
accepts when ``previous = n`` (1-based), but the binary search leaves
``low = n + 1`` when the final interval is flat; the reachable condition —
implemented here — is ``previous >= n`` in 0-based half-open coordinates.

Like the learner, the module splits "draw samples" from "run the
algorithm": :func:`draw_tester_sets` touches the source,
:func:`test_l2_on_sketch` / :func:`test_l1_on_sketch` run Algorithm 2 on
an already-built :class:`~repro.samples.estimators.MultiSketch`, and the
classic :func:`test_k_histogram_l2` / :func:`test_k_histogram_l1` compose
the two (see :class:`repro.api.HistogramSession` for the sketch-reusing
path).

Each flatness oracle comes in two engines (README.md, "Compiled tester
engine"): ``engine="compiled"`` (the default) answers queries from a
:class:`~repro.core.flatness.CompiledTesterSketches` — precompiled
prefix gathers plus a verdict memo — and ``engine="full"`` re-runs the
per-set searches on every probe.  The two are byte-identical on verdicts
*and query logs* (the equivalence contract the test suite asserts);
``BENCH_tester.json`` tracks the measured speedup.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.flatness import (
    REASON_REJECTED,
    CompiledTesterSketches,
    FlatnessOracle,
    FlatnessResult,
    FleetFlatnessOracle,
    FleetTesterSketches,
    compile_tester_sketches,
    flatness_oracle,
)
from repro.core.params import TesterParams
from repro.core.results import FlatnessQuery, TestResult
from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.samples.estimators import MultiSketch
from repro.utils.deprecation import warn_one_shot_shim
from repro.utils.rng import as_rng

TESTER_ENGINES = ("compiled", "full")


def flat_partition(
    n: int,
    max_pieces: int,
    oracle: FlatnessOracle,
) -> tuple[list[Interval], list[FlatnessQuery]]:
    """Algorithm 2's partition search, generic over the flatness oracle.

    Returns the flat intervals found (in order) and the full query log.
    The caller decides acceptance from whether the intervals cover the
    domain.  Every probe is logged, including ones a memoising oracle
    answers from cache — the log is engine-independent.
    """
    if max_pieces < 1:
        raise InvalidParameterError(f"max_pieces must be >= 1, got {max_pieces}")
    queries: list[FlatnessQuery] = []
    partition: list[Interval] = []

    def flat(start: int, stop: int) -> bool:
        result = oracle(start, stop)
        queries.append(
            FlatnessQuery(
                interval=Interval(start, stop),
                accepted=result.accepted,
                reason=result.reason,
                statistic=result.statistic,
                threshold=result.threshold,
            )
        )
        return result.accepted

    previous = 0
    for _ in range(max_pieces):
        low, high = previous, n - 1
        while high >= low:
            mid = low + (high - low) // 2
            if flat(previous, mid + 1):
                low = mid + 1
            else:
                high = mid - 1
        if low == previous:
            # A single element is always flat in exact arithmetic; this
            # branch is a defensive guard against a stuck search.
            break
        partition.append(Interval(previous, low))
        previous = low
        if previous >= n:
            break
    return partition, queries


class _FleetPartitionState:
    """One member's Algorithm 2 binary-search state, lockstep-steppable.

    A verbatim state-machine translation of :func:`flat_partition`'s
    nested loops: ``(previous, low, high, pieces)`` hold the sequential
    code's loop variables, and :meth:`advance` consumes one probe's
    verdict — logging it and updating the search — returning whether the
    member still has probes to make.  Driving every member through the
    same transitions the sequential code takes is what keeps a fleet
    run's per-member partitions *and query logs* byte-identical to a
    loop of single-member runs.
    """

    __slots__ = ("n", "max_pieces", "previous", "pieces", "low", "high",
                 "partition", "queries")

    def __init__(self, n: int, max_pieces: int) -> None:
        self.n = n
        self.max_pieces = max_pieces
        self.previous = 0
        self.pieces = 0
        self.low = 0
        self.high = n - 1
        self.partition: list[Interval] = []
        self.queries: list[FlatnessQuery] = []

    def probe_stop(self) -> int:
        """End of the interval the next flatness query tests (``mid + 1``;
        the start is always the current ``previous``)."""
        return self.low + (self.high - self.low) // 2 + 1

    def advance(self, stop: int, result: FlatnessResult) -> bool:
        """Consume the pending probe's verdict; ``True`` while active."""
        self.queries.append(
            FlatnessQuery(
                interval=Interval(self.previous, stop),
                accepted=result.accepted,
                reason=result.reason,
                statistic=result.statistic,
                threshold=result.threshold,
            )
        )
        if result.accepted:
            self.low = stop  # == mid + 1
        else:
            self.high = stop - 2  # == mid - 1
        if self.high >= self.low:
            return True
        # Inner binary search finished for this piece.
        if self.low == self.previous:
            # Defensive guard against a stuck search (see flat_partition).
            return False
        self.partition.append(Interval(self.previous, self.low))
        self.previous = self.low
        self.pieces += 1
        if self.previous >= self.n or self.pieces >= self.max_pieces:
            return False
        self.low, self.high = self.previous, self.n - 1
        return True


def fleet_flat_partition(
    n: int,
    max_pieces: int,
    oracle: FleetFlatnessOracle,
    members: "list[int]",
) -> list[tuple[list[Interval], list[FlatnessQuery]]]:
    """Algorithm 2's partition search for many members, lockstep-batched.

    Every member runs exactly the probe sequence :func:`flat_partition`
    would run for it — memo-hit verdicts are consumed inline (members
    fast-forward independently, so a member replaying a cached search
    never stalls the batch), and each round gathers at most one fresh
    probe per member into a single vectorised
    :meth:`~repro.core.flatness.FleetFlatnessOracle.resolve` call.
    Returns each member's ``(partition, query log)`` in input order,
    byte-identical — partitions, logs, and per-member memo accounting —
    to looping the sequential search.

    The fast-forward loop reads each member's verdict memo directly
    (hit ticks are accumulated locally and flushed once at the end):
    at fleet scale the per-probe constant of this loop is the serving
    path's floor, so it stays free of per-probe method dispatch.
    """
    if max_pieces < 1:
        raise InvalidParameterError(f"max_pieces must be >= 1, got {max_pieces}")
    states = [_FleetPartitionState(n, max_pieces) for _ in members]
    memos = [oracle.member_memo(member) for member in members]
    hits = [0] * len(members)
    metric, epsilon, scale = oracle.suffix
    active = list(range(len(members)))
    while active:
        parked: list[int] = []
        stops: list[int] = []
        for i in active:
            # Fast-forward through memo hits with the state in locals —
            # the same transitions as _FleetPartitionState.advance, kept
            # free of per-probe attribute and method dispatch (this loop
            # is the serving path's floor; see the docstring).
            state = states[i]
            memo_get = memos[i].get
            queries_append = state.queries.append
            previous, low, high = state.previous, state.low, state.high
            pieces, partition = state.pieces, state.partition
            local_hits = 0
            while True:
                stop = low + (high - low) // 2 + 1
                cached = memo_get((previous, stop, metric, epsilon, scale))
                if cached is None:
                    state.previous, state.low, state.high = previous, low, high
                    state.pieces = pieces
                    parked.append(i)
                    stops.append(stop)
                    break
                local_hits += 1
                queries_append(
                    FlatnessQuery(
                        interval=Interval(previous, stop),
                        accepted=cached.accepted,
                        reason=cached.reason,
                        statistic=cached.statistic,
                        threshold=cached.threshold,
                    )
                )
                if cached.accepted:
                    low = stop
                else:
                    high = stop - 2
                if high >= low:
                    continue
                if low == previous:
                    state.previous, state.low, state.high = previous, low, high
                    state.pieces = pieces
                    break
                partition.append(Interval(previous, low))
                previous = low
                pieces += 1
                if previous >= n or pieces >= max_pieces:
                    state.previous, state.low, state.high = previous, low, high
                    state.pieces = pieces
                    break
                low, high = previous, n - 1
            hits[i] += local_hits
        if not parked:
            break
        results = oracle.resolve(
            np.asarray([members[i] for i in parked], dtype=np.int64),
            np.asarray([states[i].previous for i in parked], dtype=np.int64),
            np.asarray(stops, dtype=np.int64),
        )
        active = [
            i
            for i, stop, result in zip(parked, stops, results)
            if states[i].advance(stop, result)
        ]
    oracle.flush_hits(members, hits)
    return [(state.partition, state.queries) for state in states]


def fleet_test_on_sketches(
    fleet: FleetTesterSketches,
    n: int,
    k: int,
    epsilon: float,
    norm: str,
    params: TesterParams,
    members: "list[int] | None" = None,
) -> list[TestResult]:
    """One tester invocation across a compiled fleet (no source access).

    The fleet-axis counterpart of :func:`test_l2_on_sketch` /
    :func:`test_l1_on_sketch`: one validated oracle, one lockstep
    partition search, one :class:`TestResult` per member (in member
    order), each byte-identical to the single-sketch call on that
    member's compiled sketches.
    """
    _validate_k(n, k)
    if norm not in ("l1", "l2"):
        raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")
    if members is None:
        members = list(range(fleet.fleet_size))
    scale = 1.0 if norm == "l2" else l1_effective_scale(n, k, epsilon, params)
    oracle = fleet.oracle(norm, epsilon, scale=scale)
    outcomes = fleet_flat_partition(n, k, oracle, members)
    return [
        _result_from_partition(n, k, epsilon, norm, params, partition, queries)
        for partition, queries in outcomes
    ]


def draw_tester_sets(
    source: object,
    params: TesterParams,
    rng: "int | None | np.random.Generator" = None,
) -> list[np.ndarray]:
    """Draw Algorithm 2's ``r`` sample sets (the only sampling step).

    Draw order is part of the public contract: ``params.num_sets``
    consecutive draws of ``params.set_size`` from one generator, so any
    caller reproducing the order is seed-for-seed compatible with the
    one-shot testers.
    """
    generator = as_rng(rng)
    return [
        np.asarray(source.sample(params.set_size, generator))
        for _ in range(params.num_sets)
    ]


def validate_tester_engine(engine: str) -> None:
    """Reject unknown tester engines."""
    if engine not in TESTER_ENGINES:
        raise InvalidParameterError(
            f"engine must be one of {TESTER_ENGINES}, got {engine!r}"
        )


def resolve_flatness_oracle(
    multi: MultiSketch | None,
    metric: str,
    epsilon: float,
    *,
    scale: float = 1.0,
    engine: str = "compiled",
    compiled: CompiledTesterSketches | None = None,
) -> FlatnessOracle:
    """The flatness oracle for one tester invocation, validated once.

    ``engine="compiled"`` uses ``compiled`` when given (the session cache
    path) or compiles ``multi`` on the spot; ``engine="full"`` answers
    every probe from the raw sketch (``compiled`` is ignored).  ``multi``
    may be ``None`` when ``compiled`` is supplied with the compiled
    engine — the fleet facade compiles its gather stacks without ever
    building per-member :class:`MultiSketch` objects.
    """
    validate_tester_engine(engine)
    if engine == "full":
        if multi is None:
            raise InvalidParameterError(
                "engine='full' needs the raw MultiSketch; only the compiled "
                "engine can run from precompiled sketches alone"
            )
        return flatness_oracle(multi, metric, epsilon, scale=scale)
    if compiled is None:
        if multi is None:
            raise InvalidParameterError(
                "engine='compiled' needs either a MultiSketch to compile or "
                "an already-compiled CompiledTesterSketches"
            )
        compiled = compile_tester_sketches(multi)
    return compiled.oracle(metric, epsilon, scale=scale)


def _result_from_partition(
    n: int,
    k: int,
    epsilon: float,
    norm: str,
    params: TesterParams,
    partition: "list[Interval]",
    queries: "list[FlatnessQuery]",
) -> TestResult:
    """Algorithm 2's acceptance rule, shared by every driver.

    Acceptance is coverage: the search committed flat intervals up to
    ``k`` pieces, so the domain is covered iff the last one reaches
    ``n``.  Single-sketch and fleet runs both read their verdicts
    through this one function (the byte-identity contract's anchor).
    """
    covered = partition[-1].stop if partition else 0
    return TestResult(
        accepted=covered >= n,
        norm=norm,
        k=k,
        epsilon=epsilon,
        partition=partition,
        queries=queries,
        params=params,
        samples_used=params.total_samples,
    )


def _run_on_sketch(
    multi: MultiSketch,
    n: int,
    k: int,
    epsilon: float,
    norm: str,
    params: TesterParams,
    oracle_factory: Callable[[MultiSketch], FlatnessOracle],
) -> TestResult:
    partition, queries = flat_partition(n, k, oracle_factory(multi))
    return _result_from_partition(n, k, epsilon, norm, params, partition, queries)


def _validate_k(n: int, k: int) -> None:
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, n], got k={k}, n={n}")


def test_l2_on_sketch(
    multi: MultiSketch | None,
    n: int,
    k: int,
    epsilon: float,
    params: TesterParams,
    *,
    engine: str = "compiled",
    compiled: CompiledTesterSketches | None = None,
) -> TestResult:
    """Theorem 3's tester on an already-built sketch (no source access).

    Pure in ``multi``: running it any number of times — or interleaved
    with other ``(k, epsilon)`` queries over the same sketch — returns
    identical results, which is what lets sessions share one draw.
    ``engine``/``compiled`` select the flatness engine (see module
    docstring); the verdict and query log are engine-independent.
    ``multi`` may be ``None`` on the compiled engine when ``compiled``
    is supplied (the fleet path never builds per-member sketches).
    """
    _validate_k(n, k)
    return _run_on_sketch(
        multi,
        n,
        k,
        epsilon,
        "l2",
        params,
        lambda m: resolve_flatness_oracle(
            m, "l2", epsilon, engine=engine, compiled=compiled
        ),
    )


def l1_effective_scale(n: int, k: int, epsilon: float, params: TesterParams) -> float:
    """Rescaling of ``testFlatness-l1``'s light-interval threshold.

    The threshold is an absolute hit count calibrated to the paper's
    ``m = 2^13 sqrt(kn) / eps^5``; running with ``params.set_size``
    samples per set requires scaling it proportionally so the same weight
    level is tested.
    """
    paper_set_size = (2**13) * np.sqrt(k * n) / epsilon**5
    return min(1.0, params.set_size / paper_set_size)


def test_l1_on_sketch(
    multi: MultiSketch | None,
    n: int,
    k: int,
    epsilon: float,
    params: TesterParams,
    *,
    engine: str = "compiled",
    compiled: CompiledTesterSketches | None = None,
) -> TestResult:
    """Theorem 4's tester on an already-built sketch (no source access).

    As with :func:`test_l2_on_sketch`, ``multi`` may be ``None`` on the
    compiled engine when ``compiled`` is supplied.
    """
    _validate_k(n, k)
    effective_scale = l1_effective_scale(n, k, epsilon, params)
    return _run_on_sketch(
        multi,
        n,
        k,
        epsilon,
        "l1",
        params,
        lambda m: resolve_flatness_oracle(
            m,
            "l1",
            epsilon,
            scale=effective_scale,
            engine=engine,
            compiled=compiled,
        ),
    )


def test_k_histogram_l2(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    *,
    scale: float = 1.0,
    params: TesterParams | None = None,
    engine: str = "compiled",
    rng: "int | None | np.random.Generator" = None,
) -> TestResult:
    """Theorem 3 tester: is ``p`` a tiling k-histogram, or eps-far in l2?

    .. deprecated:: 1.0
        The PR-1 seed-compat one-shot shim; a fresh
        :class:`repro.api.HistogramSession`'s first ``test_l2`` is
        seed-for-seed identical and reuses its draw.  Calling this
        emits a :class:`DeprecationWarning`.

    Draws ``r = 16 ln(6 n^2)`` sets of ``m = 64 ln(n) / eps^4`` samples
    (times ``scale``) and runs Algorithm 2 with ``testFlatness-l2``.

    Guarantees (at ``scale = 1``): members are accepted and distributions
    eps-far in l2 are rejected, each with probability at least 2/3.
    """
    warn_one_shot_shim(
        "test_k_histogram_l2", "repro.api.HistogramSession.test_l2"
    )
    _validate_k(n, k)
    if params is None:
        params = TesterParams.l2_from_paper(n, epsilon, scale=scale)
    sample_sets = draw_tester_sets(source, params, rng)
    multi = MultiSketch.from_sample_sets(sample_sets, n)
    return test_l2_on_sketch(multi, n, k, epsilon, params, engine=engine)


def test_k_histogram_l1(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    *,
    scale: float = 1.0,
    params: TesterParams | None = None,
    engine: str = "compiled",
    rng: "int | None | np.random.Generator" = None,
) -> TestResult:
    """Theorem 4 tester: is ``p`` a tiling k-histogram, or eps-far in l1?

    .. deprecated:: 1.0
        The PR-1 seed-compat one-shot shim; a fresh
        :class:`repro.api.HistogramSession`'s first ``test_l1`` is
        seed-for-seed identical and reuses its draw.  Calling this
        emits a :class:`DeprecationWarning`.

    Draws ``r = 16 ln(6 n^2)`` sets of ``m = 2^13 sqrt(kn) / eps^5``
    samples (times ``scale``) and runs Algorithm 2 with
    ``testFlatness-l1``; the light-interval threshold scales with ``m``
    (see :func:`l1_effective_scale`).
    """
    warn_one_shot_shim(
        "test_k_histogram_l1", "repro.api.HistogramSession.test_l1"
    )
    _validate_k(n, k)
    if params is None:
        params = TesterParams.l1_from_paper(n, k, epsilon, scale=scale)
    sample_sets = draw_tester_sets(source, params, rng)
    multi = MultiSketch.from_sample_sets(sample_sets, n)
    return test_l1_on_sketch(multi, n, k, epsilon, params, engine=engine)


def count_rejections(result: TestResult) -> int:
    """Number of rejected flatness queries in a test run (diagnostics)."""
    return sum(1 for q in result.queries if q.reason == REASON_REJECTED)
