"""Candidate interval sets for the greedy learner.

Algorithm 1 scores every interval of ``[n]`` each round (``C(n, 2)`` of
them); Theorem 2 restricts the search to intervals whose endpoints are
sample values or their +-1 neighbours (the set ``T'``), which preserves
the guarantee up to ``8 eps`` because intervals missed this way carry at
most ``xi`` weight (Lemma 2).

Candidates are expressed in *grid space*: a sorted array of endpoint
positions plus ``(lo, hi)`` index pairs into it.  The greedy engine
compiles every sample set's prefix sums onto the grid once, making each
candidate evaluation a pure gather.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class CandidateSet:
    """Candidate intervals over a shared endpoint grid.

    Attributes
    ----------
    grid:
        Sorted unique positions; always contains 0 and ``n``.
    lo / hi:
        Index pairs into ``grid``; candidate ``j`` is the half-open
        interval ``[grid[lo[j]], grid[hi[j]])``.
    """

    grid: np.ndarray
    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        if self.lo.shape != self.hi.shape:
            raise InvalidParameterError("lo and hi must have equal shapes")
        if self.lo.size and not np.all(self.grid[self.hi] > self.grid[self.lo]):
            raise InvalidParameterError("candidates must be non-empty intervals")

    @property
    def size(self) -> int:
        """Number of candidate intervals."""
        return int(self.lo.shape[0])

    def locate(self, points: np.ndarray) -> np.ndarray:
        """Grid indices of ``points`` (which must be grid members)."""
        idx = np.searchsorted(self.grid, points)
        if np.any(self.grid[np.minimum(idx, self.grid.size - 1)] != points):
            raise InvalidParameterError("points are not all on the grid")
        return idx

    def intersecting(self, lo_index: int, hi_index: int) -> np.ndarray:
        """Indices of candidates overlapping grid span ``[lo_index, hi_index]``.

        The span denotes the half-open point region
        ``[grid[lo_index], grid[hi_index])``; because the grid is strictly
        increasing, overlap reduces to two integer comparisons per
        candidate.  This is the greedy engine's dirty-region query: after
        a commit, only candidates returned here can have changed scores.
        """
        return np.nonzero((self.hi > lo_index) & (self.lo < hi_index))[0]

    def subsample(
        self, max_candidates: int, rng: int | None | np.random.Generator = None
    ) -> "CandidateSet":
        """Uniformly subsample candidates (practicality escape hatch).

        Deviates from the paper (README.md, "Design notes"); only used when
        the caller explicitly caps the candidate count.
        """
        if max_candidates < 1:
            raise InvalidParameterError("max_candidates must be >= 1")
        if self.size <= max_candidates:
            return self
        keep = as_rng(rng).choice(self.size, size=max_candidates, replace=False)
        keep.sort()
        return CandidateSet(self.grid, self.lo[keep], self.hi[keep])


def all_interval_candidates(n: int) -> CandidateSet:
    """Every interval of ``[0, n)`` — Algorithm 1's exhaustive search.

    The grid is ``0..n`` and candidates are all ``C(n+1, 2)`` index pairs;
    quadratic in ``n``, intended for moderate domains.
    """
    if int(n) != n or n < 1:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    grid = np.arange(n + 1, dtype=np.int64)
    lo, hi = np.triu_indices(n + 1, k=1)
    return CandidateSet(grid, lo.astype(np.int64), hi.astype(np.int64))


def _triu_pairs(
    count: int, max_candidates: int | None, rng: int | None | np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """``(i, j)`` row/column pairs of the ``count x count`` upper triangle.

    With a cap smaller than the ``count (count + 1) / 2`` total, the kept
    flat positions are drawn with the *same* single
    ``choice(total, size=cap, replace=False)`` call (plus sort) that
    :meth:`CandidateSet.subsample` would make on the materialised set, and
    inverted to ``(i, j)`` arithmetically — so a capped build never
    allocates the full pair arrays yet consumes the generator identically
    and keeps identical candidates.  Uncapped (or a cap at/above the
    total) touches the generator not at all, exactly like ``subsample``'s
    early return.
    """
    total = count * (count + 1) // 2
    if max_candidates is None or total <= max_candidates:
        i_idx, j_idx = np.triu_indices(count, k=0)
        return i_idx.astype(np.int64), j_idx.astype(np.int64)
    keep = as_rng(rng).choice(total, size=max_candidates, replace=False)
    keep.sort()
    # Row i starts at flat position i*count - i*(i-1)/2; invert by
    # binary search, then recover the column offset within the row.
    rows = np.arange(count, dtype=np.int64)
    row_starts = rows * count - rows * (rows - 1) // 2
    i_idx = np.searchsorted(row_starts, keep, side="right") - 1
    j_idx = keep - row_starts[i_idx] + i_idx
    return i_idx.astype(np.int64), j_idx.astype(np.int64)


def sample_endpoint_candidates(
    samples: np.ndarray,
    n: int,
    *,
    max_candidates: int | None = None,
    rng: int | None | np.random.Generator = None,
) -> CandidateSet:
    """Theorem 2's restricted candidates.

    ``T' = {min(i+1, n-1), i, max(i-1, 0) : i in T}`` for the distinct
    sample values ``T`` (0-based translation of the paper's set), and the
    candidates are all closed intervals ``[a, b]`` with ``a <= b`` in
    ``T'`` — here represented half-open as ``[a, b + 1)``.

    ``max_candidates`` caps the pair count *lazily*: the kept pairs are
    chosen before any per-pair array exists (see :func:`_triu_pairs`),
    byte- and rng-identical to building everything and calling
    :meth:`CandidateSet.subsample` — which matters out of core, where
    ``|T'|^2`` pairs would dwarf every other allocation of a learn.
    """
    samples = np.asarray(samples, dtype=np.int64)
    if int(n) != n or n < 1:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    if samples.size == 0:
        raise InvalidParameterError("need at least one sample to build T'")
    if samples.min() < 0 or samples.max() >= n:
        raise InvalidParameterError("samples contain values outside [0, n)")
    distinct = np.unique(samples)
    t_prime = np.unique(
        np.concatenate(
            [
                np.maximum(distinct - 1, 0),
                distinct,
                np.minimum(distinct + 1, n - 1),
            ]
        )
    )
    # Closed candidate [T'[i], T'[j]] (j >= i) is half-open
    # [T'[i], T'[j] + 1); grid holds both endpoint families.
    grid = np.unique(np.concatenate([t_prime, t_prime + 1, [0, n]]))
    starts_idx = np.searchsorted(grid, t_prime)
    stops_idx = np.searchsorted(grid, t_prime + 1)
    i_idx, j_idx = _triu_pairs(t_prime.size, max_candidates, rng)
    return CandidateSet(
        grid,
        starts_idx[i_idx].astype(np.int64),
        stops_idx[j_idx].astype(np.int64),
    )
