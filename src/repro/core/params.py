"""Sample-size formulas from the paper, with a practicality knob.

Every constant below is quoted from the paper:

* ``xi = eps / (k ln(1/eps))`` — the per-interval accuracy Algorithm 1
  needs (Theorem 1 proof);
* Algorithm 1: ``ell = ln(12 n^2) / (2 xi^2)`` weight samples,
  ``r = ln(6 n^2)`` collision sets of ``m = 24 / xi^2`` samples each,
  ``q = k ln(1/eps)`` greedy rounds;
* Algorithm 2 (l2): ``r = 16 ln(6 n^2)`` sets of
  ``m = 64 ln(n) eps^-4`` samples;
* Theorem 4 (l1): same ``r`` with ``m = 2^13 sqrt(kn) eps^-5``, and the
  light-interval threshold ``16^3 sqrt(|I|) / eps^4`` in
  ``testFlatness-l1``.

The paper's constants are worst-case; at realistic ``(n, k, eps)`` they
demand hundreds of millions of samples.  Every ``from_paper`` constructor
therefore accepts ``scale``: each *set size* is multiplied by ``scale``
(``scale = 1.0`` is paper-faithful), leaving the algorithms untouched.
Experiments report the scale they used (README.md, "Experiments").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidParameterError


def _validate_common(n: int, epsilon: float) -> None:
    if int(n) != n or n <= 0:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")


def _validate_k(k: int) -> None:
    if int(k) != k or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")


def _validate_scale(scale: float) -> None:
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(
            f"scale must be in (0, 1] (1.0 = paper-faithful), got {scale}"
        )


def xi(k: int, epsilon: float) -> float:
    """``xi = eps / (k ln(1/eps))`` — Algorithm 1's interval accuracy."""
    _validate_k(k)
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return epsilon / (k * math.log(1.0 / epsilon))


def greedy_rounds(k: int, epsilon: float) -> int:
    """``q = ceil(k ln(1/eps))`` — greedy iterations (Theorem 1 proof)."""
    _validate_k(k)
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(1, math.ceil(k * math.log(1.0 / epsilon)))


def _odd_at_least(value: float, minimum: int) -> int:
    """Round up to an odd integer >= minimum (medians want odd r)."""
    result = max(minimum, math.ceil(value))
    if result % 2 == 0:
        result += 1
    return result


@dataclass(frozen=True)
class GreedyParams:
    """Resolved sample sizes for the greedy learner (Algorithm 1).

    Attributes
    ----------
    weight_sample_size:
        ``ell`` — size of the single weight-estimation sample ``S``.
    collision_sets:
        ``r`` — number of independent collision sample sets.
    collision_set_size:
        ``m`` — size of each collision set.
    rounds:
        ``q`` — greedy iterations.
    scale:
        The scale the sizes were derived with (for reporting).
    """

    weight_sample_size: int
    collision_sets: int
    collision_set_size: int
    rounds: int
    scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("weight_sample_size", "collision_sets", "collision_set_size", "rounds"):
            if getattr(self, name) < 1:
                raise InvalidParameterError(f"{name} must be >= 1")

    @property
    def total_samples(self) -> int:
        """Total samples the learner draws."""
        return self.weight_sample_size + self.collision_sets * self.collision_set_size

    @classmethod
    def from_paper(
        cls, n: int, k: int, epsilon: float, scale: float = 1.0
    ) -> "GreedyParams":
        """Algorithm 1's sizes: ``ell = ln(12 n^2)/(2 xi^2)``,
        ``r = ln(6 n^2)``, ``m = 24 / xi^2``, ``q = k ln(1/eps)``."""
        _validate_common(n, epsilon)
        _validate_k(k)
        _validate_scale(scale)
        accuracy = xi(k, epsilon)
        ell = math.ceil(scale * math.log(12 * n * n) / (2 * accuracy**2))
        sets = _odd_at_least(math.log(6 * n * n), 3)
        set_size = math.ceil(scale * 24 / accuracy**2)
        return cls(
            weight_sample_size=max(ell, 16),
            collision_sets=sets,
            collision_set_size=max(set_size, 16),
            rounds=greedy_rounds(k, epsilon),
            scale=scale,
        )


@dataclass(frozen=True)
class TesterParams:
    """Resolved sample sizes for the tiling k-histogram testers.

    Attributes
    ----------
    num_sets:
        ``r = 16 ln(6 n^2)`` independent sample sets.
    set_size:
        ``m`` — per-set sample count (norm-dependent, see constructors).
    scale:
        The scale the sizes were derived with (for reporting).
    """

    __test__ = False  # not a pytest class, despite the name

    num_sets: int
    set_size: int
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.num_sets < 1 or self.set_size < 2:
            raise InvalidParameterError("need num_sets >= 1 and set_size >= 2")

    @property
    def total_samples(self) -> int:
        """Total samples the tester draws."""
        return self.num_sets * self.set_size

    @classmethod
    def l2_from_paper(
        cls, n: int, epsilon: float, scale: float = 1.0
    ) -> "TesterParams":
        """Theorem 3: ``r = 16 ln(6 n^2)``, ``m = 64 ln(n) / eps^4``."""
        _validate_common(n, epsilon)
        _validate_scale(scale)
        sets = _odd_at_least(16 * math.log(6 * n * n), 3)
        set_size = math.ceil(scale * 64 * math.log(max(n, 2)) / epsilon**4)
        return cls(num_sets=sets, set_size=max(set_size, 16), scale=scale)

    @classmethod
    def l1_from_paper(
        cls, n: int, k: int, epsilon: float, scale: float = 1.0
    ) -> "TesterParams":
        """Theorem 4: ``r = 16 ln(6 n^2)``, ``m = 2^13 sqrt(kn) / eps^5``."""
        _validate_common(n, epsilon)
        _validate_k(k)
        _validate_scale(scale)
        sets = _odd_at_least(16 * math.log(6 * n * n), 3)
        set_size = math.ceil(scale * (2**13) * math.sqrt(k * n) / epsilon**5)
        return cls(num_sets=sets, set_size=max(set_size, 16), scale=scale)


def flatness_l1_min_hits(length: int, epsilon: float) -> float:
    """``testFlatness-l1`` step 1: ``|S^i_I| >= 16^3 sqrt(|I|) / eps^4``.

    Derived in the Theorem 4 proof from ``|S_I| >= 16 sqrt(|I|) / delta^2``
    with ``delta = eps^2 / 16``.
    """
    if length < 1:
        raise InvalidParameterError(f"interval length must be >= 1, got {length}")
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return (16**3) * math.sqrt(length) / epsilon**4
