"""Identity testing against an explicit distribution ([BFF+01]-style).

The paper's related work frames its problem against *identity testing*:
given samples from ``p`` and an explicit ``q``, decide ``p = q`` versus
``||p - q|| > eps``.  Uniformity testing (q = uniform) is the special
case the paper builds on; this module provides the general l2 version as
a substrate, using the same collision machinery:

    ||p - q||_2^2 = ||p||_2^2 - 2 <p, q> + ||q||_2^2

where ``||p||_2^2`` is estimated by the observed collision probability
([GR00]) and the cross term by the unbiased estimator
``<p, q> ~ (1/m) sum_i q(x_i)`` over samples ``x_i ~ p``.

The collision statistic is read off a compiled
:class:`~repro.samples.collision.CollisionSketch` (which also performs
the domain validation), mirroring the flatness/uniformity stack:
:func:`test_identity_l2_on_sketch` is the pure half over an
already-built sketch, :func:`test_identity_l2` the draw-and-run
composition.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.distances import as_pmf
from repro.errors import InsufficientSamplesError, InvalidParameterError
from repro.samples.collision import CollisionSketch
from repro.utils.prefix import pairs_count
from repro.utils.rng import as_rng

from dataclasses import dataclass


@dataclass(frozen=True)
class IdentityResult:
    """Output of the l2 identity tester.

    ``statistic`` is the (possibly slightly negative, noise) unbiased
    estimate of ``||p - q||_2^2``; the verdict compares it against
    ``threshold = eps^2 / 2``.
    """

    accepted: bool
    statistic: float
    threshold: float
    epsilon: float
    samples_used: int


def identity_sample_size(n: int, epsilon: float, constant: float = 24.0) -> int:
    """``m = constant * sqrt(n) / eps^2`` — the l2-tester budget.

    The l2 statistic's variance is dominated by the collision term, same
    as uniformity testing, giving the classical ``O(sqrt(n)/eps^2)``.
    """
    if int(n) != n or n <= 0:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(16, math.ceil(constant * math.sqrt(n) / epsilon**2))


def test_identity_l2_on_sketch(
    sketch: CollisionSketch,
    samples: np.ndarray,
    reference: object,
    epsilon: float,
) -> IdentityResult:
    """Identity verdict from an already-built sketch (no source access).

    ``sketch`` must be built over ``samples`` (the raw array is still
    needed for the cross term ``(1/m) sum_i q(x_i)``); ``||p||_2^2``
    comes from the sketch's compiled pair prefix in O(1).  Pure in both
    inputs.
    """
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    q = as_pmf(reference)
    if q.shape[0] != sketch.n:
        raise InvalidParameterError(
            f"reference has {q.shape[0]} elements, sketch domain is {sketch.n}"
        )
    if sketch.size < 2:
        raise InsufficientSamplesError(
            f"need >= 2 samples for a collision probability, got {sketch.size}"
        )
    p_norm_sq = sketch.total_collisions / pairs_count(sketch.size)
    cross = float(q[samples].mean())
    q_norm_sq = float(np.dot(q, q))
    statistic = p_norm_sq - 2.0 * cross + q_norm_sq
    threshold = epsilon**2 / 2.0
    return IdentityResult(
        accepted=statistic <= threshold,
        statistic=float(statistic),
        threshold=threshold,
        epsilon=epsilon,
        samples_used=sketch.size,
    )


def test_identity_l2(
    source: object,
    reference: object,
    epsilon: float,
    *,
    scale: float = 1.0,
    constant: float = 24.0,
    rng: "int | None | np.random.Generator" = None,
) -> IdentityResult:
    """Accept if ``p = q`` (the explicit ``reference``), reject if
    ``||p - q||_2 > eps``.

    Parameters
    ----------
    source:
        Sample access to the unknown ``p``.
    reference:
        The explicit ``q`` (pmf array, distribution, or histogram).
    epsilon:
        l2 accuracy.  Note the l2 regime: distributions with small
        point masses are all l2-close, so meaningful epsilons depend on
        the scale of ``q``'s heaviest elements.
    scale / constant / rng:
        As in :func:`repro.core.uniformity.test_uniformity`.
    """
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    q = as_pmf(reference)
    n = q.shape[0]
    size = max(16, math.ceil(scale * identity_sample_size(n, epsilon, constant)))
    samples = np.asarray(source.sample(size, as_rng(rng)))
    return test_identity_l2_on_sketch(
        CollisionSketch(samples, n), samples, reference, epsilon
    )
