"""The greedy priority-histogram learner (Algorithm 1 / Theorem 2).

The algorithm draws

* one weight sample ``S`` of size ``ell`` giving ``y_I = |S_I| / ell``,
* ``r`` collision sets of size ``m`` giving
  ``z_I = median_i coll(S^i_I) / C(m, 2)`` (the absolute second-moment
  estimator of Lemma 1),

and runs ``q = k ln(1/eps)`` rounds.  Each round scores every candidate
interval ``J`` by the estimated squared-l2 cost of the histogram obtained
by painting ``J`` (with value ``y_J / |J|``) over the current one, then
commits the argmin.

Two faithfulness details (README.md, "Design notes"):

* the cost ``c_J`` sums ``z_I - y_I^2 / |I|`` over *all* segments of the
  flattened result, counting never-covered gaps as zero-valued pieces
  (``cost = z_I``), which is what makes costs comparable across ``J``;
* painting ``J`` truncates at most two existing pieces; their remainders
  are re-added with *re-estimated* weights (Algorithm 1's ``I_L, I_R``
  recomputation), so every visible piece always carries the weight
  estimate of its visible extent.  The engine therefore keeps the state
  eagerly flattened and reports the paper's priority log alongside.

Scoring is *incremental* (README.md, "Incremental scoring").  A
candidate's score decomposes as ``total + rel_J`` with

``rel_J = self_J - removed_J + left_J + right_J``

where ``self_J = z_J - y_J^2/|J|`` never changes across rounds (hoisted
into :class:`CompiledGreedySketches` at compile time, median included),
``removed_J`` is the summed cost of the segments the candidate covers,
and ``left_J``/``right_J`` are the truncated-remainder costs.  Because a
round repaints at most one interval and truncates at most two
neighbours, ``rel_J`` can only change for candidates whose span
intersects the segments changed by the last commit; everything else
shifts by the same global ``total`` delta, which preserves the argmin
order.  The engine therefore rescores only the dirty region each round
and keeps candidate minima in a lazily-repaired block-argmin structure.
``engine="full"`` rescores every candidate every round through the same
code path, which is what makes the two modes byte-identical (the
equivalence the test suite asserts).

The module is split into three layers so samples can be reused across
calls (see :class:`repro.api.HistogramSession`):

* :func:`draw_greedy_samples` — the only part that touches the source;
* :func:`compile_greedy_sketches` — candidate grid + prefix compilation
  (one vectorised pass over all ``r`` collision sets) plus the
  round-invariant per-candidate self-costs;
* :func:`learn_from_samples` — the pure algorithm over those inputs.

:func:`learn_histogram` is the classic one-shot composition of the three.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.candidates import (
    CandidateSet,
    all_interval_candidates,
    sample_endpoint_candidates,
)
from repro.core.params import GreedyParams
from repro.core.results import GreedyRound, LearnResult
from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram
from repro.utils.deprecation import warn_one_shot_shim
from repro.utils.prefix import pairs_count
from repro.utils.rng import as_rng

_METHODS = ("fast", "exhaustive")
_ENGINES = ("incremental", "full", "lockstep")
_SCORE_CHUNK = 200_000
_GATHER_CHUNK = 1_000_000
_ARGMIN_BLOCK = 2_048


def _score_gather(
    self_costs: np.ndarray,
    removed_pair: np.ndarray,
    left_at: np.ndarray,
    right_at: np.ndarray,
) -> np.ndarray:
    """``rel = self - removed + left + right`` over pre-gathered operands.

    The one arithmetic spelling of the incremental decomposition, shared
    by every engine (and the lockstep rescore workers): the float op
    order here is part of the byte-identity contract, so nobody spells
    it twice.
    """
    rel = self_costs - removed_pair
    rel = rel + left_at
    rel = rel + right_at
    return rel


def _piece_costs(
    grid: np.ndarray,
    weight_prefix: np.ndarray,
    weight_total: float,
    pair_prefix_cols: np.ndarray,
    pairs_per_set: float,
    lo: np.ndarray,
    hi: np.ndarray,
    assigned: np.ndarray | bool,
) -> np.ndarray:
    """``z_I - y_I^2 / |I|`` for assigned pieces, ``z_I`` for gaps.

    The one scoring expression shared by the compile-time self-cost pass,
    the per-round remainder scoring, and the cached segment costs.  A
    single code path is what makes a cached score bit-identical to a
    fresh rescore — the invariant the incremental engine relies on.
    """
    lo = np.asarray(lo)
    hi = np.asarray(hi)
    lengths = (grid[hi] - grid[lo]).astype(np.float64)
    per_set = (pair_prefix_cols[hi] - pair_prefix_cols[lo]) / pairs_per_set
    z = np.median(per_set, axis=1)
    y = (weight_prefix[hi] - weight_prefix[lo]) / weight_total
    fitted = z - y * y / np.maximum(lengths, 1.0)
    return np.where(np.asarray(assigned), fitted, z)


def _candidate_self_costs(
    candidates: CandidateSet,
    weight_prefix: np.ndarray,
    weight_total: float,
    pair_prefix_cols: np.ndarray,
    pairs_per_set: float,
    chunk_size: int = _SCORE_CHUNK,
) -> np.ndarray:
    """Round-invariant ``z_J - y_J^2/|J|`` for every candidate (chunked)."""
    out = np.empty(candidates.size, dtype=np.float64)
    for start in range(0, candidates.size, chunk_size):
        sl = slice(start, min(start + chunk_size, candidates.size))
        out[sl] = _piece_costs(
            candidates.grid,
            weight_prefix,
            weight_total,
            pair_prefix_cols,
            pairs_per_set,
            candidates.lo[sl],
            candidates.hi[sl],
            True,
        )
    return out


@dataclass(frozen=True)
class RoundReport:
    """What one committed greedy round did, trace-ready.

    ``neighbours`` holds the re-added truncated remainders of *assigned*
    pieces (Algorithm 1's ``I_L, I_R``) with their re-estimated values,
    in left-to-right order — exactly the pieces the priority log gains
    this round besides ``chosen`` itself.
    """

    candidate_index: int
    cost: float
    weight_estimate: float
    chosen: Interval
    value: float
    neighbours: list[tuple[Interval, float]]
    rescored: int


class _GreedyEngine:
    """Vectorised greedy rounds with dirty-region incremental rescoring.

    State per candidate: ``rel_J`` (score minus the shared ``total``
    term), valid as of the last round that touched it.  State per
    segment: grid-index endpoints, assignedness, and the cached piece
    cost.  ``incremental=False`` rescans every candidate every round
    through the same code path (the ``engine="full"`` reference).
    """

    def __init__(
        self,
        candidates: CandidateSet,
        weight_prefix: np.ndarray,
        weight_total: int,
        pair_prefix_cols: np.ndarray,
        pairs_per_set: float,
        self_costs: np.ndarray,
        incremental: bool = True,
        rel_buffer: np.ndarray | None = None,
        block_min_buffer: np.ndarray | None = None,
    ) -> None:
        self._cands = candidates
        self._grid = candidates.grid
        self._wprefix = np.asarray(weight_prefix).astype(np.float64)
        self._wtotal = float(weight_total)
        self._pp_cols = np.ascontiguousarray(pair_prefix_cols, dtype=np.float64)
        self._pairs_per_set = float(pairs_per_set)
        self._self_cost = np.asarray(self_costs, dtype=np.float64)
        self._incremental = bool(incremental)

        last = self._grid.size - 1
        self._seg_lo: list[int] = [0]
        self._seg_hi: list[int] = [last]
        self._seg_assigned: list[bool] = [False]
        self._seg_cost: list[float] = [
            float(self._piece_cost(np.asarray([0]), np.asarray([last]), False)[0])
        ]
        # Everything is dirty before the first round.
        self._dirty_lo = 0
        self._dirty_hi = last

        # ``rel`` lives padded to a whole number of argmin blocks (the
        # pad stays +inf forever) so block repair is one reshaped
        # ``min(axis=1)`` instead of a Python loop per touched block.
        # Callers may inject the buffers — the lockstep engine carves
        # per-run views out of flat (shared-memory) slabs here.
        self._block = _ARGMIN_BLOCK
        num_blocks = max(1, -(-candidates.size // self._block))
        padded = num_blocks * self._block
        if rel_buffer is None:
            rel_buffer = np.empty(padded, dtype=np.float64)
        if block_min_buffer is None:
            block_min_buffer = np.empty(num_blocks, dtype=np.float64)
        rel_buffer[:] = np.inf
        block_min_buffer[:] = np.inf
        self._rel_padded = rel_buffer
        self._rel = rel_buffer[: candidates.size]
        self._rel_blocks = rel_buffer.reshape(num_blocks, self._block)
        self._block_min = block_min_buffer

    # -------------------------------------------------------------- #
    # estimate queries (grid-index space, vectorised)
    # -------------------------------------------------------------- #

    def _y(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Weight estimates ``y`` over ``[grid[lo], grid[hi])``."""
        return (self._wprefix[hi] - self._wprefix[lo]) / self._wtotal

    def _piece_cost(
        self, lo: np.ndarray, hi: np.ndarray, assigned: np.ndarray | bool
    ) -> np.ndarray:
        """``z_I - y_I^2 / |I|`` for assigned pieces, ``z_I`` for gaps."""
        return _piece_costs(
            self._grid,
            self._wprefix,
            self._wtotal,
            self._pp_cols,
            self._pairs_per_set,
            lo,
            hi,
            assigned,
        )

    # -------------------------------------------------------------- #
    # one greedy round
    # -------------------------------------------------------------- #

    def run_round(self) -> RoundReport:
        """Rescore the dirty region, commit the argmin, report the diff."""
        if self._incremental:
            dirty_lo, dirty_hi = self._dirty_lo, self._dirty_hi
        else:
            dirty_lo, dirty_hi = 0, self._grid.size - 1
        dirty = self._cands.intersecting(dirty_lo, dirty_hi)
        self._rescore(dirty)
        return self.commit_best(int(dirty.size))

    def commit_best(self, rescored: int, best: int | None = None) -> RoundReport:
        """Commit the current argmin and report the round's diff.

        Split from :meth:`run_round` so the lockstep driver — which owns
        the rescore phase (cached terms, optional executor fan) — shares
        the exact commit arithmetic and trace packaging with the serial
        engines.
        """
        if best is None:
            best = self._argmin()
        # ``total`` is shared by every candidate this round; summed fresh
        # from the cached per-segment costs so both engine modes agree.
        total = float(np.sum(np.asarray(self._seg_cost, dtype=np.float64)))
        cost = float(total + self._rel[best])
        lo = int(self._cands.lo[best])
        hi = int(self._cands.hi[best])
        chosen = Interval(int(self._grid[lo]), int(self._grid[hi]))
        chosen_y = float(self._y(np.asarray([lo]), np.asarray([hi]))[0])
        neighbours = self._apply(best)
        return RoundReport(
            candidate_index=best,
            cost=cost,
            weight_estimate=chosen_y,
            chosen=chosen,
            value=chosen_y / chosen.length,
            neighbours=neighbours,
            rescored=rescored,
        )

    def _rescore(self, indices: np.ndarray) -> None:
        """Refresh ``rel`` for ``indices`` and repair their argmin blocks.

        Every segment-dependent score term factors through a single
        candidate endpoint: the containing segment ``ia`` and the left
        remainder depend only on ``cand_lo``, ``ib`` and the right
        remainder only on ``cand_hi``, and the removed-cost term on the
        ``(ia, ib)`` pair.  So each round tabulates those once per *grid
        point* — O(G r) median work — and scoring a candidate is three
        pure gathers, with no per-candidate median at all.
        """
        if indices.size == 0:
            return
        seg_lo = np.asarray(self._seg_lo, dtype=np.int64)
        seg_hi = np.asarray(self._seg_hi, dtype=np.int64)
        seg_assigned = np.asarray(self._seg_assigned, dtype=bool)
        seg_costs = np.asarray(self._seg_cost, dtype=np.float64)
        # removed[a, b]: summed cost of segments a..b, accumulated fresh
        # from a (never as a difference of running prefixes) so the value
        # for an untouched segment range is bitwise round-stable.
        count = seg_lo.size
        removed = np.zeros((count, count))
        for a in range(count):
            removed[a, a:] = np.cumsum(seg_costs[a:])
        grid = self._grid
        seg_starts = grid[seg_lo]
        points = np.arange(grid.size, dtype=np.int64)
        # Segment containing each grid point / the point just before it.
        ia = np.searchsorted(seg_starts, grid, side="right") - 1
        ib = np.searchsorted(seg_starts, grid - 1, side="right") - 1
        # Left remainder [segment start, a) for a candidate starting at a.
        lcost = self._piece_cost(seg_lo[ia], points, seg_assigned[ia])
        left_term = np.where(seg_starts[ia] < grid, lcost, 0.0)
        # Right remainder [b, segment stop) for a candidate ending at b.
        rcost = self._piece_cost(points, seg_hi[ib], seg_assigned[ib])
        right_term = np.where(grid[seg_hi[ib]] > grid, rcost, 0.0)
        for start in range(0, indices.size, _GATHER_CHUNK):
            part = indices[start : start + _GATHER_CHUNK]
            cand_lo = self._cands.lo[part]
            cand_hi = self._cands.hi[part]
            self._rel[part] = _score_gather(
                self._self_cost[part],
                removed[ia[cand_lo], ib[cand_hi]],
                left_term[cand_lo],
                right_term[cand_hi],
            )
        self._repair_blocks(indices)

    def _repair_blocks(self, indices: np.ndarray) -> None:
        """Recompute block minima for the blocks ``indices`` touch.

        ``indices`` ascends (``np.nonzero`` order), so consecutive
        deduplication finds each touched block once, and the padded
        reshaped view turns the repair into one fancy-indexed
        ``min(axis=1)`` — no Python loop over blocks.
        """
        blocks = indices // self._block
        touched = blocks[np.flatnonzero(np.diff(blocks, prepend=-1))]
        self._block_min[touched] = self._rel_blocks[touched].min(axis=1)

    def _argmin(self) -> int:
        """Global first-minimum via the block minima (ties break low)."""
        block = int(np.argmin(self._block_min))
        begin = block * self._block
        within = self._rel[begin : begin + self._block]
        return begin + int(np.argmin(within))

    def _apply(self, candidate_index: int) -> list[tuple[Interval, float]]:
        """Commit a candidate: truncate neighbours, insert the new piece.

        Returns the re-added *assigned* remainders (left-to-right) with
        their re-estimated values, and records the dirty grid-index span
        — the full original extent of every segment this commit touched —
        for the next round's rescoring.
        """
        lo = int(self._cands.lo[candidate_index])
        hi = int(self._cands.hi[candidate_index])
        # Affected segments: seg_hi > lo and seg_lo < hi (both sorted).
        first = bisect_right(self._seg_hi, lo)
        last = bisect_left(self._seg_lo, hi) - 1
        dirty_lo = self._seg_lo[first]
        dirty_hi = self._seg_hi[last]

        pieces: list[tuple[int, int, bool]] = []
        left: tuple[int, int, bool] | None = None
        right: tuple[int, int, bool] | None = None
        if dirty_lo < lo:
            left = (dirty_lo, lo, self._seg_assigned[first])
            pieces.append(left)
        pieces.append((lo, hi, True))
        if dirty_hi > hi:
            right = (hi, dirty_hi, self._seg_assigned[last])
            pieces.append(right)

        costs = self._piece_cost(
            np.asarray([p[0] for p in pieces]),
            np.asarray([p[1] for p in pieces]),
            np.asarray([p[2] for p in pieces]),
        )
        self._seg_lo[first : last + 1] = [p[0] for p in pieces]
        self._seg_hi[first : last + 1] = [p[1] for p in pieces]
        self._seg_assigned[first : last + 1] = [p[2] for p in pieces]
        self._seg_cost[first : last + 1] = [float(c) for c in costs]
        self._dirty_lo = dirty_lo
        self._dirty_hi = dirty_hi

        neighbours: list[tuple[Interval, float]] = []
        for remainder in (left, right):
            if remainder is None or not remainder[2]:
                continue
            interval = Interval(
                int(self._grid[remainder[0]]), int(self._grid[remainder[1]])
            )
            y = float(
                self._y(np.asarray([remainder[0]]), np.asarray([remainder[1]]))[0]
            )
            neighbours.append((interval, y / interval.length))
        return neighbours

    # -------------------------------------------------------------- #
    # output
    # -------------------------------------------------------------- #

    def segments(self) -> list[tuple[Interval, bool]]:
        """Current flattened segments as ``(interval, assigned)`` pairs."""
        return [
            (Interval(int(self._grid[lo]), int(self._grid[hi])), assigned)
            for lo, hi, assigned in zip(
                self._seg_lo, self._seg_hi, self._seg_assigned
            )
        ]

    def to_tiling(self, n: int, fill_gaps: bool = False) -> TilingHistogram:
        """The flattened state as a tiling histogram.

        Assigned pieces get value ``y_I / |I|``.  Gaps get 0 (the paper's
        priority-histogram semantics) unless ``fill_gaps``, in which case
        they too get their weight estimate — an application-oriented
        extension that never hurts the squared error and markedly helps
        range queries over low-density regions (README.md, "Design
        notes").
        """
        boundaries = [0]
        values = []
        for lo, hi, assigned in zip(self._seg_lo, self._seg_hi, self._seg_assigned):
            start, stop = int(self._grid[lo]), int(self._grid[hi])
            boundaries.append(stop)
            if assigned or fill_gaps:
                y = float(self._y(np.asarray([lo]), np.asarray([hi]))[0])
                values.append(y / (stop - start))
            else:
                values.append(0.0)
        return TilingHistogram(n, boundaries, values)


def _build_priority_log(
    n: int, engine_trace: list[tuple[Interval, float, list[tuple[Interval, float]]]]
) -> PriorityHistogram:
    """Reconstruct the paper's priority histogram from the round trace."""
    log = PriorityHistogram(n)
    for chosen, value, neighbours in engine_trace:
        pieces = [(chosen, value)]
        pieces.extend(neighbours)
        log.add_many(pieces)
    return log


@dataclass(frozen=True)
class GreedySamples:
    """The raw samples Algorithm 1 draws, decoupled from the source.

    Attributes
    ----------
    weight_samples:
        The single weight-estimation sample ``S`` (``y_I`` estimates).
    collision_sets:
        The ``r`` independent collision sample sets ``S^1, ..., S^r``
        (``z_I`` estimates).
    """

    weight_samples: np.ndarray
    collision_sets: tuple[np.ndarray, ...]

    def matches(self, params: GreedyParams) -> bool:
        """Whether the array shapes agree with ``params``' sizes."""
        return (
            self.weight_samples.shape[0] == params.weight_sample_size
            and len(self.collision_sets) == params.collision_sets
            and all(
                s.shape[0] == params.collision_set_size for s in self.collision_sets
            )
        )


@dataclass(frozen=True)
class CompiledGreedySketches:
    """Candidate grid plus compiled prefix sketches (the learner's input).

    Produced by :func:`compile_greedy_sketches`; building it is the
    expensive per-draw work (sorting, uniquing, prefix compilation, and
    the median-of-``r`` self-cost pass) that
    :class:`repro.api.HistogramSession` caches across calls.

    Attributes
    ----------
    candidates / weight_set / weight_prefix:
        The candidate grid and the weight sample compiled onto it.
    pair_prefix_cols:
        The ``r`` collision sets' pair-count prefixes in a C-contiguous
        ``(G, r)`` float64 layout: gathering one grid endpoint fetches
        all ``r`` prefix values from one contiguous stretch (the
        engine's hot gather).
    self_costs:
        Per-candidate ``z_J - y_J^2/|J|`` — including the median across
        the ``r`` sets — which never changes across greedy rounds.
    pairs_per_set:
        ``C(m, 2)``, the collision-count normaliser.
    """

    candidates: CandidateSet
    weight_set: "SampleSet"
    weight_prefix: np.ndarray
    pair_prefix_cols: np.ndarray
    self_costs: np.ndarray
    pairs_per_set: float


def draw_greedy_samples(
    source: object,
    params: GreedyParams,
    rng: int | None | np.random.Generator = None,
) -> GreedySamples:
    """Draw Algorithm 1's samples from ``source`` (the only sampling step).

    Draw order is part of the public contract: one weight sample of
    ``params.weight_sample_size``, then ``params.collision_sets`` sets of
    ``params.collision_set_size``, all from the same generator — so any
    caller that reproduces this order is seed-for-seed compatible with
    :func:`learn_histogram`.
    """
    generator = as_rng(rng)
    weight_samples = np.asarray(source.sample(params.weight_sample_size, generator))
    collision_sets = tuple(
        np.asarray(source.sample(params.collision_set_size, generator))
        for _ in range(params.collision_sets)
    )
    return GreedySamples(weight_samples, collision_sets)


def compile_greedy_sketches(
    samples: GreedySamples,
    n: int,
    *,
    method: str = "fast",
    max_candidates: int | None = None,
    rng: int | None | np.random.Generator = None,
    prefixes: str = "sorted",
    executor: "object | None" = None,
) -> CompiledGreedySketches:
    """Build the candidate set and compile every sketch onto its grid.

    Pure in the samples (``rng`` is consumed only when ``max_candidates``
    forces a subsample).  The result depends on the sample *contents*,
    so it is reusable by any number of ``(k, epsilon)`` learn calls over
    the same draw.

    All ``r`` collision sets are compiled in one vectorised sort/unique
    pass (:func:`repro.samples.collision.batched_pair_prefixes`), and the
    per-candidate self-costs — the median-of-``r`` part of every score —
    are hoisted here because they are invariant across greedy rounds.

    ``prefixes`` selects the prefix builder: ``"sorted"`` (the batched
    one-sort pass above) or ``"dense"`` — counting-based full-grid
    prefixes (:func:`repro.samples.collision.dense_interval_prefixes`)
    gathered at the candidate grid, plus a counting sort of the weight
    sample.  All arithmetic is exact integer math either way, so the two
    builders produce bit-identical compiled sketches; ``"dense"`` is the
    fleet compiler's choice when the domain is within a constant of the
    sample sizes.

    ``executor`` (a :class:`repro.api.ParallelExecutor`) switches the
    prefix build to the shard-mergeable path
    (:func:`repro.samples.sharded.sharded_interval_prefixes`): every
    collision set splits into the executor's shards, per-shard summaries
    compile independently — across the pool when the executor is
    parallel — and only the ``(G, r)`` gather slab is materialised
    whole.  Bit-identical to both monolithic builders for any
    ``(shards, workers)``, so callers mix freely.
    """
    if method not in _METHODS:
        raise InvalidParameterError(f"method must be one of {_METHODS}, got {method!r}")
    if prefixes not in ("sorted", "dense"):
        raise InvalidParameterError(
            f"prefixes must be 'sorted' or 'dense', got {prefixes!r}"
        )
    started = perf_counter()
    if method == "fast":
        # The lazy capped build never materialises the uncapped pair
        # arrays, yet consumes ``rng`` and picks candidates exactly like
        # building everything then subsampling (see ``_triu_pairs``).
        candidates = sample_endpoint_candidates(
            samples.weight_samples, n, max_candidates=max_candidates, rng=rng
        )
    else:
        candidates = all_interval_candidates(n)
        if max_candidates is not None:
            candidates = candidates.subsample(max_candidates, as_rng(rng))

    from repro.samples.collision import batched_pair_prefixes, dense_interval_prefixes
    from repro.samples.sample_set import SampleSet

    if executor is not None:
        from repro.samples.sharded import ShardedSketch, sharded_interval_prefixes

        num_shards = executor.plan.num_shards
        sharded_weight = ShardedSketch.from_array(
            np.asarray(samples.weight_samples, dtype=np.int64), n, num_shards
        )
        weight_set = SampleSet.from_sorted(sharded_weight.merge(), n)
        pair_rows = sharded_interval_prefixes(
            samples.collision_sets,
            n,
            candidates.grid,
            num_shards=num_shards,
            mapper=executor.map,
            dense=(prefixes == "dense") or None,
            counts=False,
        )[1]
        pair_prefix_cols = np.ascontiguousarray(pair_rows.T, dtype=np.float64)
    elif prefixes == "dense":
        weight_values = np.asarray(samples.weight_samples, dtype=np.int64)
        if weight_values.size and (
            weight_values.min() < 0 or weight_values.max() >= n
        ):
            raise InvalidParameterError("samples contain values outside [0, n)")
        weight_counts = np.bincount(weight_values, minlength=n)
        weight_set = SampleSet.from_sorted(
            np.repeat(np.arange(n, dtype=np.int64), weight_counts), n
        )
        pair_rows = dense_interval_prefixes(samples.collision_sets, n)[1]
        pair_prefix_cols = np.ascontiguousarray(
            pair_rows[:, candidates.grid].T, dtype=np.float64
        )
    else:
        weight_set = SampleSet(samples.weight_samples, n)
        pair_prefix_cols = np.ascontiguousarray(
            batched_pair_prefixes(samples.collision_sets, n, candidates.grid).T,
            dtype=np.float64,
        )
    weight_prefix = weight_set.count_prefix_on_grid(candidates.grid)
    set_size = samples.collision_sets[0].shape[0] if samples.collision_sets else 0
    pairs_per_set = float(pairs_count(set_size))
    self_costs = _candidate_self_costs(
        candidates,
        weight_prefix.astype(np.float64),
        float(weight_set.size),
        pair_prefix_cols,
        pairs_per_set,
    )
    if executor is not None and hasattr(executor, "record_timing"):
        executor.record_timing("compile", perf_counter() - started)
    return CompiledGreedySketches(
        candidates,
        weight_set,
        weight_prefix,
        pair_prefix_cols,
        self_costs,
        pairs_per_set,
    )


def _package_result(
    engine_obj: _GreedyEngine,
    reports: list[RoundReport],
    n: int,
    params: GreedyParams,
    method: str,
) -> LearnResult:
    """Package a finished engine + its round reports as a LearnResult.

    Shared by every engine route (serial and lockstep) so trace and
    accounting packaging is spelled once.
    """
    size = engine_obj._cands.size
    trace: list[tuple[Interval, float, list[tuple[Interval, float]]]] = []
    rounds: list[GreedyRound] = []
    for round_index, report in enumerate(reports):
        trace.append((report.chosen, report.value, report.neighbours))
        rounds.append(
            GreedyRound(
                round_index=round_index,
                chosen=report.chosen,
                weight_estimate=report.weight_estimate,
                estimated_cost=report.cost,
                candidates_evaluated=size,
            )
        )
    return LearnResult(
        histogram=engine_obj.to_tiling(n),
        priority_histogram=_build_priority_log(n, trace),
        params=params,
        rounds=rounds,
        method=method,
        num_candidates=size,
        samples_used=params.total_samples,
        filled_histogram=engine_obj.to_tiling(n, fill_gaps=True),
    )


def learn_from_samples(
    samples: GreedySamples,
    n: int,
    k: int,
    epsilon: float,
    *,
    params: GreedyParams,
    method: str = "fast",
    engine: str = "incremental",
    max_candidates: int | None = None,
    rng: int | None | np.random.Generator = None,
    compiled: CompiledGreedySketches | None = None,
    executor: "object | None" = None,
) -> LearnResult:
    """Run the greedy rounds on already-drawn samples (no source access).

    This is the pure algorithmic half of :func:`learn_histogram`: given
    ``samples`` whose sizes match ``params`` it deterministically produces
    the same :class:`LearnResult` the one-shot entry point would.  Pass
    ``compiled`` (from :func:`compile_greedy_sketches` over the same
    samples) to skip the grid/prefix compilation.

    ``engine`` selects ``"incremental"`` (dirty-region rescoring, the
    default), ``"full"`` (rescore every candidate every round — the
    reference path the equivalence tests compare against), or
    ``"lockstep"`` (cached per-grid-point score terms with dirty-span
    refresh, the engine :class:`repro.api.HistogramFleet` batches across
    members — see :mod:`repro.core.lockstep`); all three are
    byte-identical by construction.

    ``executor`` (a :class:`repro.api.ParallelExecutor`) is forwarded to
    the compile step and, on the lockstep route, to the rescore fan —
    results never depend on it.
    """
    if method not in _METHODS:
        raise InvalidParameterError(f"method must be one of {_METHODS}, got {method!r}")
    if engine not in _ENGINES:
        raise InvalidParameterError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if not samples.matches(params):
        raise InvalidParameterError(
            "sample array sizes do not match params "
            f"(weight {samples.weight_samples.shape[0]} vs "
            f"{params.weight_sample_size}, "
            f"{len(samples.collision_sets)} collision sets vs "
            f"{params.collision_sets})"
        )
    if compiled is None:
        compiled = compile_greedy_sketches(
            samples,
            n,
            method=method,
            max_candidates=max_candidates,
            rng=rng,
            executor=executor,
        )
    if engine == "lockstep":
        from repro.core.lockstep import LockstepRun, lockstep_learn

        run = LockstepRun(compiled=compiled, params=params, method=method, n=n)
        return lockstep_learn([run], executor=executor)[0]
    engine_obj = _GreedyEngine(
        compiled.candidates,
        compiled.weight_prefix,
        compiled.weight_set.size,
        compiled.pair_prefix_cols,
        compiled.pairs_per_set,
        compiled.self_costs,
        incremental=(engine == "incremental"),
    )
    reports = [engine_obj.run_round() for _ in range(params.rounds)]
    return _package_result(engine_obj, reports, n, params, method)


def learn_histogram(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    *,
    method: str = "fast",
    engine: str = "incremental",
    scale: float = 1.0,
    params: GreedyParams | None = None,
    max_candidates: int | None = None,
    rng: int | None | np.random.Generator = None,
) -> LearnResult:
    """Learn a near-optimal histogram from samples (Theorems 1 / 2).

    .. deprecated:: 1.0
        One-shot composition of :func:`draw_greedy_samples` and
        :func:`learn_from_samples`, kept as the PR-1 seed-compat shim —
        a fresh :class:`repro.api.HistogramSession`'s first ``learn`` is
        seed-for-seed identical and reuses its draw for every later
        operation.  Calling this emits a :class:`DeprecationWarning`.

    Parameters
    ----------
    source:
        Anything satisfying :class:`repro.api.SampleSource` — typically a
        :class:`repro.distributions.DiscreteDistribution` (including
        :class:`~repro.distributions.EmpiricalDistribution` over a data
        column).
    n:
        Domain size.
    k:
        Histogram budget: the guarantee is relative to the best tiling
        k-histogram ``H*``.
    epsilon:
        Additive accuracy: ``||p - H||_2^2 <= ||p - H*||_2^2 + 5 eps``
        for ``method="exhaustive"`` (Theorem 1), ``+ 8 eps`` for
        ``method="fast"`` (Theorem 2), at ``scale = 1``.
    method:
        ``"exhaustive"`` scores all ``C(n, 2)`` intervals per round
        (Algorithm 1); ``"fast"`` scores only intervals with endpoints in
        the sample-derived set ``T'`` (Theorem 2).
    engine:
        ``"incremental"`` (default) rescores only the dirty region each
        round; ``"full"`` rescores everything — same results, kept for
        the equivalence tests.
    scale:
        Multiplier on the paper's sample sizes (see
        :mod:`repro.core.params`).
    params:
        Explicit sample sizes, overriding the paper formulas.
    max_candidates:
        Optional cap on the candidate count (uniform subsample; a
        documented deviation for very large inputs).
    rng:
        Seed or generator.

    Returns
    -------
    LearnResult
        The learned tiling histogram plus the paper's priority
        representation and a per-round trace.
    """
    warn_one_shot_shim("learn_histogram", "repro.api.HistogramSession.learn")
    if method not in _METHODS:
        raise InvalidParameterError(f"method must be one of {_METHODS}, got {method!r}")
    if params is None:
        params = GreedyParams.from_paper(n, k, epsilon, scale=scale)
    generator = as_rng(rng)
    samples = draw_greedy_samples(source, params, generator)
    return learn_from_samples(
        samples,
        n,
        k,
        epsilon,
        params=params,
        method=method,
        engine=engine,
        max_candidates=max_candidates,
        rng=generator,
    )
