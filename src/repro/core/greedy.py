"""The greedy priority-histogram learner (Algorithm 1 / Theorem 2).

The algorithm draws

* one weight sample ``S`` of size ``ell`` giving ``y_I = |S_I| / ell``,
* ``r`` collision sets of size ``m`` giving
  ``z_I = median_i coll(S^i_I) / C(m, 2)`` (the absolute second-moment
  estimator of Lemma 1),

and runs ``q = k ln(1/eps)`` rounds.  Each round scores every candidate
interval ``J`` by the estimated squared-l2 cost of the histogram obtained
by painting ``J`` (with value ``y_J / |J|``) over the current one, then
commits the argmin.

Two faithfulness details (README.md, "Design notes"):

* the cost ``c_J`` sums ``z_I - y_I^2 / |I|`` over *all* segments of the
  flattened result, counting never-covered gaps as zero-valued pieces
  (``cost = z_I``), which is what makes costs comparable across ``J``;
* painting ``J`` truncates at most two existing pieces; their remainders
  are re-added with *re-estimated* weights (Algorithm 1's ``I_L, I_R``
  recomputation), so every visible piece always carries the weight
  estimate of its visible extent.  The engine therefore keeps the state
  eagerly flattened and reconstructs the paper's priority log alongside.

Candidate scoring is vectorised: all candidate endpoints live on a fixed
grid whose prefix sums (hit counts per sample set, pair counts per
collision set) are compiled once; scoring a round is a constant number of
gathers over the candidate arrays plus one median across the ``r`` sets.

The module is split into three layers so samples can be reused across
calls (see :class:`repro.api.HistogramSession`):

* :func:`draw_greedy_samples` — the only part that touches the source;
* :func:`compile_greedy_sketches` — candidate grid + prefix compilation;
* :func:`learn_from_samples` — the pure algorithm over those inputs.

:func:`learn_histogram` is the classic one-shot composition of the three.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import (
    CandidateSet,
    all_interval_candidates,
    sample_endpoint_candidates,
)
from repro.core.params import GreedyParams
from repro.core.results import GreedyRound, LearnResult
from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram
from repro.utils.prefix import pairs_count
from repro.utils.rng import as_rng

_METHODS = ("fast", "exhaustive")


@dataclass
class _Segment:
    """One piece of the eagerly flattened state, in grid-index space."""

    lo: int  # grid index of the left endpoint
    hi: int  # grid index of the right endpoint
    assigned: bool  # False = never-covered gap (value 0)


class _GreedyEngine:
    """Vectorised implementation of the greedy rounds."""

    def __init__(
        self,
        candidates: CandidateSet,
        weight_prefix: np.ndarray,
        weight_total: int,
        pair_prefixes: np.ndarray,
        pairs_per_set: float,
        chunk_size: int = 200_000,
    ) -> None:
        self._cands = candidates
        self._grid = candidates.grid
        self._wprefix = weight_prefix.astype(np.float64)
        self._wtotal = float(weight_total)
        self._pprefixes = pair_prefixes.astype(np.float64)  # (r, G)
        self._pairs_per_set = float(pairs_per_set)
        self._chunk = int(chunk_size)
        self._segments: list[_Segment] = [
            _Segment(0, self._grid.size - 1, assigned=False)
        ]

    # -------------------------------------------------------------- #
    # estimate queries (grid-index space, vectorised)
    # -------------------------------------------------------------- #

    def _y(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Weight estimates ``y`` over ``[grid[lo], grid[hi])``."""
        return (self._wprefix[hi] - self._wprefix[lo]) / self._wtotal

    def _z(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Median-of-r absolute second-moment estimates ``z``."""
        per_set = (self._pprefixes[:, hi] - self._pprefixes[:, lo]) / self._pairs_per_set
        return np.median(per_set, axis=0)

    def _piece_cost(
        self, lo: np.ndarray, hi: np.ndarray, assigned: np.ndarray
    ) -> np.ndarray:
        """``z_I - y_I^2 / |I|`` for assigned pieces, ``z_I`` for gaps."""
        lo = np.asarray(lo)
        hi = np.asarray(hi)
        lengths = (self._grid[hi] - self._grid[lo]).astype(np.float64)
        cost = self._z(lo, hi)
        y = self._y(lo, hi)
        fitted = cost - y * y / np.maximum(lengths, 1.0)
        return np.where(np.asarray(assigned), fitted, cost)

    # -------------------------------------------------------------- #
    # one greedy round
    # -------------------------------------------------------------- #

    def run_round(self) -> tuple[int, float, float]:
        """Score all candidates; commit the argmin.

        Returns ``(candidate_index, cost, weight_estimate_of_chosen)``.
        """
        seg_lo = np.array([s.lo for s in self._segments], dtype=np.int64)
        seg_hi = np.array([s.hi for s in self._segments], dtype=np.int64)
        seg_assigned = np.array([s.assigned for s in self._segments])
        seg_cost = self._piece_cost(seg_lo, seg_hi, seg_assigned)
        cost_prefix = np.concatenate(([0.0], np.cumsum(seg_cost)))
        total = float(cost_prefix[-1])
        seg_start_points = self._grid[seg_lo]

        best_cost = np.inf
        best_index = -1
        for chunk_start in range(0, self._cands.size, self._chunk):
            sl = slice(chunk_start, min(chunk_start + self._chunk, self._cands.size))
            cost = self._score_chunk(
                self._cands.lo[sl],
                self._cands.hi[sl],
                seg_lo,
                seg_hi,
                seg_assigned,
                cost_prefix,
                seg_start_points,
                total,
            )
            local = int(np.argmin(cost))
            if cost[local] < best_cost:
                best_cost = float(cost[local])
                best_index = chunk_start + local
        chosen_y = float(
            self._y(
                np.asarray([self._cands.lo[best_index]]),
                np.asarray([self._cands.hi[best_index]]),
            )[0]
        )
        self._apply(best_index)
        return best_index, best_cost, chosen_y

    def _score_chunk(
        self,
        cand_lo: np.ndarray,
        cand_hi: np.ndarray,
        seg_lo: np.ndarray,
        seg_hi: np.ndarray,
        seg_assigned: np.ndarray,
        cost_prefix: np.ndarray,
        seg_start_points: np.ndarray,
        total: float,
    ) -> np.ndarray:
        grid = self._grid
        a_pts = grid[cand_lo]
        b_pts = grid[cand_hi]
        # Segment containing the candidate's first / last covered point.
        ia = np.searchsorted(seg_start_points, a_pts, side="right") - 1
        ib = np.searchsorted(seg_start_points, b_pts - 1, side="right") - 1
        removed = cost_prefix[ib + 1] - cost_prefix[ia]

        # Candidate piece itself.
        cost = total - removed + self._piece_cost(
            cand_lo, cand_hi, np.ones(cand_lo.shape, dtype=bool)
        )

        # Left remainder [segment start, a).
        left_lo = seg_lo[ia]
        has_left = grid[left_lo] < a_pts
        if np.any(has_left):
            lcost = self._piece_cost(left_lo, cand_lo, seg_assigned[ia])
            cost += np.where(has_left, lcost, 0.0)

        # Right remainder [b, segment stop).
        right_hi = seg_hi[ib]
        has_right = grid[right_hi] > b_pts
        if np.any(has_right):
            rcost = self._piece_cost(cand_hi, right_hi, seg_assigned[ib])
            cost += np.where(has_right, rcost, 0.0)
        return cost

    def _apply(self, candidate_index: int) -> None:
        """Commit a candidate: truncate neighbours, insert the new piece."""
        lo = int(self._cands.lo[candidate_index])
        hi = int(self._cands.hi[candidate_index])
        a_pt, b_pt = int(self._grid[lo]), int(self._grid[hi])
        new_segments: list[_Segment] = []
        for seg in self._segments:
            s_pt, e_pt = int(self._grid[seg.lo]), int(self._grid[seg.hi])
            if e_pt <= a_pt or s_pt >= b_pt:
                new_segments.append(seg)
                continue
            if s_pt < a_pt:
                new_segments.append(_Segment(seg.lo, lo, seg.assigned))
            if e_pt > b_pt:
                new_segments.append(_Segment(hi, seg.hi, seg.assigned))
        new_segments.append(_Segment(lo, hi, assigned=True))
        new_segments.sort(key=lambda s: s.lo)
        self._segments = new_segments

    # -------------------------------------------------------------- #
    # output
    # -------------------------------------------------------------- #

    def segments(self) -> list[tuple[Interval, bool]]:
        """Current flattened segments as ``(interval, assigned)`` pairs."""
        return [
            (Interval(int(self._grid[s.lo]), int(self._grid[s.hi])), s.assigned)
            for s in self._segments
        ]

    def to_tiling(self, n: int, fill_gaps: bool = False) -> TilingHistogram:
        """The flattened state as a tiling histogram.

        Assigned pieces get value ``y_I / |I|``.  Gaps get 0 (the paper's
        priority-histogram semantics) unless ``fill_gaps``, in which case
        they too get their weight estimate — an application-oriented
        extension that never hurts the squared error and markedly helps
        range queries over low-density regions (README.md, "Design
        notes").
        """
        boundaries = [0]
        values = []
        for seg in self._segments:
            start, stop = int(self._grid[seg.lo]), int(self._grid[seg.hi])
            boundaries.append(stop)
            if seg.assigned or fill_gaps:
                y = float(self._y(np.asarray([seg.lo]), np.asarray([seg.hi]))[0])
                values.append(y / (stop - start))
            else:
                values.append(0.0)
        return TilingHistogram(n, boundaries, values)


def _build_priority_log(
    n: int, engine_trace: list[tuple[Interval, float, list[tuple[Interval, float]]]]
) -> PriorityHistogram:
    """Reconstruct the paper's priority histogram from the round trace."""
    log = PriorityHistogram(n)
    for chosen, value, neighbours in engine_trace:
        pieces = [(chosen, value)]
        pieces.extend(neighbours)
        log.add_many(pieces)
    return log


@dataclass(frozen=True)
class GreedySamples:
    """The raw samples Algorithm 1 draws, decoupled from the source.

    Attributes
    ----------
    weight_samples:
        The single weight-estimation sample ``S`` (``y_I`` estimates).
    collision_sets:
        The ``r`` independent collision sample sets ``S^1, ..., S^r``
        (``z_I`` estimates).
    """

    weight_samples: np.ndarray
    collision_sets: tuple[np.ndarray, ...]

    def matches(self, params: GreedyParams) -> bool:
        """Whether the array shapes agree with ``params``' sizes."""
        return (
            self.weight_samples.shape[0] == params.weight_sample_size
            and len(self.collision_sets) == params.collision_sets
            and all(
                s.shape[0] == params.collision_set_size for s in self.collision_sets
            )
        )


@dataclass(frozen=True)
class CompiledGreedySketches:
    """Candidate grid plus compiled prefix sketches (the learner's input).

    Produced by :func:`compile_greedy_sketches`; building it is the
    expensive per-draw work (sorting, uniquing, prefix compilation) that
    :class:`repro.api.HistogramSession` caches across calls.
    """

    candidates: CandidateSet
    weight_set: "SampleSet"
    weight_prefix: np.ndarray
    pair_prefixes: np.ndarray


def draw_greedy_samples(
    source: object,
    params: GreedyParams,
    rng: int | None | np.random.Generator = None,
) -> GreedySamples:
    """Draw Algorithm 1's samples from ``source`` (the only sampling step).

    Draw order is part of the public contract: one weight sample of
    ``params.weight_sample_size``, then ``params.collision_sets`` sets of
    ``params.collision_set_size``, all from the same generator — so any
    caller that reproduces this order is seed-for-seed compatible with
    :func:`learn_histogram`.
    """
    generator = as_rng(rng)
    weight_samples = np.asarray(source.sample(params.weight_sample_size, generator))
    collision_sets = tuple(
        np.asarray(source.sample(params.collision_set_size, generator))
        for _ in range(params.collision_sets)
    )
    return GreedySamples(weight_samples, collision_sets)


def compile_greedy_sketches(
    samples: GreedySamples,
    n: int,
    *,
    method: str = "fast",
    max_candidates: int | None = None,
    rng: int | None | np.random.Generator = None,
) -> CompiledGreedySketches:
    """Build the candidate set and compile every sketch onto its grid.

    Pure in the samples (``rng`` is consumed only when ``max_candidates``
    forces a subsample).  The result depends on the sample *contents*,
    so it is reusable by any number of ``(k, epsilon)`` learn calls over
    the same draw.
    """
    if method not in _METHODS:
        raise InvalidParameterError(f"method must be one of {_METHODS}, got {method!r}")
    if method == "fast":
        candidates = sample_endpoint_candidates(samples.weight_samples, n)
    else:
        candidates = all_interval_candidates(n)
    if max_candidates is not None:
        candidates = candidates.subsample(max_candidates, as_rng(rng))

    from repro.samples.collision import CollisionSketch
    from repro.samples.sample_set import SampleSet

    weight_set = SampleSet(samples.weight_samples, n)
    weight_prefix = weight_set.count_prefix_on_grid(candidates.grid)
    pair_prefixes = np.stack(
        [
            CollisionSketch(s, n).prefixes_on_grid(candidates.grid)[1]
            for s in samples.collision_sets
        ]
    )
    return CompiledGreedySketches(candidates, weight_set, weight_prefix, pair_prefixes)


def learn_from_samples(
    samples: GreedySamples,
    n: int,
    k: int,
    epsilon: float,
    *,
    params: GreedyParams,
    method: str = "fast",
    max_candidates: int | None = None,
    rng: int | None | np.random.Generator = None,
    compiled: CompiledGreedySketches | None = None,
) -> LearnResult:
    """Run the greedy rounds on already-drawn samples (no source access).

    This is the pure algorithmic half of :func:`learn_histogram`: given
    ``samples`` whose sizes match ``params`` it deterministically produces
    the same :class:`LearnResult` the one-shot entry point would.  Pass
    ``compiled`` (from :func:`compile_greedy_sketches` over the same
    samples) to skip the grid/prefix compilation.
    """
    if method not in _METHODS:
        raise InvalidParameterError(f"method must be one of {_METHODS}, got {method!r}")
    if not samples.matches(params):
        raise InvalidParameterError(
            "sample array sizes do not match params "
            f"(weight {samples.weight_samples.shape[0]} vs "
            f"{params.weight_sample_size}, "
            f"{len(samples.collision_sets)} collision sets vs "
            f"{params.collision_sets})"
        )
    if compiled is None:
        compiled = compile_greedy_sketches(
            samples, n, method=method, max_candidates=max_candidates, rng=rng
        )
    candidates = compiled.candidates
    weight_set = compiled.weight_set
    engine = _GreedyEngine(
        candidates,
        compiled.weight_prefix,
        params.weight_sample_size,
        compiled.pair_prefixes,
        pairs_count(params.collision_set_size),
    )

    rounds: list[GreedyRound] = []
    trace: list[tuple[Interval, float, list[tuple[Interval, float]]]] = []
    for round_index in range(params.rounds):
        before = {
            (interval.start, interval.stop)
            for interval, assigned in engine.segments()
            if assigned
        }
        cand_index, cost, y_chosen = engine.run_round()
        chosen = Interval(
            int(candidates.grid[candidates.lo[cand_index]]),
            int(candidates.grid[candidates.hi[cand_index]]),
        )
        # Neighbour pieces re-added by this round (Algorithm 1's I_L, I_R):
        # assigned segments that exist now but did not before, other than
        # the chosen interval itself.
        neighbours: list[tuple[Interval, float]] = []
        for interval, assigned in engine.segments():
            key = (interval.start, interval.stop)
            if not assigned or key in before or interval == chosen:
                continue
            y = weight_set.fraction(interval.start, interval.stop)
            neighbours.append((interval, y / interval.length))
        trace.append((chosen, y_chosen / chosen.length, neighbours))
        rounds.append(
            GreedyRound(
                round_index=round_index,
                chosen=chosen,
                weight_estimate=y_chosen,
                estimated_cost=cost,
                candidates_evaluated=candidates.size,
            )
        )

    return LearnResult(
        histogram=engine.to_tiling(n),
        priority_histogram=_build_priority_log(n, trace),
        params=params,
        rounds=rounds,
        method=method,
        num_candidates=candidates.size,
        samples_used=params.total_samples,
        filled_histogram=engine.to_tiling(n, fill_gaps=True),
    )


def learn_histogram(
    source: object,
    n: int,
    k: int,
    epsilon: float,
    *,
    method: str = "fast",
    scale: float = 1.0,
    params: GreedyParams | None = None,
    max_candidates: int | None = None,
    rng: int | None | np.random.Generator = None,
) -> LearnResult:
    """Learn a near-optimal histogram from samples (Theorems 1 / 2).

    One-shot composition of :func:`draw_greedy_samples` and
    :func:`learn_from_samples`; for answering many ``(k, epsilon)``
    queries over one shared draw, prefer
    :class:`repro.api.HistogramSession`.

    Parameters
    ----------
    source:
        Anything satisfying :class:`repro.api.SampleSource` — typically a
        :class:`repro.distributions.DiscreteDistribution` (including
        :class:`~repro.distributions.EmpiricalDistribution` over a data
        column).
    n:
        Domain size.
    k:
        Histogram budget: the guarantee is relative to the best tiling
        k-histogram ``H*``.
    epsilon:
        Additive accuracy: ``||p - H||_2^2 <= ||p - H*||_2^2 + 5 eps``
        for ``method="exhaustive"`` (Theorem 1), ``+ 8 eps`` for
        ``method="fast"`` (Theorem 2), at ``scale = 1``.
    method:
        ``"exhaustive"`` scores all ``C(n, 2)`` intervals per round
        (Algorithm 1); ``"fast"`` scores only intervals with endpoints in
        the sample-derived set ``T'`` (Theorem 2).
    scale:
        Multiplier on the paper's sample sizes (see
        :mod:`repro.core.params`).
    params:
        Explicit sample sizes, overriding the paper formulas.
    max_candidates:
        Optional cap on the candidate count (uniform subsample; a
        documented deviation for very large inputs).
    rng:
        Seed or generator.

    Returns
    -------
    LearnResult
        The learned tiling histogram plus the paper's priority
        representation and a per-round trace.
    """
    if method not in _METHODS:
        raise InvalidParameterError(f"method must be one of {_METHODS}, got {method!r}")
    if params is None:
        params = GreedyParams.from_paper(n, k, epsilon, scale=scale)
    generator = as_rng(rng)
    samples = draw_greedy_samples(source, params, generator)
    return learn_from_samples(
        samples,
        n,
        k,
        epsilon,
        params=params,
        method=method,
        max_candidates=max_candidates,
        rng=generator,
    )
