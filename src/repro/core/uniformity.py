"""Collision-based uniformity testing ([GR00] / [BFR+10]).

Uniformity is the ``k = 1`` special case of the paper's property: the
uniform distribution is the only tiling 1-histogram with full support.
The classical tester draws ``O(sqrt(n) / eps^2)`` samples and accepts iff
the observed collision probability is close to the uniform level ``1/n``:
an l1 distance of ``eps`` from uniform forces
``||p||_2^2 >= (1 + eps^2) / n`` (Cauchy–Schwarz), so the threshold sits
at ``(1 + eps^2 / 2) / n``.

The T8 experiment compares this specialist against the paper's general
tester at ``k = 1``.

Like the flatness machinery this module is split into a pure verdict
(:func:`uniformity_verdict`), a sketch half
(:func:`test_uniformity_on_sketch` — the whole-domain conditional
collision statistic read off an already-built
:class:`~repro.samples.collision.CollisionSketch`'s prefix arrays), and
the classic draw-and-run composition (:func:`test_uniformity`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.results import UniformityResult
from repro.errors import InsufficientSamplesError, InvalidParameterError
from repro.samples.collision import CollisionSketch
from repro.utils.prefix import pairs_count
from repro.utils.rng import as_rng


def uniformity_sample_size(n: int, epsilon: float, constant: float = 16.0) -> int:
    """``m = constant * sqrt(n) / eps^2`` ([Pan08]-style, tight in n)."""
    if int(n) != n or n <= 0:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(16, math.ceil(constant * math.sqrt(n) / epsilon**2))


def uniformity_verdict(collisions: int, size: int, n: int, epsilon: float) -> UniformityResult:
    """The [GR00] accept/reject decision from a whole-domain pair count."""
    if size < 2:
        raise InsufficientSamplesError(
            f"need >= 2 samples for a collision probability, got {size}"
        )
    statistic = collisions / pairs_count(size)
    threshold = (1.0 + epsilon**2 / 2.0) / n
    return UniformityResult(
        accepted=statistic <= threshold,
        statistic=float(statistic),
        threshold=float(threshold),
        epsilon=epsilon,
        samples_used=size,
        collisions=int(collisions),
    )


def test_uniformity_on_sketch(sketch: CollisionSketch, epsilon: float) -> UniformityResult:
    """Uniformity verdict from an already-built sketch (no source access).

    The statistic is the ``k = 1``, whole-domain special case of the
    flatness machinery: ``coll(S) / C(|S|, 2)`` read off the sketch's
    compiled pair prefix in O(1).  Pure in ``sketch``, so sessions and
    repeated calls share one build.
    """
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return uniformity_verdict(
        sketch.total_collisions, sketch.size, sketch.n, epsilon
    )


def test_uniformity(
    source: object,
    n: int,
    epsilon: float,
    *,
    scale: float = 1.0,
    constant: float = 16.0,
    rng: "int | None | np.random.Generator" = None,
) -> UniformityResult:
    """Accept if ``p`` looks uniform, reject if eps-far in l1.

    Parameters mirror the k-histogram testers; ``constant`` trades
    confidence for samples (16 keeps both error modes well under 1/3 at
    moderate ``n``).
    """
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    size = max(16, math.ceil(scale * uniformity_sample_size(n, epsilon, constant)))
    samples = np.asarray(source.sample(size, as_rng(rng)))
    return test_uniformity_on_sketch(CollisionSketch(samples, n), epsilon)
