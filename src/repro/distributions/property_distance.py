"""Exact distance to the tiling k-histogram property.

The testers of Section 4 distinguish members of the property from
distributions that are epsilon-far in l1 or l2.  Experiments need a
ground-truth oracle for that distance; this module provides it through the
v-optimal dynamic program:

* ``l2``: the DP minimises ``||p - H||_2^2`` over piecewise-constant ``H``
  with ``k`` pieces.  The minimiser assigns every piece its mean, which
  automatically sums to 1 and is non-negative — i.e. it *is* a k-histogram
  distribution — so the DP distance is exact.
* ``l1``: the DP minimises over arbitrary piecewise-constant functions
  (piece medians), which lower-bounds the distance to k-histogram
  *distributions*; the mean-fitted histogram on the optimal partition
  gives an upper bound.  A lower bound above epsilon certifies
  epsilon-farness, which is all the experiments need.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.voptimal import voptimal_cost, voptimal_histogram
from repro.distributions.distances import as_pmf, l1_distance
from repro.errors import InvalidParameterError
from repro.histograms.tiling import TilingHistogram


def distance_to_k_histogram(p: object, k: int, norm: str = "l2") -> float:
    """Distance from ``p`` to the nearest tiling k-histogram.

    For ``norm="l2"`` the value is exact (see module docstring); for
    ``norm="l1"`` it is the certified lower bound.
    """
    pmf = as_pmf(p)
    if norm == "l2":
        return math.sqrt(max(voptimal_cost(pmf, k, norm="l2"), 0.0))
    if norm == "l1":
        return voptimal_cost(pmf, k, norm="l1")
    raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")


def nearest_k_histogram(
    p: object, k: int, norm: str = "l2"
) -> tuple[TilingHistogram, float]:
    """The optimal k-histogram for ``p`` and its distance.

    Returns ``(H*, distance)`` where for l2 the distance is
    ``||p - H*||_2`` (exact) and for l1 it is ``||p - H*||_1`` for the
    median-fitted DP solution (an upper bound on the distance to
    k-histogram functions, matching :func:`distance_to_k_histogram` when
    the optimum partition is unique).
    """
    pmf = as_pmf(p)
    hist = voptimal_histogram(pmf, k, norm=norm)
    if norm == "l2":
        diff = pmf - hist.to_pmf()
        return hist, float(np.linalg.norm(diff))
    return hist, l1_distance(pmf, hist.to_pmf())


def is_k_histogram(p: object, k: int, tol: float = 1e-12) -> bool:
    """Whether ``p`` is (numerically) an exact tiling k-histogram.

    Checked structurally: the pmf has at most ``k`` maximal constant runs.
    """
    pmf = as_pmf(p)
    runs = int(np.count_nonzero(np.abs(np.diff(pmf)) > tol) + 1)
    return runs <= k
