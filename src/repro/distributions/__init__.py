"""Discrete distributions over ``[0, n)`` and everything around them.

This package is the sampling substrate for the paper's algorithms:

* :class:`DiscreteDistribution` — validated pmf with fast inverse-cdf
  sampling and the interval queries (``p(I)``, ``p_I``, second moments)
  the analysis manipulates;
* :mod:`repro.distributions.families` — named distribution families used
  as experiment workloads (YES instances: random tiling k-histograms; NO
  instances: sawtooth, ramps, bumps, ...);
* :mod:`repro.distributions.perturb` — distance-controlled perturbations
  for the testing-gap experiments;
* :mod:`repro.distributions.property_distance` — exact distance to the
  class of tiling k-histograms via the v-optimal DP (the epsilon-far
  certifier);
* :mod:`repro.distributions.empirical` — empirical distributions from
  sample arrays.
"""

from repro.distributions.base import DiscreteDistribution
from repro.distributions.distances import (
    as_pmf,
    l1_distance,
    l2_distance,
    l2_distance_squared,
    linf_distance,
    total_variation,
)
from repro.distributions.empirical import EmpiricalDistribution, empirical_pmf
from repro.distributions.families import (
    dirichlet_random,
    gaussian_mixture,
    geometric,
    linear_ramp,
    random_tiling_histogram,
    sawtooth,
    spikes,
    two_level,
    uniform,
    zipf,
)
from repro.distributions.perturb import mix, perturb_within_pieces
from repro.distributions.property_distance import (
    distance_to_k_histogram,
    is_k_histogram,
    nearest_k_histogram,
)

__all__ = [
    "DiscreteDistribution",
    "EmpiricalDistribution",
    "as_pmf",
    "dirichlet_random",
    "distance_to_k_histogram",
    "empirical_pmf",
    "gaussian_mixture",
    "geometric",
    "is_k_histogram",
    "l1_distance",
    "l2_distance",
    "l2_distance_squared",
    "linear_ramp",
    "linf_distance",
    "mix",
    "nearest_k_histogram",
    "perturb_within_pieces",
    "random_tiling_histogram",
    "sawtooth",
    "spikes",
    "total_variation",
    "two_level",
    "uniform",
    "zipf",
]
