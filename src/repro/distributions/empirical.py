"""Empirical distributions built from sample arrays.

The "data set D" view of the paper's introduction: a database column of
values from ``[0, n)`` induces the distribution ``p = P / ||P||_1``, and
drawing a random row is exactly drawing from ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.errors import InvalidDistributionError


def empirical_pmf(samples: np.ndarray, n: int) -> np.ndarray:
    """The empirical probability vector of ``samples`` over ``[0, n)``."""
    samples = np.asarray(samples)
    if samples.size == 0:
        raise InvalidDistributionError("need at least one sample")
    if np.any((samples < 0) | (samples >= n)):
        raise InvalidDistributionError("samples contain values outside [0, n)")
    counts = np.bincount(samples.astype(np.int64), minlength=n)
    return counts / samples.size


class EmpiricalDistribution(DiscreteDistribution):
    """A :class:`DiscreteDistribution` induced by observed data.

    Keeps the raw counts alongside the normalised pmf, which the
    database-facing modules (selectivity estimation) use for exact answers.
    """

    __slots__ = ("_counts", "_num_samples")

    def __init__(self, samples: np.ndarray, n: int) -> None:
        samples = np.asarray(samples)
        pmf = empirical_pmf(samples, n)
        super().__init__(pmf)
        self._counts = np.bincount(samples.astype(np.int64), minlength=n)
        self._counts.flags.writeable = False
        self._num_samples = int(samples.size)

    @property
    def counts(self) -> np.ndarray:
        """Raw occurrence counts per domain element (read-only)."""
        return self._counts

    @property
    def num_samples(self) -> int:
        """Number of data rows the distribution was built from."""
        return self._num_samples
