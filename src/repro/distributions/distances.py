"""Distances between distributions and histograms.

The paper measures closeness in the ``l1`` and ``l2`` norms of the
difference of probability vectors (Section 2).  All functions here accept
any mix of dense pmf arrays, :class:`DiscreteDistribution`,
:class:`TilingHistogram` and :class:`PriorityHistogram` operands;
:func:`as_pmf` performs the coercion.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.errors import InvalidDistributionError
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram

PmfLike = "np.ndarray | DiscreteDistribution | TilingHistogram | PriorityHistogram"


def as_pmf(obj: object) -> np.ndarray:
    """Coerce a distribution-like object to a dense float64 vector."""
    if isinstance(obj, DiscreteDistribution):
        return obj.pmf
    if isinstance(obj, (TilingHistogram, PriorityHistogram)):
        return obj.to_pmf()
    arr = np.asarray(obj, dtype=np.float64)
    if arr.ndim != 1:
        raise InvalidDistributionError(
            f"expected a 1-d probability vector, got shape {arr.shape}"
        )
    return arr


def _diff(p: object, q: object) -> np.ndarray:
    pv, qv = as_pmf(p), as_pmf(q)
    if pv.shape != qv.shape:
        raise InvalidDistributionError(
            f"domain mismatch: {pv.shape[0]} vs {qv.shape[0]}"
        )
    return pv - qv


def l1_distance(p: object, q: object) -> float:
    """``||p - q||_1 = sum_i |p_i - q_i|``."""
    return float(np.abs(_diff(p, q)).sum())


def l2_distance(p: object, q: object) -> float:
    """``||p - q||_2 = sqrt(sum_i (p_i - q_i)^2)``."""
    return float(np.linalg.norm(_diff(p, q)))


def l2_distance_squared(p: object, q: object) -> float:
    """``||p - q||_2^2`` (the quantity Theorems 1 and 2 bound)."""
    diff = _diff(p, q)
    return float(np.dot(diff, diff))


def linf_distance(p: object, q: object) -> float:
    """``max_i |p_i - q_i|``."""
    return float(np.abs(_diff(p, q)).max())


def total_variation(p: object, q: object) -> float:
    """Total-variation distance, ``||p - q||_1 / 2``."""
    return 0.5 * l1_distance(p, q)
