"""The :class:`DiscreteDistribution` type.

A validated probability vector over the domain ``[0, n)`` with

* fast inverse-cdf sampling (the only access the paper's algorithms get),
* the interval functionals the analysis uses throughout: the weight
  ``p(I)``, the conditional distribution ``p_I``, the second moment
  ``sum_{i in I} p_i^2`` and the conditional collision probability
  ``||p_I||_2^2``,
* the paper's notion of *flat* intervals (Section 2): ``I`` is flat when
  ``p_I`` is uniform or ``p(I) = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidDistributionError
from repro.histograms.intervals import Interval
from repro.utils.rng import as_rng


class DiscreteDistribution:
    """An explicit discrete distribution over ``[0, n)``.

    Parameters
    ----------
    pmf:
        Non-negative vector summing to 1 within ``atol`` (it is then
        renormalised exactly).
    atol:
        Validation tolerance on the total mass.
    """

    __slots__ = ("_pmf", "_cdf", "_sq_prefix")

    def __init__(self, pmf: np.ndarray, atol: float = 1e-8) -> None:
        pmf = np.asarray(pmf, dtype=np.float64)
        if pmf.ndim != 1 or pmf.shape[0] == 0:
            raise InvalidDistributionError(
                f"pmf must be a non-empty 1-d array, got shape {pmf.shape}"
            )
        if not np.all(np.isfinite(pmf)):
            raise InvalidDistributionError("pmf entries must be finite")
        if np.any(pmf < 0):
            raise InvalidDistributionError("pmf entries must be non-negative")
        total = pmf.sum()
        if abs(total - 1.0) > atol:
            raise InvalidDistributionError(
                f"pmf must sum to 1 (+- {atol}), got {total}"
            )
        self._pmf = pmf / total
        self._pmf.flags.writeable = False
        self._cdf: np.ndarray | None = None
        self._sq_prefix: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_weights(cls, weights: np.ndarray) -> "DiscreteDistribution":
        """Normalise an arbitrary non-negative weight vector."""
        weights = np.asarray(weights, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise InvalidDistributionError("weights must have positive total mass")
        return cls(weights / total)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Domain size."""
        return self._pmf.shape[0]

    @property
    def pmf(self) -> np.ndarray:
        """The probability vector (read-only)."""
        return self._pmf

    @property
    def cdf(self) -> np.ndarray:
        """Cumulative distribution, ``cdf[i] = p([0, i])`` (cached)."""
        if self._cdf is None:
            self._cdf = np.cumsum(self._pmf)
            self._cdf[-1] = 1.0
            self._cdf.flags.writeable = False
        return self._cdf

    @property
    def _squared_prefix(self) -> np.ndarray:
        if self._sq_prefix is None:
            self._sq_prefix = np.concatenate(([0.0], np.cumsum(self._pmf**2)))
            self._sq_prefix.flags.writeable = False
        return self._sq_prefix

    def support_size(self) -> int:
        """Number of elements with positive probability."""
        return int(np.count_nonzero(self._pmf))

    # ------------------------------------------------------------------ #
    # interval functionals
    # ------------------------------------------------------------------ #

    def _check_interval(self, interval: Interval) -> None:
        if interval.stop > self.n:
            raise InvalidDistributionError(
                f"interval {interval} exceeds the domain [0, {self.n})"
            )

    def weight(self, interval: Interval) -> float:
        """``p(I) = sum_{i in I} p_i`` (paper Section 2)."""
        self._check_interval(interval)
        low = self.cdf[interval.start - 1] if interval.start > 0 else 0.0
        return float(self.cdf[interval.stop - 1] - low)

    def second_moment(self, interval: Interval | None = None) -> float:
        """``sum_{i in I} p_i^2`` (the quantity Lemma 1 estimates).

        With ``interval=None`` this is ``||p||_2^2`` over the whole domain.
        """
        if interval is None:
            interval = Interval(0, self.n)
        self._check_interval(interval)
        prefix = self._squared_prefix
        return float(prefix[interval.stop] - prefix[interval.start])

    def conditional(self, interval: Interval) -> "DiscreteDistribution":
        """The conditional distribution ``p_I`` (paper Section 2).

        Raises :class:`InvalidDistributionError` when ``p(I) = 0``.
        """
        self._check_interval(interval)
        mass = self.weight(interval)
        if mass <= 0:
            raise InvalidDistributionError(
                f"cannot condition on zero-weight interval {interval}"
            )
        sub = np.zeros(interval.length, dtype=np.float64)
        sub[:] = self._pmf[interval.start : interval.stop] / mass
        return DiscreteDistribution(sub)

    def conditional_collision_probability(self, interval: Interval) -> float:
        """``||p_I||_2^2``, the value the flatness tests estimate.

        Defined as 0 when ``p(I) = 0`` (such intervals are flat by
        definition and never reach a collision estimate in the paper's
        algorithms).
        """
        self._check_interval(interval)
        mass = self.weight(interval)
        if mass <= 0:
            return 0.0
        return self.second_moment(interval) / (mass * mass)

    def is_flat(self, interval: Interval, rtol: float = 1e-9) -> bool:
        """Paper Section 2: ``I`` is flat iff ``p_I`` is uniform or
        ``p(I) = 0``."""
        self._check_interval(interval)
        mass = self.weight(interval)
        if mass <= 0:
            return True
        segment = self._pmf[interval.start : interval.stop]
        level = mass / interval.length
        return bool(np.allclose(segment, level, rtol=rtol, atol=1e-15))

    def min_histogram_pieces(self) -> int:
        """The smallest ``k`` such that ``p`` is a tiling k-histogram.

        This is simply the number of maximal constant runs of the pmf.
        """
        return int(np.count_nonzero(np.diff(self._pmf)) + 1)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def sample(
        self, size: int, rng: int | None | np.random.Generator = None
    ) -> np.ndarray:
        """Draw ``size`` i.i.d. samples (int64 array) by inverse cdf."""
        if size < 0:
            raise InvalidDistributionError(f"sample size must be >= 0, got {size}")
        generator = as_rng(rng)
        uniforms = generator.random(size)
        return np.searchsorted(self.cdf, uniforms, side="right").astype(np.int64)

    def sample_sets(
        self,
        num_sets: int,
        set_size: int,
        rng: int | None | np.random.Generator = None,
    ) -> list[np.ndarray]:
        """Draw ``num_sets`` independent sample arrays of ``set_size`` each.

        This is the ``S^1, ..., S^r`` pattern used by Algorithm 1 (step 3)
        and Algorithm 2 (step 1).
        """
        generator = as_rng(rng)
        return [self.sample(set_size, generator) for _ in range(num_sets)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return np.array_equal(self._pmf, other._pmf)

    def __hash__(self) -> int:
        return hash(self._pmf.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiscreteDistribution(n={self.n})"
