"""Distance-controlled perturbations of distributions.

Used by the testing-gap experiment (F3): starting from an exact tiling
k-histogram, :func:`perturb_within_pieces` introduces fine zigzag
structure of tunable amplitude while preserving every piece's total mass,
so the l1 distance from the original is exactly the amplitude (and the
distance to the k-histogram property grows with it).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.errors import InvalidParameterError


def perturb_within_pieces(
    dist: DiscreteDistribution, amplitude: float
) -> DiscreteDistribution:
    """Multiply the pmf by an alternating ``1 +- amplitude`` pattern.

    Within every run of consecutive elements the signs alternate, so mass
    moves only between neighbours; the resulting l1 distance from ``dist``
    is ``amplitude * (mass on perturbable positions) <= amplitude``.
    ``amplitude = 0`` returns a distribution equal to the input.
    """
    if not 0.0 <= amplitude < 1.0:
        raise InvalidParameterError(
            f"amplitude must be in [0, 1), got {amplitude}"
        )
    pmf = dist.pmf
    n = pmf.shape[0]
    # Pair up neighbours (2i, 2i+1) and transfer amplitude * min mass so the
    # total stays exactly 1 even when paired masses differ.
    perturbed = pmf.copy()
    evens = np.arange(0, n - 1, 2)
    odds = evens + 1
    transfer = amplitude * np.minimum(pmf[evens], pmf[odds])
    perturbed[evens] += transfer
    perturbed[odds] -= transfer
    return DiscreteDistribution(perturbed)


def mix(
    p: DiscreteDistribution, q: DiscreteDistribution, weight_q: float
) -> DiscreteDistribution:
    """The mixture ``(1 - weight_q) * p + weight_q * q``.

    The l1 distance from ``p`` is ``weight_q * ||p - q||_1``, so sweeping
    ``weight_q`` sweeps the distance linearly.
    """
    if not 0.0 <= weight_q <= 1.0:
        raise InvalidParameterError(f"weight_q must be in [0, 1], got {weight_q}")
    if p.n != q.n:
        raise InvalidParameterError(f"domain mismatch: {p.n} vs {q.n}")
    return DiscreteDistribution((1.0 - weight_q) * p.pmf + weight_q * q.pmf)
