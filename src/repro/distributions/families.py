"""Named distribution families used as experiment workloads.

YES-side families (exact tiling k-histograms):

* :func:`uniform` — the 1-histogram;
* :func:`random_tiling_histogram` — random boundaries + Dirichlet masses;
* :func:`two_level` — a heavy band over a light background.

NO-side families (far from coarse histograms, certified by the DP in
:mod:`repro.distributions.property_distance`):

* :func:`sawtooth` — alternating high/low teeth, the canonical far
  instance (fine structure everywhere);
* :func:`linear_ramp` / :func:`geometric` / :func:`zipf` — monotone
  densities with no flat pieces;
* :func:`gaussian_mixture` — smooth bumps;
* :func:`dirichlet_random` — unstructured noise.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.errors import InvalidParameterError
from repro.utils.rng import as_rng


def _check_n(n: int) -> int:
    if int(n) != n or n <= 0:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    return int(n)


def uniform(n: int) -> DiscreteDistribution:
    """The uniform distribution over ``[0, n)`` (a tiling 1-histogram)."""
    n = _check_n(n)
    return DiscreteDistribution(np.full(n, 1.0 / n))


def random_tiling_histogram(
    n: int,
    k: int,
    rng: int | None | np.random.Generator = None,
    alpha: float = 1.0,
    min_piece: int = 1,
) -> DiscreteDistribution:
    """A random tiling k-histogram distribution (YES instance).

    ``k - 1`` internal boundaries are drawn uniformly without replacement
    (respecting ``min_piece``), and piece masses are Dirichlet(``alpha``).
    The result is an exact tiling k-histogram by construction.
    """
    n = _check_n(n)
    if not 1 <= k <= n // max(min_piece, 1):
        raise InvalidParameterError(
            f"k={k} does not fit domain n={n} with min_piece={min_piece}"
        )
    generator = as_rng(rng)
    if min_piece == 1:
        internal = generator.choice(np.arange(1, n), size=k - 1, replace=False)
    else:
        # Choose piece lengths >= min_piece via a random composition.
        extra = generator.multinomial(n - k * min_piece, np.full(k, 1.0 / k))
        lengths = extra + min_piece
        internal = np.cumsum(lengths)[:-1]
    boundaries = np.concatenate(([0], np.sort(internal), [n]))
    masses = generator.dirichlet(np.full(k, alpha))
    pmf = np.repeat(masses / np.diff(boundaries), np.diff(boundaries))
    return DiscreteDistribution(pmf)


def two_level(
    n: int, heavy_start: int = 0, heavy_length: int | None = None, heavy_mass: float = 0.8
) -> DiscreteDistribution:
    """A 3-piece histogram: one heavy band inside a light background.

    The heavy band ``[heavy_start, heavy_start + heavy_length)`` carries
    ``heavy_mass``; the rest of the domain shares the remainder uniformly.
    """
    n = _check_n(n)
    if heavy_length is None:
        heavy_length = max(n // 8, 1)
    if not 0 <= heavy_start < heavy_start + heavy_length <= n:
        raise InvalidParameterError("heavy band must fit inside the domain")
    if not 0.0 < heavy_mass < 1.0:
        raise InvalidParameterError(f"heavy_mass must be in (0, 1), got {heavy_mass}")
    pmf = np.full(n, (1.0 - heavy_mass) / max(n - heavy_length, 1))
    if n == heavy_length:
        pmf[:] = 0.0
    pmf[heavy_start : heavy_start + heavy_length] = heavy_mass / heavy_length
    return DiscreteDistribution.from_weights(pmf)


def zipf(n: int, exponent: float = 1.0) -> DiscreteDistribution:
    """Zipf / power-law distribution, ``p_i ~ (i + 1)^-exponent``."""
    n = _check_n(n)
    if exponent < 0:
        raise InvalidParameterError(f"exponent must be >= 0, got {exponent}")
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-exponent)
    return DiscreteDistribution.from_weights(weights)


def geometric(n: int, ratio: float = 0.99) -> DiscreteDistribution:
    """Truncated geometric decay, ``p_i ~ ratio^i``."""
    n = _check_n(n)
    if not 0.0 < ratio <= 1.0:
        raise InvalidParameterError(f"ratio must be in (0, 1], got {ratio}")
    weights = ratio ** np.arange(n, dtype=np.float64)
    return DiscreteDistribution.from_weights(weights)


def linear_ramp(n: int) -> DiscreteDistribution:
    """Linearly increasing density, ``p_i ~ i + 1`` (no flat piece)."""
    n = _check_n(n)
    return DiscreteDistribution.from_weights(np.arange(1, n + 1, dtype=np.float64))


def sawtooth(
    n: int, num_teeth: int | None = None, low: float = 0.25, high: float = 1.75
) -> DiscreteDistribution:
    """Alternating high/low teeth — far from every coarse histogram.

    ``num_teeth`` defaults to ``n / 2`` (period-2 zigzag), giving fine
    structure everywhere so that any k-histogram with ``k << n`` must pay
    on almost every piece.  ``low``/``high`` are relative levels (their
    mean is renormalised away).
    """
    n = _check_n(n)
    if num_teeth is None:
        num_teeth = n // 2
    if num_teeth < 1 or 2 * num_teeth > n:
        raise InvalidParameterError(
            f"num_teeth must be in [1, n/2], got {num_teeth} for n={n}"
        )
    if not 0 <= low < high:
        raise InvalidParameterError("need 0 <= low < high")
    period = n / (2.0 * num_teeth)
    phase = (np.arange(n) // period).astype(np.int64) % 2
    weights = np.where(phase == 0, high, low)
    return DiscreteDistribution.from_weights(weights)


def gaussian_mixture(
    n: int,
    centers: "list[float] | None" = None,
    widths: "list[float] | None" = None,
    weights: "list[float] | None" = None,
) -> DiscreteDistribution:
    """Discretised Gaussian bumps (smooth, no flat pieces).

    Defaults to two bumps at 30% and 70% of the domain with width ``n/16``.
    """
    n = _check_n(n)
    if centers is None:
        centers = [0.3 * n, 0.7 * n]
    if widths is None:
        widths = [n / 16.0] * len(centers)
    if weights is None:
        weights = [1.0] * len(centers)
    if not len(centers) == len(widths) == len(weights):
        raise InvalidParameterError("centers, widths, weights must have equal length")
    grid = np.arange(n, dtype=np.float64)
    pmf = np.zeros(n, dtype=np.float64)
    for center, width, weight in zip(centers, widths, weights):
        if width <= 0 or weight < 0:
            raise InvalidParameterError("widths must be > 0 and weights >= 0")
        pmf += weight * np.exp(-0.5 * ((grid - center) / width) ** 2)
    return DiscreteDistribution.from_weights(pmf)


def spikes(
    n: int, num_spikes: int, background_mass: float = 0.0
) -> DiscreteDistribution:
    """Evenly spaced point masses — the canonical *l2-far* NO instance.

    ``num_spikes`` singletons share ``1 - background_mass``; the rest of
    the domain shares ``background_mass`` uniformly.  With
    ``j = num_spikes >> k`` isolated unit-width spikes, any tiling
    k-histogram must miss most of them, leaving
    ``||p - H||_2 ~ sqrt((j - k)) / j`` — order ``1 / sqrt(j)``, far in
    l2 even though the l1 distance view would call it close.  (Plain
    zigzags are *never* l2-far for constant eps: their deviations are
    ``O(1/n)`` per element, so ``||p - H||_2 = O(1/sqrt(n))``.)
    """
    n = _check_n(n)
    if not 1 <= num_spikes <= n:
        raise InvalidParameterError(
            f"num_spikes must be in [1, n], got {num_spikes}"
        )
    if not 0.0 <= background_mass < 1.0:
        raise InvalidParameterError(
            f"background_mass must be in [0, 1), got {background_mass}"
        )
    positions = np.linspace(0, n - 1, num_spikes).astype(np.int64)
    positions = np.unique(positions)
    pmf = np.full(n, background_mass / n, dtype=np.float64)
    pmf[positions] += (1.0 - background_mass) / positions.size
    return DiscreteDistribution.from_weights(pmf)


def dirichlet_random(
    n: int, alpha: float = 1.0, rng: int | None | np.random.Generator = None
) -> DiscreteDistribution:
    """A fully random distribution, ``Dirichlet(alpha, ..., alpha)``."""
    n = _check_n(n)
    if alpha <= 0:
        raise InvalidParameterError(f"alpha must be > 0, got {alpha}")
    generator = as_rng(rng)
    return DiscreteDistribution(generator.dirichlet(np.full(n, alpha)))
