"""Interval collision counting.

``coll(S_I) = sum_{i in I} C(occ(i, S_I), 2)`` counts sample pairs that
collide inside ``I`` (paper Section 2).  Because the count decomposes over
domain elements, a prefix sum over the distinct sample values answers any
interval query with two binary searches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.prefix import pairs_count, prefix_sums


def collision_count(samples: np.ndarray) -> int:
    """``coll(S)`` of a raw sample array (naive reference form)."""
    samples = np.asarray(samples)
    if samples.size == 0:
        return 0
    _, counts = np.unique(samples, return_counts=True)
    return int(pairs_count(counts).sum())


class CollisionSketch:
    """Prefix structure answering ``coll(S_I)`` and ``|S_I|`` per interval.

    Built once in ``O(m log m)`` from a sample array; every interval query
    afterwards costs two binary searches (or one gather when the query
    points were compiled with :meth:`prefixes_on_grid`).
    """

    __slots__ = ("_values", "_count_prefix", "_pairs_prefix", "_size", "_n")

    def __init__(self, samples: np.ndarray, n: int) -> None:
        samples = np.asarray(samples, dtype=np.int64)
        if samples.ndim != 1:
            raise InvalidParameterError(
                f"samples must be a 1-d array, got shape {samples.shape}"
            )
        if samples.size and (samples.min() < 0 or samples.max() >= n):
            raise InvalidParameterError("samples contain values outside [0, n)")
        values, counts = np.unique(samples, return_counts=True)
        self._values = values
        self._count_prefix = prefix_sums(counts)
        self._pairs_prefix = prefix_sums(pairs_count(counts))
        self._size = int(samples.size)
        self._n = int(n)

    @property
    def size(self) -> int:
        """Total number of samples ``|S|``."""
        return self._size

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    @property
    def total_collisions(self) -> int:
        """``coll(S)`` over the whole domain."""
        return int(self._pairs_prefix[-1])

    def _locate(self, points: int | np.ndarray) -> np.ndarray:
        return np.searchsorted(self._values, points, side="left")

    def count(
        self, starts: int | np.ndarray, stops: int | np.ndarray
    ) -> int | np.ndarray:
        """``|S_I|`` over half-open ``[starts, stops)`` (vectorised)."""
        result = self._count_prefix[self._locate(stops)] - self._count_prefix[
            self._locate(starts)
        ]
        if np.isscalar(starts) and np.isscalar(stops):
            return int(result)
        return result

    def collisions(
        self, starts: int | np.ndarray, stops: int | np.ndarray
    ) -> int | np.ndarray:
        """``coll(S_I)`` over half-open ``[starts, stops)`` (vectorised)."""
        result = self._pairs_prefix[self._locate(stops)] - self._pairs_prefix[
            self._locate(starts)
        ]
        if np.isscalar(starts) and np.isscalar(stops):
            return int(result)
        return result

    def prefixes_on_grid(self, grid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Compile prefix arrays for a fixed sorted point grid.

        Returns ``(count_prefix, pairs_prefix)`` with one entry per grid
        point; the interval ``[grid[i], grid[j])`` then has
        ``count = count_prefix[j] - count_prefix[i]`` and
        ``coll = pairs_prefix[j] - pairs_prefix[i]`` — pure gathers, no
        searches.  The gathered arrays are already fresh, so the dtype
        normalisation is copy-free when the prefixes are int64 (the
        common case on the compile path).
        """
        idx = self._locate(np.asarray(grid))
        return (
            self._count_prefix[idx].astype(np.int64, copy=False),
            self._pairs_prefix[idx].astype(np.int64, copy=False),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CollisionSketch(size={self._size}, n={self._n})"


def batched_interval_prefixes(
    sample_sets: "list[np.ndarray] | tuple[np.ndarray, ...]",
    n: int,
    grid: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Hit-count and pair-count prefixes of ``r`` sets on one grid, batched.

    Equivalent to stacking ``CollisionSketch(s, n).prefixes_on_grid(grid)``
    for each set, but built in a *single* vectorised pass: every set is
    offset into its own ``[i * n, (i + 1) * n)`` stripe of a shared value
    space, the concatenation is sorted and uniqued once, and all ``r * G``
    grid queries resolve with one ``searchsorted``.  This is the compile
    path shared by the greedy learner and the tester engine — ``r``
    sequential sketch constructions became one sort.

    Returns ``(count_rows, pair_rows)``, two C-contiguous ``(r, G)`` int64
    matrices whose row ``i`` holds set ``i``'s per-grid-point prefixes of
    ``|S^i_I|`` and ``coll(S^i_I)`` respectively.
    """
    sets = [np.asarray(s, dtype=np.int64) for s in sample_sets]
    grid = np.asarray(grid, dtype=np.int64)
    if grid.size and (grid.min() < 0 or grid.max() > n):
        # A query point past n would spill into the next set's stripe
        # and silently count its pairs; reject rather than mis-answer.
        raise InvalidParameterError("grid points must lie in [0, n]")
    if not sets:
        empty = np.zeros((0, grid.size), dtype=np.int64)
        return empty, empty.copy()
    for s in sets:
        if s.ndim != 1:
            raise InvalidParameterError(
                f"samples must be 1-d arrays, got shape {s.shape}"
            )
        if s.size and (s.min() < 0 or s.max() >= n):
            raise InvalidParameterError("samples contain values outside [0, n)")
    offsets = np.arange(len(sets), dtype=np.int64) * n
    flat = np.concatenate([s + off for s, off in zip(sets, offsets)])
    flat.sort()
    if flat.size:
        starts = np.nonzero(np.concatenate(([True], flat[1:] != flat[:-1])))[0]
        values = flat[starts]
        counts = np.diff(np.concatenate((starts, [flat.size])))
    else:
        values = flat
        counts = np.zeros(0, dtype=np.int64)
    count_prefix = prefix_sums(counts)
    pair_prefix = prefix_sums(pairs_count(counts))
    queries = offsets[:, None] + grid[None, :]
    idx = np.searchsorted(values, queries.ravel()).reshape(len(sets), grid.size)
    base_idx = np.searchsorted(values, offsets)
    count_rows = np.ascontiguousarray(count_prefix[idx] - count_prefix[base_idx][:, None])
    pair_rows = np.ascontiguousarray(pair_prefix[idx] - pair_prefix[base_idx][:, None])
    return count_rows, pair_rows


def dense_interval_prefixes(
    sample_sets: "list[np.ndarray] | tuple[np.ndarray, ...]",
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Full-grid hit/pair prefixes of ``r`` sets, built without sorting.

    Returns the same numbers :func:`batched_interval_prefixes` would for
    ``grid = arange(n + 1)`` — two ``(r, n + 1)`` int64 matrices whose
    row ``i`` holds set ``i``'s per-endpoint prefixes of ``|S^i_I|`` and
    ``coll(S^i_I)`` — but by counting (:func:`numpy.bincount` per set,
    touching each sample exactly once) followed by row cumsums.
    Counting is O(r (m + n)) versus the sort's O(r m log m), which is
    the fleet compiler's regime: many moderate sets over one shared
    domain, every endpoint needed anyway.  All arithmetic is exact
    integer math, so the two builders are interchangeable bit for bit
    (the conformance tests pin this).
    """
    sets = [np.asarray(s, dtype=np.int64) for s in sample_sets]
    if int(n) != n or n < 1:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    if not sets:
        empty = np.zeros((0, n + 1), dtype=np.int64)
        return empty, empty.copy()
    counts = np.empty((len(sets), n), dtype=np.int64)
    for i, s in enumerate(sets):
        if s.ndim != 1:
            raise InvalidParameterError(
                f"samples must be 1-d arrays, got shape {s.shape}"
            )
        if s.size and (s.min() < 0 or s.max() >= n):
            raise InvalidParameterError("samples contain values outside [0, n)")
        counts[i] = np.bincount(s, minlength=n)
    pairs = counts * (counts - 1) // 2
    count_rows = np.zeros((len(sets), n + 1), dtype=np.int64)
    pair_rows = np.zeros((len(sets), n + 1), dtype=np.int64)
    np.cumsum(counts, axis=1, out=count_rows[:, 1:])
    np.cumsum(pairs, axis=1, out=pair_rows[:, 1:])
    return count_rows, pair_rows


def batched_pair_prefixes(
    sample_sets: "list[np.ndarray] | tuple[np.ndarray, ...]",
    n: int,
    grid: np.ndarray,
) -> np.ndarray:
    """Pair-count prefixes only (the greedy compile path's shape).

    See :func:`batched_interval_prefixes` for the mechanism; this wrapper
    returns just the C-contiguous ``(r, G)`` pair-count matrix.
    """
    return batched_interval_prefixes(sample_sets, n, grid)[1]
