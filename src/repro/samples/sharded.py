"""Mergeable sharded sketches: the sample layer's out-of-core form.

Every sketch in this library reduces to *prefix statistics over a sorted
sample multiset* — hit counts ``|S_I|`` and pair counts ``coll(S_I)``
read off prefix arrays.  Both statistics are associative over disjoint
sub-multisets: the hit prefix of a union is the sum of per-part hit
prefixes, and pair counts depend only on per-value occurrence totals,
which also just add.  :class:`ShardedSketch` exploits that: one logical
sample set is held as ``S`` independently *sorted shard buffers*, and

* :meth:`merge` reconstructs the monolithic sorted array (a k-way merge
  of sorted runs — ``np.sort(kind="stable")`` over the concatenation,
  whose mergesort detects the pre-sorted runs),
* :meth:`count_prefix_on_grid` answers hit prefixes as exact integer
  sums of per-shard binary searches,
* :meth:`merge_prefixes` produces the hit/pair prefix rows the compiled
  engines consume — per-shard run-length counts combined across shards
  (sparse regime) or per-shard bincounts summed (dense regime).

Because every combination step is exact ``int64`` arithmetic, the rows
are **bit-equal** to both the monolithic sort path
(:meth:`repro.samples.collision.CollisionSketch.prefixes_on_grid`, the
one-sort :func:`~repro.samples.collision.batched_interval_prefixes`) and
the counting path
(:func:`~repro.samples.collision.dense_interval_prefixes`) for any shard
count — the property the conformance matrix pins.  Sharding therefore
never changes a verdict, histogram, query log, or memo count; it only
changes how much of the data must be resident and sorted at once, which
is what lets compilation parallelise per shard
(:class:`repro.api.ParallelExecutor`) and datasets exceed one buffer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.prefix import pairs_count, prefix_sums

__all__ = [
    "ShardedSketch",
    "shard_chunks",
    "combine_shard_parts",
    "combine_dense_parts",
    "compile_shard_part",
    "compile_shard_part_dense",
    "sharded_interval_prefixes",
]


def shard_chunks(values: np.ndarray, num_shards: int) -> list[np.ndarray]:
    """Split a raw sample array into ``num_shards`` contiguous chunks.

    Chunk boundaries are deterministic (``np.array_split`` semantics:
    earlier chunks get the remainder), so the same array always shards
    the same way — part of what keeps sharded runs replayable.  The
    chunks are views; nothing is copied or sorted here.
    """
    if int(num_shards) != num_shards or num_shards < 1:
        raise InvalidParameterError(
            f"num_shards must be a positive integer, got {num_shards!r}"
        )
    values = np.asarray(values)
    if values.ndim != 1:
        raise InvalidParameterError(
            f"samples must be a 1-d array, got shape {values.shape}"
        )
    return np.array_split(values, int(num_shards))


def compile_shard_part(
    chunk: np.ndarray, n: int, grid: np.ndarray | None
) -> tuple:
    """Sort one raw shard and summarise it for cross-shard combination.

    Returns ``(count_at_grid, values, counts)``: the shard's hit-count
    prefix at each grid point plus its run-length (value, occurrence)
    summary.  This is the per-shard unit of work a
    :class:`~repro.api.ParallelExecutor` fans out — each task sorts only
    its chunk, and only these small summaries travel back.

    ``grid=None`` skips the hit-count side entirely (``count_at_grid``
    is then ``None``): pair-only consumers — the greedy learner's
    collision compile — neither ship the grid to the task nor pay for
    prefix rows they would discard.
    """
    chunk = np.asarray(chunk, dtype=np.int64)
    if chunk.size and (chunk.min() < 0 or chunk.max() >= n):
        raise InvalidParameterError("samples contain values outside [0, n)")
    ordered = np.sort(chunk)
    if grid is None:
        count_at_grid = None
    else:
        count_at_grid = np.searchsorted(
            ordered, np.asarray(grid), side="left"
        ).astype(np.int64, copy=False)
    values, counts = _run_lengths(ordered)
    return count_at_grid, values, counts


def compile_shard_part_dense(chunk: np.ndarray, n: int) -> np.ndarray:
    """One shard's per-value occurrence counts (the dense-regime part).

    A plain ``bincount`` over the domain; per-shard counts sum exactly
    to the monolithic counts, which is the cross-shard combination the
    dense prefix builder rides (see
    :func:`~repro.samples.collision.dense_interval_prefixes`).
    """
    chunk = np.asarray(chunk, dtype=np.int64)
    if chunk.size and (chunk.min() < 0 or chunk.max() >= n):
        raise InvalidParameterError("samples contain values outside [0, n)")
    return np.bincount(chunk, minlength=n).astype(np.int64, copy=False)


def combine_shard_parts(
    parts: "list[tuple]", grid: np.ndarray
) -> tuple[np.ndarray | None, np.ndarray]:
    """Hit/pair prefix rows of one logical set from its shard parts.

    ``parts`` are :func:`compile_shard_part` outputs.  Hit prefixes add
    directly; pair prefixes need per-value occurrence *totals* first
    (pairs are quadratic in the count), so the per-shard run-length
    summaries are merged — values stably sorted, duplicate values'
    counts summed — before ``C(count, 2)`` is prefixed.  All int64, so
    the result is bit-equal to sketching the merged multiset.  Parts
    built without a grid (pair-only tasks) yield ``count_row = None``.
    """
    grid = np.asarray(grid)
    if any(count_at_grid is None for count_at_grid, _, _ in parts):
        count_row = None
    else:
        count_row = np.zeros(grid.shape[0], dtype=np.int64)
        for count_at_grid, _, _ in parts:
            count_row += count_at_grid
    values, counts = _merge_value_counts(
        [(v, c) for _, v, c in parts]
    )
    pair_prefix = prefix_sums(pairs_count(counts))
    idx = np.searchsorted(values, grid, side="left")
    pair_row = pair_prefix[idx].astype(np.int64, copy=False)
    return count_row, pair_row


def combine_dense_parts(
    parts: "list[np.ndarray]", grid: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Hit/pair prefix rows of one set from its dense (bincount) parts.

    Per-shard occurrence counts sum to the multiset's totals; the hit
    and pair prefixes then follow by exact cumulative sums, gathered at
    the grid.  Bit-equal to the sparse combination and to
    :func:`~repro.samples.collision.dense_interval_prefixes`.
    """
    grid = np.asarray(grid)
    counts = parts[0].copy()
    for part in parts[1:]:
        counts += part
    count_row = prefix_sums(counts)[grid].astype(np.int64, copy=False)
    pair_row = prefix_sums(pairs_count(counts))[grid].astype(np.int64, copy=False)
    return count_row, pair_row


def _sparse_shard_task(args: tuple) -> tuple:
    """Executor task: sort one chunk, summarise it (sparse regime)."""
    chunk, n, grid = args
    return compile_shard_part(chunk, n, grid)


def _dense_shard_task(args: tuple) -> np.ndarray:
    """Executor task: bincount one chunk (dense regime)."""
    chunk, n = args
    return compile_shard_part_dense(chunk, n)


def sharded_interval_prefixes(
    sample_sets: "list[np.ndarray] | tuple[np.ndarray, ...]",
    n: int,
    grid: np.ndarray,
    *,
    num_shards: int = 1,
    mapper=None,
    dense: bool | None = None,
    counts: bool = True,
) -> tuple[np.ndarray | None, np.ndarray]:
    """Hit/pair prefix rows of ``r`` sets, built from shard parts.

    The shard-mergeable counterpart of
    :func:`repro.samples.collision.batched_interval_prefixes` (and, at
    ``grid = arange(n + 1)``, of
    :func:`~repro.samples.collision.dense_interval_prefixes`): every set
    is split into ``num_shards`` contiguous chunks, each chunk is
    summarised independently — the unit of work ``mapper`` (an
    order-preserving ``map(fn, tasks) -> list``, e.g.
    :meth:`repro.api.ParallelExecutor.map`) can fan across processes —
    and the per-set rows are combined by exact integer arithmetic.  Only
    the ``(r, G)`` output rows are ever materialised whole.

    ``dense`` selects the per-shard summary: bincount parts (the fleet
    regime, domain within a constant of the sample count) or sorted
    run-length parts; ``None`` applies the same guard the compile paths
    use.  Either way the rows are bit-equal to the monolithic builders
    for any shard count.

    ``counts=False`` returns ``(None, pair_rows)`` and, on the sparse
    path, neither ships the grid to the shard tasks nor computes the
    hit rows at all — the shape pair-only consumers (the greedy
    collision compile) want.
    """
    sets = [np.asarray(s, dtype=np.int64) for s in sample_sets]
    grid = np.asarray(grid, dtype=np.int64)
    if grid.size and (grid.min() < 0 or grid.max() > n):
        raise InvalidParameterError("grid points must lie in [0, n]")
    if not sets:
        empty = np.zeros((0, grid.size), dtype=np.int64)
        return (empty.copy() if counts else None), empty
    if dense is None:
        total = sum(s.shape[0] for s in sets)
        dense = n + 1 <= 4 * total
    if mapper is None:
        mapper = lambda fn, tasks: [fn(task) for task in tasks]  # noqa: E731
    chunked = [shard_chunks(s, num_shards) for s in sets]
    if dense:
        tasks = [(chunk, n) for chunks in chunked for chunk in chunks]
        parts = mapper(_dense_shard_task, tasks)
    else:
        task_grid = grid if counts else None
        tasks = [(chunk, n, task_grid) for chunks in chunked for chunk in chunks]
        parts = mapper(_sparse_shard_task, tasks)
    count_rows = (
        np.empty((len(sets), grid.size), dtype=np.int64) if counts else None
    )
    pair_rows = np.empty((len(sets), grid.size), dtype=np.int64)
    for i, chunks in enumerate(chunked):
        set_parts = parts[i * len(chunks) : (i + 1) * len(chunks)]
        if dense:
            count_row, pair_rows[i] = combine_dense_parts(set_parts, grid)
        else:
            count_row, pair_rows[i] = combine_shard_parts(set_parts, grid)
        if counts:
            count_rows[i] = count_row
    if counts:
        return np.ascontiguousarray(count_rows), np.ascontiguousarray(pair_rows)
    return None, np.ascontiguousarray(pair_rows)


def _run_lengths(sorted_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(distinct values, occurrence counts) of one sorted array."""
    if sorted_values.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    boundaries = np.nonzero(
        np.concatenate(([True], sorted_values[1:] != sorted_values[:-1]))
    )[0]
    values = sorted_values[boundaries]
    counts = np.diff(np.concatenate((boundaries, [sorted_values.size])))
    return values, counts


def _merge_value_counts(
    summaries: "list[tuple[np.ndarray, np.ndarray]]",
) -> tuple[np.ndarray, np.ndarray]:
    """Combine per-shard (values, counts) into the multiset's totals.

    Equivalent to ``np.unique(merged, return_counts=True)`` without ever
    materialising the merged multiset — the cross-shard step of the
    sparse pair-count path.
    """
    if not summaries:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    values = np.concatenate([v for v, _ in summaries])
    counts = np.concatenate([c for _, c in summaries])
    if values.size == 0:
        return values, counts
    order = np.argsort(values, kind="stable")
    values = values[order]
    counts = counts[order]
    boundaries = np.nonzero(np.concatenate(([True], values[1:] != values[:-1])))[0]
    return values[boundaries], np.add.reduceat(counts, boundaries)


class ShardedSketch:
    """One logical sample multiset held as per-shard sorted buffers.

    Parameters
    ----------
    shards:
        The shard buffers.  With ``presorted=False`` (default) each is
        sorted on construction; with ``presorted=True`` the caller
        vouches each buffer is already non-decreasing (checked, O(m)).
    n:
        Domain size (used for validation).
    """

    __slots__ = ("_shards", "_n", "_size")

    def __init__(
        self,
        shards: "list[np.ndarray]",
        n: int,
        *,
        presorted: bool = False,
    ) -> None:
        if not shards:
            raise InvalidParameterError("ShardedSketch needs at least one shard")
        normalised = []
        for shard in shards:
            shard = np.asarray(shard, dtype=np.int64)
            if shard.ndim != 1:
                raise InvalidParameterError(
                    f"shards must be 1-d arrays, got shape {shard.shape}"
                )
            if shard.size and (shard.min() < 0 or shard.max() >= n):
                raise InvalidParameterError("samples contain values outside [0, n)")
            if presorted:
                if shard.size and np.any(shard[1:] < shard[:-1]):
                    raise InvalidParameterError(
                        "presorted shards must be non-decreasing"
                    )
                shard = shard.copy()
            else:
                shard = np.sort(shard)
            shard.flags.writeable = False
            normalised.append(shard)
        self._shards = normalised
        self._n = int(n)
        self._size = int(sum(shard.shape[0] for shard in normalised))

    @classmethod
    def from_array(
        cls, values: np.ndarray, n: int, num_shards: int
    ) -> "ShardedSketch":
        """Shard a raw sample array into ``num_shards`` sorted buffers."""
        return cls(shard_chunks(values, num_shards), n)

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    @property
    def size(self) -> int:
        """Total number of samples across all shards."""
        return self._size

    @property
    def num_shards(self) -> int:
        """Number of shard buffers ``S``."""
        return len(self._shards)

    @property
    def shards(self) -> "list[np.ndarray]":
        """The sorted shard buffers (read-only views)."""
        return list(self._shards)

    def merge(self) -> np.ndarray:
        """The monolithic sorted sample array (k-way merge of the shards).

        ``np.sort(kind="stable")`` over the concatenation is numpy's
        merge of pre-sorted runs; the output is the canonical sorted
        multiset, bit-equal to sorting the unsharded array.
        """
        if len(self._shards) == 1:
            return self._shards[0].copy()
        merged = np.concatenate(self._shards)
        merged.sort(kind="stable")
        return merged

    def count_prefix_on_grid(self, grid: np.ndarray) -> np.ndarray:
        """Hit-count prefixes at each grid point, summed across shards.

        Exact integer sums of per-shard binary searches — bit-equal to
        :meth:`repro.samples.sample_set.SampleSet.count_prefix_on_grid`
        over the merged multiset.
        """
        grid = np.asarray(grid)
        out = np.zeros(grid.shape[0], dtype=np.int64)
        for shard in self._shards:
            out += np.searchsorted(shard, grid, side="left")
        return out

    def merge_prefixes(self, grid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Hit and pair prefix rows on a sorted point grid.

        The rows are what the compiled engines gather from — bit-equal
        to :meth:`repro.samples.collision.CollisionSketch.prefixes_on_grid`
        over the merged multiset, for any shard count.
        """
        parts = [
            (
                np.searchsorted(shard, np.asarray(grid), side="left").astype(
                    np.int64, copy=False
                ),
            )
            + _run_lengths(shard)
            for shard in self._shards
        ]
        return combine_shard_parts(parts, grid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedSketch(size={self._size}, shards={self.num_shards}, "
            f"n={self._n})"
        )
