"""Sample-set machinery behind every estimator in the paper.

* :class:`SampleSet` — a sorted sample array answering interval hit counts
  ``|S_I|`` in ``O(log m)`` (the ``y_I`` estimates of Algorithm 1);
* :class:`CollisionSketch` — per-value occurrence counts with pair-count
  prefix sums, answering interval collision counts ``coll(S_I)`` in
  ``O(log m)`` (the ``z_I`` estimates);
* :class:`ShardedSketch` — the shard-mergeable form of both: per-shard
  sorted buffers whose merged hit/pair prefix rows are bit-equal to the
  monolithic sort (and dense counting) paths, enabling parallel and
  out-of-core compilation;
* :mod:`repro.samples.estimators` — the estimator formulas themselves:
  the absolute second-moment estimator of Lemma 1, the conditional
  ``||p_I||_2^2`` estimator of Eq. 2, and their median-of-r combinations.
"""

from repro.samples.collision import (
    CollisionSketch,
    batched_pair_prefixes,
    collision_count,
)
from repro.samples.estimators import (
    MultiSketch,
    absolute_second_moment_estimate,
    conditional_norm_estimate,
    observed_collision_probability,
    weight_estimate,
)
from repro.samples.sample_set import SampleSet
from repro.samples.sharded import ShardedSketch, sharded_interval_prefixes

__all__ = [
    "CollisionSketch",
    "MultiSketch",
    "SampleSet",
    "ShardedSketch",
    "absolute_second_moment_estimate",
    "batched_pair_prefixes",
    "collision_count",
    "conditional_norm_estimate",
    "observed_collision_probability",
    "sharded_interval_prefixes",
    "weight_estimate",
]
