"""Sorted sample sets with logarithmic interval counting.

Algorithm 1 needs ``y_I = |S_I| / |S|`` for (potentially very many)
intervals ``I``; a sorted copy of the samples answers each query with two
binary searches, and a fixed grid of query points can be "compiled" into a
prefix array so the greedy inner loop pays one gather per query instead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


class SampleSet:
    """An immutable multiset of integer samples from ``[0, n)``.

    Parameters
    ----------
    samples:
        Integer array of sample values.
    n:
        Domain size (used only for validation).
    """

    __slots__ = ("_sorted", "_n")

    def __init__(self, samples: np.ndarray, n: int) -> None:
        samples = np.asarray(samples, dtype=np.int64)
        if samples.ndim != 1:
            raise InvalidParameterError(
                f"samples must be a 1-d array, got shape {samples.shape}"
            )
        if samples.size and (samples.min() < 0 or samples.max() >= n):
            raise InvalidParameterError("samples contain values outside [0, n)")
        self._sorted = np.sort(samples)
        self._sorted.flags.writeable = False
        self._n = int(n)

    @classmethod
    def from_sorted(cls, sorted_samples: np.ndarray, n: int) -> "SampleSet":
        """Build from an already-sorted array, skipping the O(m log m) sort.

        The caller vouches for the ordering (checked, O(m)); the fleet
        compiler uses this with counting-sorted values — for values in
        ``[0, n)`` with ``n`` at most a few times ``m``, reconstructing
        the sorted multiset from a bincount is markedly cheaper than a
        comparison sort and yields the identical array.
        """
        sorted_samples = np.asarray(sorted_samples, dtype=np.int64)
        if sorted_samples.ndim != 1:
            raise InvalidParameterError(
                f"samples must be a 1-d array, got shape {sorted_samples.shape}"
            )
        if sorted_samples.size and np.any(sorted_samples[1:] < sorted_samples[:-1]):
            raise InvalidParameterError("from_sorted needs non-decreasing samples")
        built = cls.__new__(cls)
        if sorted_samples.size and (
            sorted_samples[0] < 0 or sorted_samples[-1] >= n
        ):
            raise InvalidParameterError("samples contain values outside [0, n)")
        values = sorted_samples.copy()
        values.flags.writeable = False
        built._sorted = values
        built._n = int(n)
        return built

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    @property
    def size(self) -> int:
        """Number of samples ``|S|``."""
        return self._sorted.shape[0]

    @property
    def sorted_values(self) -> np.ndarray:
        """The samples in sorted order (read-only)."""
        return self._sorted

    def unique_values(self) -> np.ndarray:
        """Distinct sample values, sorted."""
        return np.unique(self._sorted)

    def count(
        self, starts: int | np.ndarray, stops: int | np.ndarray
    ) -> int | np.ndarray:
        """``|S_I|`` for half-open intervals ``[starts, stops)``.

        Vectorised: ``starts``/``stops`` may be arrays (broadcast together).
        """
        lo = np.searchsorted(self._sorted, starts, side="left")
        hi = np.searchsorted(self._sorted, stops, side="left")
        result = hi - lo
        if np.isscalar(starts) and np.isscalar(stops):
            return int(result)
        return result

    def fraction(
        self, starts: int | np.ndarray, stops: int | np.ndarray
    ) -> float | np.ndarray:
        """``|S_I| / |S|`` — the weight estimate ``y_I`` of Algorithm 1."""
        if self.size == 0:
            raise InvalidParameterError("cannot estimate from an empty sample set")
        counts = self.count(starts, stops)
        result = np.asarray(counts, dtype=np.float64) / self.size
        if np.isscalar(starts) and np.isscalar(stops):
            return float(result)
        return result

    def count_prefix_on_grid(self, grid: np.ndarray) -> np.ndarray:
        """Counts of samples below each grid point.

        For a sorted point array ``grid``, returns ``P`` with
        ``P[i] = |{s in S : s < grid[i]}|`` so that the count over
        ``[grid[i], grid[j])`` is ``P[j] - P[i]``.  The dtype
        normalisation is copy-free where ``searchsorted`` already
        produced int64 (every 64-bit platform), keeping the compile path
        allocation-light.
        """
        return np.searchsorted(self._sorted, np.asarray(grid), side="left").astype(
            np.int64, copy=False
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SampleSet(size={self.size}, n={self._n})"
