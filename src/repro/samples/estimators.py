"""Estimator formulas from Section 2 of the paper.

Three estimators drive everything:

* ``y_I = |S_I| / |S|`` — the weight estimate (Algorithm 1 step 2, tight
  to ``xi`` by Chernoff for ``|S| = ln(12 n^2) / (2 xi^2)``);
* ``coll(S_I) / C(|S|, 2)`` — the *absolute* second-moment estimator of
  Lemma 1, concentrating around ``sum_{i in I} p_i^2`` within
  ``eps * p(I)`` for ``|S| >= 24 / eps^2``;
* ``coll(S_I) / C(|S_I|, 2)`` — the *conditional* estimator of [GR00]
  (Eqs. 1–2), concentrating around ``||p_I||_2^2``.

Each has a median-of-r combinator (Chernoff amplification, as in
Algorithm 1 step 4 and Algorithm 2 step 1).  :class:`MultiSketch` bundles
the ``r`` independent sample sets the paper's algorithms draw.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import InsufficientSamplesError
from repro.samples.collision import CollisionSketch
from repro.samples.sample_set import SampleSet
from repro.utils.prefix import pairs_count


def weight_estimate(
    sample_set: SampleSet, starts: int | np.ndarray, stops: int | np.ndarray
) -> float | np.ndarray:
    """``y_I = |S_I| / |S|`` — unbiased estimate of ``p(I)``."""
    return sample_set.fraction(starts, stops)


def observed_collision_probability(samples: np.ndarray) -> float:
    """``coll(S) / C(|S|, 2)`` of a full sample array.

    The [GR00] statistic: its expectation is ``||p||_2^2``.  Requires at
    least two samples.
    """
    samples = np.asarray(samples)
    if samples.size < 2:
        raise InsufficientSamplesError(
            f"need >= 2 samples for a collision probability, got {samples.size}"
        )
    from repro.samples.collision import collision_count

    return collision_count(samples) / pairs_count(samples.size)


def _ratio(
    numerator: np.ndarray,
    denominator: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Element-wise ratio with 0 where the denominator is 0.

    An interval holding fewer than two samples exhibits no collision pairs;
    its observed collision probability is defined as 0 (the safe, accepting
    direction — README.md, "Design notes").

    ``out`` (a float64 buffer of the broadcast shape) makes the call
    allocation-free for integer inputs: ``np.divide`` promotes them to
    float64 element-wise, bit-identical to casting the whole array first.
    The compiled tester kernels reuse one such buffer across every query.
    """
    numerator = np.asarray(numerator)
    denominator = np.asarray(denominator)
    if out is None:
        out = np.zeros(
            np.broadcast(numerator, denominator).shape, dtype=np.float64
        )
    else:
        out[...] = 0.0
    np.divide(numerator, denominator, out=out, where=denominator > 0)
    return out


def absolute_second_moment_estimate(
    sketch: CollisionSketch, starts: int | np.ndarray, stops: int | np.ndarray
) -> float | np.ndarray:
    """Lemma 1 estimator: ``coll(S_I) / C(|S|, 2) ~ sum_{i in I} p_i^2``."""
    if sketch.size < 2:
        raise InsufficientSamplesError(
            f"need >= 2 samples, sketch holds {sketch.size}"
        )
    coll = np.asarray(sketch.collisions(starts, stops), dtype=np.float64)
    result = coll / pairs_count(sketch.size)
    if np.isscalar(starts) and np.isscalar(stops):
        return float(result)
    return result


def conditional_norm_estimate(
    sketch: CollisionSketch, starts: int | np.ndarray, stops: int | np.ndarray
) -> float | np.ndarray:
    """[GR00] estimator: ``coll(S_I) / C(|S_I|, 2) ~ ||p_I||_2^2``.

    Intervals with fewer than two samples yield 0 (see :func:`_ratio`).
    """
    coll = sketch.collisions(starts, stops)
    count = sketch.count(starts, stops)
    result = _ratio(np.asarray(coll), np.asarray(pairs_count(np.asarray(count))))
    if np.isscalar(starts) and np.isscalar(stops):
        return float(result)
    return result


class MultiSketch:
    """The ``r`` independent sample sets ``S^1, ..., S^r`` of the paper.

    Provides vectorised median-of-r versions of both collision estimators
    plus per-set hit counts, which is exactly the query interface the
    greedy learner (Algorithm 1) and the flatness tests (Algorithms 3/4)
    need.
    """

    def __init__(self, sketches: Sequence[CollisionSketch]) -> None:
        if not sketches:
            raise InsufficientSamplesError("MultiSketch needs at least one sketch")
        self._sketches = list(sketches)

    @classmethod
    def from_sample_sets(
        cls, sample_sets: Sequence[np.ndarray], n: int
    ) -> "MultiSketch":
        """Build from raw sample arrays (one sketch per array)."""
        return cls([CollisionSketch(s, n) for s in sample_sets])

    @property
    def num_sets(self) -> int:
        """The replication factor ``r``."""
        return len(self._sketches)

    @property
    def set_size(self) -> int:
        """``m``, the (common) size of each sample set."""
        return self._sketches[0].size

    @property
    def n(self) -> int:
        """Domain size (common to every per-set sketch)."""
        return self._sketches[0].n

    @property
    def sketches(self) -> list[CollisionSketch]:
        """The underlying per-set sketches."""
        return self._sketches

    def counts(
        self, starts: int | np.ndarray, stops: int | np.ndarray
    ) -> np.ndarray:
        """``|S^i_I|`` for every set: shape ``(r,) + broadcast shape``."""
        return np.stack(
            [np.asarray(s.count(starts, stops)) for s in self._sketches]
        )

    def median_absolute_second_moment(
        self, starts: int | np.ndarray, stops: int | np.ndarray
    ) -> float | np.ndarray:
        """Median-of-r Lemma 1 estimate ``z_I`` (Algorithm 1 step 4)."""
        estimates = np.stack(
            [
                np.asarray(absolute_second_moment_estimate(s, starts, stops))
                for s in self._sketches
            ]
        )
        result = np.median(estimates, axis=0)
        if np.isscalar(starts) and np.isscalar(stops):
            return float(result)
        return result

    def median_conditional_norm(
        self, starts: int | np.ndarray, stops: int | np.ndarray
    ) -> float | np.ndarray:
        """Median-of-r [GR00] estimate of ``||p_I||_2^2`` (Eq. 28)."""
        estimates = np.stack(
            [
                np.asarray(conditional_norm_estimate(s, starts, stops))
                for s in self._sketches
            ]
        )
        result = np.median(estimates, axis=0)
        if np.isscalar(starts) and np.isscalar(stops):
            return float(result)
        return result
