"""Equi-width histograms: fixed-width buckets.

The simplest bucketisation; included as the weakest application baseline
for the selectivity-estimation experiment (T6).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.histograms.tiling import TilingHistogram


def _equiwidth_boundaries(n: int, k: int) -> np.ndarray:
    if int(k) != k or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    k = min(k, n)
    return np.unique(np.linspace(0, n, k + 1).astype(np.int64))


def equiwidth_from_pmf(pmf: np.ndarray, k: int) -> TilingHistogram:
    """Equi-width histogram of an explicitly known distribution."""
    pmf = np.asarray(pmf, dtype=np.float64)
    n = pmf.shape[0]
    boundaries = _equiwidth_boundaries(n, k)
    prefix = np.concatenate(([0.0], np.cumsum(pmf)))
    masses = prefix[boundaries[1:]] - prefix[boundaries[:-1]]
    values = masses / np.diff(boundaries)
    return TilingHistogram(n, boundaries, values)


def equiwidth_from_samples(samples: np.ndarray, n: int, k: int) -> TilingHistogram:
    """Equi-width histogram with empirically estimated bucket masses."""
    samples = np.asarray(samples)
    if samples.size == 0:
        raise InvalidParameterError("need at least one sample")
    counts = np.bincount(samples, minlength=n).astype(np.float64)
    if counts.shape[0] > n:
        raise InvalidParameterError("samples contain values outside [0, n)")
    return equiwidth_from_pmf(counts / samples.size, k)
