"""Compressed histograms [GMP97].

A compressed histogram stores the heaviest elements in singleton buckets
(their mass is kept exactly, up to sampling error) and covers the rest of
the domain with equi-depth buckets.  This is the second sample-based
construction the paper's introduction contrasts with v-optimal histograms.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.histograms.tiling import TilingHistogram


def compressed_from_samples(
    samples: np.ndarray,
    n: int,
    k: int,
    singleton_fraction: float = 0.5,
) -> TilingHistogram:
    """Compressed histogram from random samples.

    Parameters
    ----------
    samples:
        Integer samples in ``[0, n)``.
    n:
        Domain size.
    k:
        Total bucket budget.
    singleton_fraction:
        Fraction of the budget spent on heavy singleton buckets (the
        remainder is spent on equi-depth buckets over the residual mass).
    """
    samples = np.asarray(samples)
    if samples.size == 0:
        raise InvalidParameterError("need at least one sample")
    if int(k) != k or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    if not 0.0 <= singleton_fraction <= 1.0:
        raise InvalidParameterError(
            f"singleton_fraction must be in [0, 1], got {singleton_fraction}"
        )
    counts = np.bincount(samples, minlength=n).astype(np.float64)
    if counts.shape[0] > n:
        raise InvalidParameterError("samples contain values outside [0, n)")
    pmf = counts / samples.size

    num_singletons = min(int(k * singleton_fraction), k - 1, n)
    # Heaviest elements become width-1 buckets.  Only elements strictly
    # heavier than the uniform level are worth a singleton.
    order = np.argsort(pmf)[::-1]
    singles = np.sort(order[:num_singletons])
    singles = singles[pmf[singles] > 1.0 / n]

    cut_set = {0, n}
    for s in singles:
        cut_set.add(int(s))
        cut_set.add(int(s) + 1)

    # Residual mass gets equi-depth cuts from the cdf with singleton mass
    # removed.
    residual = pmf.copy()
    residual[singles] = 0.0
    residual_mass = residual.sum()
    buckets_left = max(k - len(singles), 1)
    if residual_mass > 0:
        cdf = np.cumsum(residual) / residual_mass
        targets = np.arange(1, buckets_left) / buckets_left
        cuts = np.searchsorted(cdf, targets, side="left") + 1
        for c in cuts:
            if 0 < c < n:
                cut_set.add(int(c))

    boundaries = np.array(sorted(cut_set), dtype=np.int64)
    prefix = np.concatenate(([0.0], np.cumsum(pmf)))
    masses = prefix[boundaries[1:]] - prefix[boundaries[:-1]]
    values = masses / np.diff(boundaries)
    return TilingHistogram(n, boundaries, values)
