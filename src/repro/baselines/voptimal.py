"""Exact v-optimal histograms via dynamic programming [JPK+98].

Given the full probability vector ``p`` and a budget of ``k`` pieces, the
dynamic program computes the tiling k-histogram minimising

* ``sum_i (p_i - H(i))^2``  (``norm="l2"``, the "v-optimal" criterion), or
* ``sum_i |p_i - H(i)|``    (``norm="l1"``),

in ``O(n^2 k)`` time.  The paper positions this as the baseline that must
read the whole input; here it serves two roles:

1. the optimum ``H*`` against which Theorems 1 and 2 bound the greedy
   learner's excess error, and
2. an exact distance-to-property oracle: ``p`` is a tiling k-histogram iff
   the optimal cost is 0, and the optimal cost certifies how far ``p`` is
   from the property (used to build epsilon-far NO instances for the
   testers).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import InvalidParameterError
from repro.histograms.fit import best_fit_values
from repro.histograms.tiling import TilingHistogram

_NORMS = ("l1", "l2")


def _check_inputs(pmf: np.ndarray, k: int, norm: str) -> np.ndarray:
    if norm not in _NORMS:
        raise InvalidParameterError(f"norm must be one of {_NORMS}, got {norm!r}")
    pmf = np.asarray(pmf, dtype=np.float64)
    if pmf.ndim != 1 or pmf.shape[0] == 0:
        raise InvalidParameterError("pmf must be a non-empty 1-d array")
    if int(k) != k or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    if k > pmf.shape[0]:
        raise InvalidParameterError(
            f"k={k} exceeds the domain size n={pmf.shape[0]}"
        )
    return pmf


def l1_piece_cost_matrix(pmf: np.ndarray) -> np.ndarray:
    """``C[s, t] = min_v sum_{i in [s, t)} |p_i - v|`` for all ``s < t``.

    The minimiser is the median; costs are accumulated incrementally with
    a two-heap running median, ``O(n^2 log n)`` total.  The returned matrix
    has shape ``(n + 1, n + 1)`` with zeros on and below the diagonal.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    n = pmf.shape[0]
    costs = np.zeros((n + 1, n + 1), dtype=np.float64)
    for s in range(n):
        lower: list[float] = []  # max-heap (negated): values <= median
        upper: list[float] = []  # min-heap: values >= median
        lower_sum = 0.0
        upper_sum = 0.0
        for t in range(s + 1, n + 1):
            x = float(pmf[t - 1])
            if not lower or x <= -lower[0]:
                heapq.heappush(lower, -x)
                lower_sum += x
            else:
                heapq.heappush(upper, x)
                upper_sum += x
            if len(lower) > len(upper) + 1:
                moved = -heapq.heappop(lower)
                lower_sum -= moved
                heapq.heappush(upper, moved)
                upper_sum += moved
            elif len(upper) > len(lower):
                moved = heapq.heappop(upper)
                upper_sum -= moved
                heapq.heappush(lower, -moved)
                lower_sum += moved
            median = -lower[0]
            cost = (median * len(lower) - lower_sum) + (
                upper_sum - median * len(upper)
            )
            costs[s, t] = cost
    return costs


def _dp(pmf: np.ndarray, k: int, norm: str) -> tuple[float, np.ndarray]:
    """Run the DP; return ``(optimal cost, boundaries)``."""
    n = pmf.shape[0]
    if norm == "l2":
        prefix = np.concatenate(([0.0], np.cumsum(pmf)))
        sq_prefix = np.concatenate(([0.0], np.cumsum(pmf * pmf)))

        def costs_into(t: int) -> np.ndarray:
            """cost(s, t) for all s in [0, t)."""
            s = np.arange(t)
            mass = prefix[t] - prefix[s]
            return sq_prefix[t] - sq_prefix[s] - mass * mass / (t - s)

    else:
        matrix = l1_piece_cost_matrix(pmf)

        def costs_into(t: int) -> np.ndarray:
            return matrix[:t, t]

    inf = np.inf
    best = np.full(n + 1, inf, dtype=np.float64)
    best[0] = 0.0
    parents = np.zeros((k, n + 1), dtype=np.int64)
    for j in range(k):
        nxt = np.full(n + 1, inf, dtype=np.float64)
        # A prefix [0, t) needs at least j + 1 points for j + 1 non-empty
        # pieces, and must leave k - j - 1 points for the remaining pieces.
        for t in range(j + 1, n - (k - j - 1) + 1):
            candidates = best[:t] + costs_into(t)
            s = int(np.argmin(candidates))
            nxt[t] = candidates[s]
            parents[j, t] = s
        best = nxt
    boundaries = np.empty(k + 1, dtype=np.int64)
    boundaries[k] = n
    for j in range(k - 1, -1, -1):
        boundaries[j] = parents[j, boundaries[j + 1]]
    return float(best[n]), boundaries


def voptimal_cost(pmf: np.ndarray, k: int, norm: str = "l2") -> float:
    """Optimal k-piece cost of ``pmf``.

    For ``norm="l2"`` this is ``min_H ||p - H||_2^2`` over tiling
    k-histograms ``H`` (note: *squared* l2); for ``norm="l1"`` it is
    ``min_H ||p - H||_1``.  The minimum is over arbitrary piecewise-constant
    functions (values need not form a distribution), which lower-bounds the
    distance to k-histogram *distributions* and therefore certifies
    epsilon-farness.
    """
    pmf = _check_inputs(pmf, k, norm)
    cost, _ = _dp(pmf, k, norm)
    return max(cost, 0.0)


def voptimal_histogram(pmf: np.ndarray, k: int, norm: str = "l2") -> TilingHistogram:
    """The optimal tiling k-histogram ``H*`` for ``pmf``.

    Values are the per-piece best fit (mean for l2, median for l1).
    """
    pmf = _check_inputs(pmf, k, norm)
    _, boundaries = _dp(pmf, k, norm)
    values = best_fit_values(pmf, boundaries, norm=norm)
    return TilingHistogram(pmf.shape[0], boundaries, values)


def voptimal_from_samples(
    samples: np.ndarray, n: int, k: int, norm: str = "l2"
) -> TilingHistogram:
    """Plug-in baseline: empirical pmf from ``samples``, then the exact DP.

    This is the natural "learn then optimise" comparator for the paper's
    greedy algorithm: it needs the same samples but ``O(n^2 k)`` time.
    """
    samples = np.asarray(samples)
    if samples.size == 0:
        raise InvalidParameterError("need at least one sample")
    counts = np.bincount(samples, minlength=n).astype(np.float64)
    if counts.shape[0] > n:
        raise InvalidParameterError("samples contain values outside [0, n)")
    return voptimal_histogram(counts / samples.size, k, norm=norm)
