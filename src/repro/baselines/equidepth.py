"""Equi-depth (quantile) histograms [CMN98].

Bucket boundaries are placed at (approximate) quantiles so every bucket
holds roughly ``1/k`` of the mass.  The paper's introduction contrasts
these sample-efficient constructions with the v-optimal histograms it
targets; we implement them as application baselines.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.histograms.tiling import TilingHistogram


def _boundaries_from_cdf(cdf: np.ndarray, n: int, k: int) -> np.ndarray:
    """Boundary positions where the cdf crosses ``i/k``, deduplicated."""
    targets = np.arange(1, k) / k
    cuts = np.searchsorted(cdf, targets, side="left") + 1
    boundaries = np.unique(np.concatenate(([0], cuts, [n])))
    boundaries = boundaries[(boundaries >= 0) & (boundaries <= n)]
    if boundaries[0] != 0:
        boundaries = np.concatenate(([0], boundaries))
    if boundaries[-1] != n:
        boundaries = np.concatenate((boundaries, [n]))
    return boundaries


def equidepth_from_pmf(pmf: np.ndarray, k: int) -> TilingHistogram:
    """Equi-depth histogram of an explicitly known distribution.

    Useful as the infinite-sample limit of :func:`equidepth_from_samples`.
    Duplicate quantile cuts (heavy single elements) are merged, so the
    result can have fewer than ``k`` buckets.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    if int(k) != k or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    n = pmf.shape[0]
    boundaries = _boundaries_from_cdf(np.cumsum(pmf), n, k)
    prefix = np.concatenate(([0.0], np.cumsum(pmf)))
    masses = prefix[boundaries[1:]] - prefix[boundaries[:-1]]
    values = masses / np.diff(boundaries)
    return TilingHistogram(n, boundaries, values)


def equidepth_from_samples(samples: np.ndarray, n: int, k: int) -> TilingHistogram:
    """Equi-depth histogram built from random samples.

    Boundaries are empirical quantiles; bucket values are the empirical
    bucket mass divided by the bucket width.
    """
    samples = np.asarray(samples)
    if samples.size == 0:
        raise InvalidParameterError("need at least one sample")
    if int(k) != k or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    counts = np.bincount(samples, minlength=n).astype(np.float64)
    if counts.shape[0] > n:
        raise InvalidParameterError("samples contain values outside [0, n)")
    return equidepth_from_pmf(counts / samples.size, k)
