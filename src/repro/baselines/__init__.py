"""Baseline histogram constructions the paper cites.

* :mod:`repro.baselines.voptimal` — the exact v-optimal dynamic program of
  [JPK+98] (the linear-time-infeasible baseline motivating the paper), for
  both the l2 ("variance") and l1 piece costs.  Also used to compute exact
  distance-to-property for the testers' experiments.
* :mod:`repro.baselines.equidepth` — equi-depth (quantile) histograms from
  random samples [CMN98].
* :mod:`repro.baselines.equiwidth` — fixed-width bucketisation.
* :mod:`repro.baselines.compressed` — compressed histograms [GMP97]:
  heavy singletons kept exactly, equi-depth on the rest.

All constructors operate on raw numpy data (a pmf vector or a sample
array) and return :class:`repro.histograms.TilingHistogram`.
"""

from repro.baselines.compressed import compressed_from_samples
from repro.baselines.equidepth import equidepth_from_pmf, equidepth_from_samples
from repro.baselines.equiwidth import equiwidth_from_pmf, equiwidth_from_samples
from repro.baselines.voptimal import (
    l1_piece_cost_matrix,
    voptimal_cost,
    voptimal_from_samples,
    voptimal_histogram,
)

__all__ = [
    "compressed_from_samples",
    "equidepth_from_pmf",
    "equidepth_from_samples",
    "equiwidth_from_pmf",
    "equiwidth_from_samples",
    "l1_piece_cost_matrix",
    "voptimal_cost",
    "voptimal_from_samples",
    "voptimal_histogram",
]
