"""Prefix-sum helpers used throughout the sampling machinery.

The library answers interval queries (weights, collision counts, squared
sums) in constant time after a single linear pass; these helpers keep that
pattern in one place.
"""

from __future__ import annotations

import numpy as np


def prefix_sums(values: np.ndarray) -> np.ndarray:
    """Return the exclusive-prefix-sum array of ``values``.

    The result ``P`` has ``len(values) + 1`` entries with ``P[0] == 0`` and
    ``P[j] == values[:j].sum()``, so the sum over the half-open index range
    ``[a, b)`` is ``P[b] - P[a]``.
    """
    values = np.asarray(values)
    out = np.empty(values.shape[0] + 1, dtype=np.result_type(values, np.int64))
    out[0] = 0
    np.cumsum(values, out=out[1:])
    return out


def interval_sums(prefix: np.ndarray, starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Vectorised sums over half-open ranges ``[starts[i], stops[i])``.

    ``prefix`` must come from :func:`prefix_sums`.  ``starts``/``stops`` are
    broadcast against each other.
    """
    prefix = np.asarray(prefix)
    return prefix[np.asarray(stops)] - prefix[np.asarray(starts)]


def pairs_count(counts: np.ndarray | int) -> np.ndarray | int:
    """``C(x, 2) = x * (x - 1) / 2`` element-wise, in exact integer math.

    This is the number of unordered sample pairs among ``x`` samples, the
    denominator / numerator unit of every collision statistic in the paper.
    """
    counts = np.asarray(counts, dtype=np.int64)
    result = counts * (counts - 1) // 2
    if result.ndim == 0:
        return int(result)
    return result
