"""Random-number-generator plumbing.

All stochastic code in the library accepts either a seed, ``None``, or a
ready-made :class:`numpy.random.Generator`.  :func:`as_rng` normalises the
three forms, and :func:`spawn_rngs` derives independent child generators so
that parallel estimators never share a stream.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | None | np.random.Generator"


def as_rng(seed_or_rng: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh OS-seeded generator).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(
    seed_or_rng: int | None | np.random.Generator, count: int
) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Children are produced through :class:`numpy.random.SeedSequence`
    spawning, so two children never overlap even when the parent is reused
    afterwards.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = as_rng(seed_or_rng)
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
