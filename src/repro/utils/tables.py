"""Markdown table rendering for the experiment harness.

Experiments print GitHub-flavoured markdown tables so their output can be
pasted directly into README.md's experiment records.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _format_cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = ".4g",
) -> str:
    """Render ``rows`` as a GitHub-flavoured markdown table.

    Floats are formatted with ``float_format``; booleans render as
    ``yes``/``no``.  Column widths are padded for terminal readability.
    """
    text_rows = [[_format_cell(v, float_format) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[j]) for j, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    lines = [fmt_row(list(headers))]
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(row) for row in text_rows)
    return "\n".join(lines)
