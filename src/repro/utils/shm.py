"""Shared-memory slab plumbing for the parallel shard executor.

A :class:`SharedSlab` is a picklable *handle* to a numpy array living in
POSIX shared memory: worker processes attach by name and see the same
bytes the parent wrote — no per-task pickling of sample pools or prefix
stacks.  The parent (via :class:`repro.api.ParallelExecutor`) owns the
segment's lifetime; workers only ever attach, and their attachments are
unregistered from the stdlib resource tracker so a worker exiting never
tears down a segment the parent still serves from.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import SlabUnavailableError

# Worker-side attachment cache: one buffer per segment name, kept alive
# across tasks so repeated work over one slab attaches once.  (The
# parent rarely uses this path — it keeps the arrays it allocated; see
# ParallelExecutor — but an inline-degraded task may.)  LRU-bounded:
# segments the parent has replaced (e.g. a grown scratch slab) would
# otherwise stay mapped — unlinked but resident — for the life of every
# worker.  Eviction unmaps lazily and backs off while a task's arrays
# still reference the buffer.
_ATTACH_CACHE_LIMIT = 32
_ATTACHED: "OrderedDict[str, object]" = OrderedDict()

# Parent-side segment registry: the executor registers every segment it
# creates so SharedSlab.attach() in the *owning* process resolves to the
# original mapping instead of opening the name again.  This is what lets
# slab-carrying tasks run inline (serial, small-batch, or degraded
# executors) even after a segment's /dev/shm name has been eagerly
# unlinked — the fault-recovery path reaps names the moment no worker
# can need them, while parent-held mappings stay valid until close.
_PARENT_SEGMENTS: "dict[str, shared_memory.SharedMemory]" = {}


def register_parent_segment(segment: shared_memory.SharedMemory) -> None:
    """Publish a parent-owned segment for in-process ``attach`` calls."""
    _PARENT_SEGMENTS[segment.name] = segment


def unregister_parent_segment(name: str) -> None:
    """Drop a parent-owned segment from the in-process registry."""
    _PARENT_SEGMENTS.pop(name, None)


def _evict_attachments() -> None:
    """Unmap least-recently-used segments beyond the cache bound.

    Pinned entries — mappings a live ndarray still exports (a task in
    flight) — cannot be unmapped yet, but they must keep their place in
    the recency order: re-ranking a pinned segment as most-recently-used
    would push genuinely fresh segments out on the same pass.  We skip
    pinned entries where they stand and keep walking toward the LRU end
    until enough *unpinned* mappings have been released.
    """
    excess = len(_ATTACHED) - _ATTACH_CACHE_LIMIT
    if excess <= 0:
        return
    for name in list(_ATTACHED.keys()):
        if excess <= 0:
            break
        segment = _ATTACHED[name]
        try:
            segment.close()
        except BufferError:
            continue
        del _ATTACHED[name]
        excess -= 1


@dataclass(frozen=True)
class SharedSlab:
    """A picklable handle to a shared-memory numpy array."""

    name: str
    shape: tuple
    dtype: str

    def attach(self) -> np.ndarray:
        """The slab as an ndarray (worker side; cached per process).

        In the process that *owns* the segment (registered via
        :func:`register_parent_segment`) this returns a view over the
        original mapping — no reopen, and valid even after the name was
        unlinked.

        The worker-side cache is keyed by segment *name*, and names get
        recycled: the parent unlinks a slab, the OS hands the same name
        to a later (possibly smaller) segment.  A cached mapping is
        therefore revalidated against this slab's ``shape * itemsize``
        on every attach and dropped + reopened when it is too small to
        back the view.  A segment that is gone — or was recycled at a
        size that cannot hold the slab — raises
        :class:`~repro.errors.SlabUnavailableError` naming the slab.
        """
        dtype = np.dtype(self.dtype)
        needed = int(np.prod(self.shape, dtype=np.int64)) * dtype.itemsize
        parent = _PARENT_SEGMENTS.get(self.name)
        if parent is not None:
            return np.ndarray(self.shape, dtype=dtype, buffer=parent.buf)
        segment = _ATTACHED.get(self.name)
        if segment is not None and _segment_size(segment) < needed:
            # Stale mapping from a recycled name: the segment this
            # mapping belongs to was unlinked and the name reused for a
            # larger one.  (A *larger* cached mapping is fine — scratch
            # slabs legitimately hand out views over a prefix.)
            del _ATTACHED[self.name]
            try:
                segment.close()
            except BufferError:
                pass  # a live view pins the old mapping; the GC unmaps it
            segment = None
        if segment is None:
            segment = _attach_segment(self.name)
            held = _segment_size(segment)
            if held < needed:
                segment.close()
                raise SlabUnavailableError(
                    f"slab {self.name!r} ({self.shape}, {dtype.str}) needs "
                    f"{needed} bytes but the segment holds {held} — the "
                    f"original segment is gone and its name was recycled"
                )
            _ATTACHED[self.name] = segment
            _evict_attachments()
        else:
            _ATTACHED.move_to_end(self.name)
        if isinstance(segment, shared_memory.SharedMemory):
            buffer = segment.buf  # pragma: no cover - non-POSIX fallback
        else:
            buffer = segment
        return np.ndarray(self.shape, dtype=dtype, buffer=buffer)


def _segment_size(segment) -> int:
    """Byte size of a cached mapping (mmap or ``SharedMemory``)."""
    if isinstance(segment, shared_memory.SharedMemory):
        return segment.size  # pragma: no cover - non-POSIX fallback
    return len(segment)


def _attach_segment(name: str):
    """:func:`_open_segment` with gone-name failures made structured."""
    try:
        return _open_segment(name)
    except FileNotFoundError as exc:
        raise SlabUnavailableError(
            f"slab {name!r} has no backing segment — the owning executor "
            f"closed or the handle outlived the parent that registered it"
        ) from exc


def _open_segment(name: str):
    """Map an existing segment read-write, without tracker side effects.

    ``SharedMemory(name=...)`` registers every *attachment* with the
    stdlib resource tracker, which the forked pool shares with the
    parent — an attaching worker would then corrupt the parent's
    bookkeeping (double unregister) or tear segments down early.  On
    POSIX we open the segment directly instead; elsewhere (no
    ``_posixshmem``) attachment falls back to ``SharedMemory``, whose
    Windows implementation does not use the tracker at all.
    """
    try:
        import _posixshmem
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return shared_memory.SharedMemory(name=name)
    import mmap
    import os

    fd = _posixshmem.shm_open("/" + name.lstrip("/"), os.O_RDWR, mode=0o600)
    try:
        return mmap.mmap(fd, 0)
    finally:
        os.close(fd)


def create_slab(
    shape: tuple, dtype=np.int64, *, zero: bool = True
) -> tuple[shared_memory.SharedMemory, np.ndarray, SharedSlab]:
    """Allocate one shared-memory array; parent keeps all three pieces.

    Returns ``(segment, array, handle)``: the segment object (close +
    unlink when done), the parent's view of it, and the picklable handle
    workers attach through.

    A fresh POSIX segment is extended with ``ftruncate``, which the OS
    defines as zero-filled, so ``zero=True`` costs nothing — no eager
    memset, pages materialise on first touch exactly as ``np.zeros``'s
    do.  (The parameter stays for readers: callers declare whether they
    rely on the zeros.)
    """
    dtype = np.dtype(dtype)
    size = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
    segment = shared_memory.SharedMemory(create=True, size=size)
    array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
    return segment, array, SharedSlab(segment.name, tuple(shape), dtype.str)
