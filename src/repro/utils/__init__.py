"""Small shared utilities: RNG handling, prefix sums, tables, timing,
shared-memory slabs, and deterministic fault injection."""

from repro.utils.faults import FaultPlan, FaultySource
from repro.utils.prefix import (
    interval_sums,
    pairs_count,
    prefix_sums,
)
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_markdown_table
from repro.utils.timing import Timer

__all__ = [
    "FaultPlan",
    "FaultySource",
    "Timer",
    "as_rng",
    "format_markdown_table",
    "interval_sums",
    "pairs_count",
    "prefix_sums",
    "spawn_rngs",
]
