"""Deterministic chaos injection for the fault-tolerance layer.

A :class:`FaultPlan` is a seeded schedule of faults — worker kills,
task delays, slab-allocation failures, source failures — consumed
through narrow test-only seams:

* :class:`~repro.api.ParallelExecutor` (``faults=``) asks the plan for a
  *directive* per scheduled task (:meth:`FaultPlan.task_directives`) and
  for allocation verdicts (:meth:`FaultPlan.take_alloc`).  A ``kill``
  directive SIGKILLs the pool worker that picks the task up (simulating
  a crashed fork mid-batch); a ``delay`` directive sleeps before the
  task body (simulating a stalled worker).  Directives carry the
  parent's PID so a task that ends up executing *inline* — the serial
  or degraded path — never kills the process under test: the healthy
  computation simply runs, which is exactly what the byte-identity
  contract needs from the degradation ladder.
* :class:`~repro.serving.HistogramService` (``faults=``) threads the
  plan into the executor it owns.
* :meth:`FaultPlan.wrap_source` wraps a
  :class:`~repro.api.SampleSource` so its N-th draw raises
  :class:`~repro.errors.InjectedFaultError` — the "source dies
  mid-draw" scenario for session/fleet/service error-path tests.

Determinism is the point: the schedule is a pure function of the plan's
configuration plus the order in which the seams consume it, so a chaos
run is replayable and the conformance suite can pin fault-path outputs
byte-identical to fault-free runs.  Counters never reset and never
depend on wall time; two plans built from equal arguments issue equal
schedules.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InjectedFaultError, InvalidParameterError

#: Directive kinds a :class:`FaultPlan` issues per scheduled task.
KILL = "kill"
DELAY = "delay"


def _index_set(indices, label: str) -> frozenset:
    out = frozenset(int(i) for i in indices)
    if any(i < 0 for i in out):
        raise InvalidParameterError(f"{label} indices must be >= 0, got {sorted(out)}")
    return out


class FaultPlan:
    """A seeded, replayable schedule of injected faults.

    Parameters
    ----------
    seed:
        Seeds the ``kill_chance`` coin flips (unused otherwise); equal
        seeds + equal knobs give byte-equal schedules.
    kill_at:
        Task indices (counted across every task the executor schedules,
        retries included) at which the worker running the task SIGKILLs
        itself.
    kill_every:
        Additionally kill at every ``kill_every``-th task (indices
        ``kill_every - 1``, ``2 * kill_every - 1``, ...).
    kill_chance:
        Per-task kill probability, drawn from the seeded generator.
    kill_limit:
        Upper bound on issued kill directives (``None`` = unbounded).
    delay_at / delay_s:
        Task indices whose workers sleep ``delay_s`` seconds before
        running (the stalled-worker fault).
    fail_alloc_at:
        Allocation indices (one per ``shared_zeros``/``scratch`` slab
        request) at which the allocation reports failure, forcing the
        plain-array fallback path.
    fail_draw_at:
        Draw indices at which a :meth:`wrap_source`-wrapped source
        raises :class:`~repro.errors.InjectedFaultError`.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        kill_at=(),
        kill_every: "int | None" = None,
        kill_chance: float = 0.0,
        kill_limit: "int | None" = None,
        delay_at=(),
        delay_s: float = 0.0,
        fail_alloc_at=(),
        fail_draw_at=(),
    ) -> None:
        if kill_every is not None and kill_every < 1:
            raise InvalidParameterError(
                f"kill_every must be >= 1, got {kill_every!r}"
            )
        if not 0.0 <= kill_chance <= 1.0:
            raise InvalidParameterError(
                f"kill_chance must be in [0, 1], got {kill_chance!r}"
            )
        if kill_limit is not None and kill_limit < 0:
            raise InvalidParameterError(
                f"kill_limit must be >= 0, got {kill_limit!r}"
            )
        if delay_s < 0:
            raise InvalidParameterError(f"delay_s must be >= 0, got {delay_s!r}")
        self._kill_at = _index_set(kill_at, "kill_at")
        self._kill_every = kill_every
        self._kill_chance = float(kill_chance)
        self._kill_limit = kill_limit
        self._delay_at = _index_set(delay_at, "delay_at")
        self._delay_s = float(delay_s)
        self._fail_alloc_at = _index_set(fail_alloc_at, "fail_alloc_at")
        self._fail_draw_at = _index_set(fail_draw_at, "fail_draw_at")
        self._rng = np.random.default_rng(seed)
        self._tasks = 0
        self._allocs = 0
        self._injected = {"kills": 0, "delays": 0, "alloc_failures": 0}

    # -------------------------------------------------------------- #
    # executor seams
    # -------------------------------------------------------------- #

    def task_directives(self, count: int) -> "list[tuple | None]":
        """Directives for the next ``count`` scheduled tasks.

        Consumes ``count`` slots of the task counter — the executor
        calls this once per ``map`` *attempt*, so a retried batch sees
        fresh schedule positions and a one-shot kill does not re-fire
        forever (the respawn-then-succeed path is reachable).
        """
        directives: "list[tuple | None]" = []
        for _ in range(max(int(count), 0)):
            index = self._tasks
            self._tasks += 1
            kill = index in self._kill_at or (
                self._kill_every is not None
                and index % self._kill_every == self._kill_every - 1
            )
            if not kill and self._kill_chance > 0.0:
                kill = self._rng.random() < self._kill_chance
            if kill and (
                self._kill_limit is None
                or self._injected["kills"] < self._kill_limit
            ):
                self._injected["kills"] += 1
                directives.append((KILL,))
            elif index in self._delay_at:
                self._injected["delays"] += 1
                directives.append((DELAY, self._delay_s))
            else:
                directives.append(None)
        return directives

    def take_alloc(self) -> bool:
        """Whether the next slab allocation should report failure."""
        index = self._allocs
        self._allocs += 1
        if index in self._fail_alloc_at:
            self._injected["alloc_failures"] += 1
            return True
        return False

    # -------------------------------------------------------------- #
    # source seam
    # -------------------------------------------------------------- #

    def wrap_source(self, source) -> "FaultySource":
        """``source`` wrapped to raise on the plan's ``fail_draw_at`` draws."""
        return FaultySource(source, fail_at=self._fail_draw_at)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def injected(self) -> dict:
        """Counts of faults issued so far (kills/delays/alloc_failures)."""
        return dict(self._injected)

    @property
    def tasks_scheduled(self) -> int:
        """How many task slots the executor has consumed."""
        return self._tasks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(tasks={self._tasks}, injected={self._injected})"
        )


class FaultySource:
    """A sample source whose N-th draw raises — the mid-draw crash.

    Wraps any object with the :class:`~repro.api.SampleSource` ``sample``
    shape; draws are counted per wrapper, and a draw index listed in
    ``fail_at`` raises :class:`~repro.errors.InjectedFaultError` *before*
    delegating, so the inner source's draw stream is left exactly one
    batch short — the way a real source dies.
    """

    def __init__(self, source, *, fail_at=()) -> None:
        self._source = source
        self._fail_at = _index_set(fail_at, "fail_at")
        self._draws = 0

    @property
    def draws(self) -> int:
        """How many draws were attempted through this wrapper."""
        return self._draws

    def sample(self, size, rng=None):
        """Delegate one draw, unless this draw index is scheduled to fail."""
        index = self._draws
        self._draws += 1
        if index in self._fail_at:
            raise InjectedFaultError(
                f"injected source fault on draw {index} (size {size})"
            )
        return self._source.sample(size, rng)
