"""Deprecation plumbing for the PR-1 seed-compat one-shot shims.

The classic module-level entry points (``learn_histogram``,
``test_k_histogram_l2`` / ``test_k_histogram_l1``, ``estimate_min_k``)
were kept through the session refactor as seed-compatible shims; every
internal caller now rides :class:`repro.api.HistogramSession` /
:class:`repro.api.HistogramFleet`, which share draws and sketches across
calls.  The shims still work — and a *fresh* session's first operation
remains seed-for-seed identical to them — but new code should not grow
on them, so they warn.
"""

from __future__ import annotations

import warnings


def warn_one_shot_shim(name: str, replacement: str) -> None:
    """Emit the standard one-shot-shim deprecation warning."""
    warnings.warn(
        f"the {name} one-shot entry point is deprecated; use {replacement} "
        "(one draw, shared sketches; a fresh session's first operation is "
        "seed-identical to this call)",
        DeprecationWarning,
        stacklevel=3,
    )
