"""Synthetic database columns.

The paper motivates histograms with "data attributes (e.g., employees age
or salary) in databases"; these generators produce such columns as integer
arrays over ``[0, n)``, ready for :class:`repro.distributions.EmpiricalDistribution`.

Each function returns ``(values, n)`` where ``values`` is the column and
``n`` the domain size.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.rng import as_rng


def _check(rows: int) -> None:
    if rows < 1:
        raise InvalidParameterError(f"rows must be >= 1, got {rows}")


def salaries_column(
    rows: int, n: int = 2048, rng: "int | None | np.random.Generator" = None
) -> tuple[np.ndarray, int]:
    """Log-normal salaries bucketed to ``n`` bands.

    The classic right-skewed attribute: most rows land in a narrow band,
    a long tail of large values follows.
    """
    _check(rows)
    generator = as_rng(rng)
    raw = generator.lognormal(mean=11.0, sigma=0.5, size=rows)
    scaled = np.clip(raw / 300_000.0, 0.0, 1.0 - 1e-12)
    return (scaled * n).astype(np.int64), n


def ages_column(
    rows: int, n: int = 128, rng: "int | None | np.random.Generator" = None
) -> tuple[np.ndarray, int]:
    """Employee ages: a truncated bimodal mixture (new hires + veterans)."""
    _check(rows)
    generator = as_rng(rng)
    young = generator.normal(28, 5, size=rows // 2)
    older = generator.normal(48, 8, size=rows - rows // 2)
    ages = np.clip(np.concatenate([young, older]), 0, n - 1)
    generator.shuffle(ages)
    return ages.astype(np.int64), n


def product_popularity_column(
    rows: int,
    n: int = 4096,
    exponent: float = 1.1,
    rng: "int | None | np.random.Generator" = None,
) -> tuple[np.ndarray, int]:
    """Product ids drawn with Zipfian popularity (heavy head, long tail)."""
    _check(rows)
    if exponent <= 0:
        raise InvalidParameterError(f"exponent must be > 0, got {exponent}")
    generator = as_rng(rng)
    weights = np.arange(1, n + 1, dtype=np.float64) ** (-exponent)
    pmf = weights / weights.sum()
    cdf = np.cumsum(pmf)
    cdf[-1] = 1.0
    return np.searchsorted(cdf, generator.random(rows), side="right").astype(
        np.int64
    ), n


def sensor_readings_column(
    rows: int, n: int = 1024, rng: "int | None | np.random.Generator" = None
) -> tuple[np.ndarray, int]:
    """Quantised sensor values: flat operating bands with step changes.

    This column genuinely is a coarse histogram (plus sampling noise), so
    the paper's tester should accept it at small ``k`` — used by the
    model-selection example.
    """
    _check(rows)
    generator = as_rng(rng)
    bands = np.array([0.05, 0.45, 0.3, 0.2])
    edges = (n * np.array([0.0, 0.3, 0.55, 0.8, 1.0])).astype(np.int64)
    band_of_row = generator.choice(4, size=rows, p=bands / bands.sum())
    lo = edges[band_of_row]
    hi = edges[band_of_row + 1]
    return (lo + (generator.random(rows) * (hi - lo)).astype(np.int64)), n
