"""Synthetic database columns for the examples and application benchmarks."""

from repro.datasets.synthetic import (
    ages_column,
    product_popularity_column,
    salaries_column,
    sensor_readings_column,
)

__all__ = [
    "ages_column",
    "product_popularity_column",
    "salaries_column",
    "sensor_readings_column",
]
