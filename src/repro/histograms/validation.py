"""Shared validation helpers for histogram constructors."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidHistogramError, InvalidParameterError


def validate_domain_size(n: int) -> int:
    """Check that the domain size ``n`` is a positive integer and return it."""
    if int(n) != n or n <= 0:
        raise InvalidParameterError(f"domain size n must be a positive integer, got {n!r}")
    return int(n)


def validate_boundaries(boundaries: np.ndarray, n: int) -> np.ndarray:
    """Validate tiling boundaries ``0 = b_0 < b_1 < ... < b_k = n``.

    Returns the boundaries as an ``int64`` array.  Raises
    :class:`InvalidHistogramError` on any violation.
    """
    bounds = np.asarray(boundaries, dtype=np.int64)
    if bounds.ndim != 1 or bounds.shape[0] < 2:
        raise InvalidHistogramError(
            f"boundaries must be a 1-d array with >= 2 entries, got shape {bounds.shape}"
        )
    if bounds[0] != 0 or bounds[-1] != n:
        raise InvalidHistogramError(
            f"boundaries must start at 0 and end at n={n}, got {bounds[0]}..{bounds[-1]}"
        )
    if np.any(np.diff(bounds) <= 0):
        raise InvalidHistogramError("boundaries must be strictly increasing")
    return bounds


def validate_values(values: np.ndarray, num_pieces: int) -> np.ndarray:
    """Validate per-piece values: finite, non-negative, one per piece."""
    vals = np.asarray(values, dtype=np.float64)
    if vals.shape != (num_pieces,):
        raise InvalidHistogramError(
            f"expected {num_pieces} values, got shape {vals.shape}"
        )
    if not np.all(np.isfinite(vals)):
        raise InvalidHistogramError("histogram values must be finite")
    if np.any(vals < 0):
        raise InvalidHistogramError("histogram values must be non-negative")
    return vals
