"""Histogram representations from Section 1.1 of the paper.

Two classes of histograms are defined:

* :class:`TilingHistogram` — disjoint intervals covering the whole domain
  (the representation the paper's testers decide membership for);
* :class:`PriorityHistogram` — possibly overlapping intervals where the
  highest-priority interval wins (the representation the greedy learner
  outputs).

A priority k-histogram flattens to a tiling histogram with at most
``2k + 1`` pieces (Section 1.1); :meth:`PriorityHistogram.to_tiling`
realises that conversion.
"""

from repro.histograms.compact import compact
from repro.histograms.fit import best_fit_values, refit
from repro.histograms.intervals import Interval, overlap_length
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram
from repro.histograms.validation import (
    validate_boundaries,
    validate_domain_size,
    validate_values,
)

__all__ = [
    "Interval",
    "PriorityHistogram",
    "TilingHistogram",
    "best_fit_values",
    "compact",
    "overlap_length",
    "refit",
    "validate_boundaries",
    "validate_domain_size",
    "validate_values",
]
