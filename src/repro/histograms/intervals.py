"""Half-open integer intervals over the domain ``[0, n)``.

The paper works with 1-based closed intervals ``[a, b] subseteq [n]``; the
library uses 0-based half-open intervals ``[start, stop)`` (Python slice
convention).  The translation is ``[a, b] -> Interval(a - 1, b)``, available
as :meth:`Interval.from_closed` for code that follows the paper line by
line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidIntervalError


@dataclass(frozen=True, order=True)
class Interval:
    """A non-empty half-open interval ``[start, stop)`` of integers.

    Instances are immutable, hashable and ordered lexicographically by
    ``(start, stop)``, so they can be used as dictionary keys and sorted
    into tilings.
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise InvalidIntervalError(f"start must be >= 0, got {self.start}")
        if self.stop <= self.start:
            raise InvalidIntervalError(
                f"interval [{self.start}, {self.stop}) is empty or reversed"
            )

    @classmethod
    def from_closed(cls, low: int, high: int) -> "Interval":
        """Build from a 0-based *closed* interval ``[low, high]``."""
        return cls(low, high + 1)

    @property
    def length(self) -> int:
        """Number of domain points covered (``|I|`` in the paper)."""
        return self.stop - self.start

    def contains(self, point: int) -> bool:
        """Whether ``point`` lies in ``[start, stop)``."""
        return self.start <= point < self.stop

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is entirely inside this interval."""
        return self.start <= other.start and other.stop <= self.stop

    def intersects(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        return self.start < other.stop and other.start < self.stop

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping interval, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if stop <= start:
            return None
        return Interval(start, stop)

    def difference(self, other: "Interval") -> "list[Interval]":
        """The (0, 1 or 2) maximal sub-intervals of ``self`` outside ``other``."""
        pieces: list[Interval] = []
        if other.start > self.start:
            pieces.append(Interval(self.start, min(other.start, self.stop)))
        if other.stop < self.stop:
            pieces.append(Interval(max(other.stop, self.start), self.stop))
        # When ``other`` is disjoint from ``self`` the two clauses above can
        # both produce ``self``; deduplicate that degenerate case.
        if len(pieces) == 2 and pieces[0] == pieces[1]:
            return [pieces[0]]
        return pieces

    def is_adjacent_to(self, other: "Interval") -> bool:
        """Whether the intervals touch end-to-end without overlapping."""
        return self.stop == other.start or other.stop == self.start

    def as_slice(self) -> slice:
        """The equivalent :class:`slice` for indexing numpy arrays."""
        return slice(self.start, self.stop)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.start}, {self.stop})"


def overlap_length(a: Interval, b: Interval) -> int:
    """Number of points shared by ``a`` and ``b`` (0 when disjoint)."""
    return max(0, min(a.stop, b.stop) - max(a.start, b.start))
