"""Best-fit piece values for a fixed partition.

For a fixed interval ``I`` the constant ``v`` minimising
``sum_{i in I} (p_i - v)^2`` is the mean of ``p`` over ``I`` (the paper uses
this as ``p(I)/|I|``, e.g. around Eq. 11), and the constant minimising
``sum_{i in I} |p_i - v|`` is the median.  These projections turn a
partition into the optimal histogram for that partition, and are the
building block of the v-optimal dynamic program.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.histograms.tiling import TilingHistogram

_NORMS = ("l1", "l2")


def best_fit_values(
    pmf: np.ndarray, boundaries: np.ndarray, norm: str = "l2"
) -> np.ndarray:
    """Optimal per-piece values of ``pmf`` for the given partition.

    Parameters
    ----------
    pmf:
        Dense probability vector of length ``n``.
    boundaries:
        Partition boundaries ``0 = b_0 < ... < b_k = n``.
    norm:
        ``"l2"`` (piece mean) or ``"l1"`` (piece median).
    """
    if norm not in _NORMS:
        raise InvalidParameterError(f"norm must be one of {_NORMS}, got {norm!r}")
    pmf = np.asarray(pmf, dtype=np.float64)
    bounds = np.asarray(boundaries, dtype=np.int64)
    values = np.empty(bounds.shape[0] - 1, dtype=np.float64)
    if norm == "l2":
        prefix = np.concatenate(([0.0], np.cumsum(pmf)))
        masses = prefix[bounds[1:]] - prefix[bounds[:-1]]
        lengths = np.diff(bounds)
        values[:] = masses / lengths
    else:
        for j in range(values.shape[0]):
            values[j] = np.median(pmf[bounds[j] : bounds[j + 1]])
    return values


def refit(
    histogram: TilingHistogram, pmf: np.ndarray, norm: str = "l2"
) -> TilingHistogram:
    """Replace a histogram's values by the best fit to ``pmf``.

    Keeps the partition, recomputes values by :func:`best_fit_values`.
    Useful for measuring how much of a learner's error comes from boundary
    placement versus value estimation.
    """
    values = best_fit_values(pmf, histogram.boundaries, norm=norm)
    return TilingHistogram(histogram.n, histogram.boundaries, values)
