"""Priority histograms: overlapping intervals, highest priority wins.

A priority k-histogram (paper Section 1.1, class 2) is a list
``(I_1, v_1, r_1) ... (I_k, v_k, r_k)``; ``H(t)`` is the value of the
interval with the largest priority containing ``t``, or 0 when no interval
covers ``t``.  This is the output representation of the greedy learner
(paper Algorithm 1): each greedy round pushes intervals with a fresh,
strictly larger priority.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidHistogramError
from repro.histograms.intervals import Interval
from repro.histograms.tiling import TilingHistogram
from repro.histograms.validation import validate_domain_size


@dataclass(frozen=True)
class PriorityPiece:
    """One entry ``(interval, value, priority)`` of a priority histogram."""

    interval: Interval
    value: float
    priority: int

    def __post_init__(self) -> None:
        if not np.isfinite(self.value) or self.value < 0:
            raise InvalidHistogramError(
                f"piece value must be finite and non-negative, got {self.value}"
            )


class PriorityHistogram:
    """A mutable priority histogram over ``[0, n)``.

    Use :meth:`add` to push pieces (priorities are assigned automatically,
    ``r_max + 1`` as in Algorithm 1) and :meth:`to_tiling` to flatten into
    the equivalent tiling histogram.  The flattened form of a priority
    k-histogram has at most ``2k + 1`` pieces (Section 1.1; the ``+ 1``
    accounts for the implicit zero-valued background).
    """

    def __init__(self, n: int) -> None:
        self._n = validate_domain_size(n)
        self._pieces: list[PriorityPiece] = []

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    @property
    def num_pieces(self) -> int:
        """Number of stored (interval, value, priority) entries."""
        return len(self._pieces)

    def pieces(self) -> Iterator[PriorityPiece]:
        """Iterate over the stored pieces in insertion order."""
        return iter(self._pieces)

    @property
    def max_priority(self) -> int:
        """The largest priority currently stored (0 when empty)."""
        if not self._pieces:
            return 0
        return max(piece.priority for piece in self._pieces)

    def add(
        self, interval: Interval, value: float, priority: int | None = None
    ) -> PriorityPiece:
        """Push a piece; defaults to priority ``r_max + 1`` (Algorithm 1).

        Returns the stored :class:`PriorityPiece`.
        """
        if interval.stop > self._n:
            raise InvalidHistogramError(
                f"interval {interval} exceeds the domain [0, {self._n})"
            )
        if priority is None:
            priority = self.max_priority + 1
        piece = PriorityPiece(interval, float(value), int(priority))
        self._pieces.append(piece)
        return piece

    def add_many(
        self, pieces: Sequence[tuple[Interval, float]], priority: int | None = None
    ) -> None:
        """Push several pieces sharing one priority level.

        Algorithm 1 adds ``(J, y_J)`` together with its recomputed
        neighbours ``(I_L, y_IL)`` and ``(I_R, y_IR)`` at the *same*
        priority; this helper mirrors that step.
        """
        if priority is None:
            priority = self.max_priority + 1
        for interval, value in pieces:
            self.add(interval, value, priority)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def value_at(self, points: int | np.ndarray) -> float | np.ndarray:
        """Evaluate ``H`` at one point or an array of points.

        The value is taken from the highest-priority covering interval
        (ties broken towards the most recently inserted piece, matching the
        paper's "largest index" rule); uncovered points evaluate to 0.
        """
        pts = np.atleast_1d(np.asarray(points))
        if np.any((pts < 0) | (pts >= self._n)):
            raise InvalidHistogramError(
                f"evaluation points must lie in [0, {self._n})"
            )
        result = np.zeros(pts.shape, dtype=np.float64)
        best = np.full(pts.shape, -1, dtype=np.int64)
        for index, piece in enumerate(self._pieces):
            covered = (pts >= piece.interval.start) & (pts < piece.interval.stop)
            # Insertion order breaks priority ties ("largest index" rule),
            # so compare (priority, index) lexicographically.
            rank = piece.priority * (len(self._pieces) + 1) + index
            take = covered & (rank > best)
            result[take] = piece.value
            best[take] = rank
        if np.isscalar(points) or getattr(points, "ndim", 1) == 0:
            return float(result[0])
        return result

    def to_pmf(self) -> np.ndarray:
        """Expand to a dense length-``n`` vector of per-element values."""
        return self.to_tiling().to_pmf()

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #

    def to_tiling(self) -> TilingHistogram:
        """Flatten to the equivalent tiling histogram.

        Pieces are replayed in increasing ``(priority, insertion index)``
        order onto a boundary set; the visible value of each resulting
        segment is the last piece painted over it.  Uncovered segments get
        value 0.  The output is canonicalised (adjacent equal values are
        merged), which realises the "tiling 2k-histogram" bound of
        Section 1.1.
        """
        cuts = {0, self._n}
        for piece in self._pieces:
            cuts.add(piece.interval.start)
            cuts.add(piece.interval.stop)
        boundaries = np.array(sorted(cuts), dtype=np.int64)
        seg_values = np.zeros(boundaries.shape[0] - 1, dtype=np.float64)
        order = sorted(
            range(len(self._pieces)),
            key=lambda i: (self._pieces[i].priority, i),
        )
        for index in order:
            piece = self._pieces[index]
            lo = np.searchsorted(boundaries, piece.interval.start)
            hi = np.searchsorted(boundaries, piece.interval.stop)
            seg_values[lo:hi] = piece.value
        return TilingHistogram(self._n, boundaries, seg_values).canonical()

    @classmethod
    def from_tiling(cls, tiling: TilingHistogram) -> "PriorityHistogram":
        """Wrap a tiling histogram as a priority histogram (priority 1)."""
        hist = cls(tiling.n)
        hist.add_many(list(tiling.pieces()), priority=1)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PriorityHistogram(n={self._n}, pieces={self.num_pieces})"
