"""Tiling histograms: disjoint intervals covering the whole domain.

A tiling k-histogram (paper Section 1.1, class 1) is a piecewise-constant
function ``H : [0, n) -> [0, 1]`` represented by boundaries
``0 = b_0 < b_1 < ... < b_k = n`` and one value per piece; ``H(t)`` is the
value of the piece whose half-open interval contains ``t``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import InvalidHistogramError
from repro.histograms.intervals import Interval
from repro.histograms.validation import (
    validate_boundaries,
    validate_domain_size,
    validate_values,
)


class TilingHistogram:
    """A piecewise-constant function over ``[0, n)`` with ``k`` pieces.

    Values are per-element densities: a piece with value ``v`` on interval
    ``I`` assigns probability mass ``v * |I|`` to ``I``.

    Parameters
    ----------
    n:
        Domain size.
    boundaries:
        ``k + 1`` strictly increasing integers starting at 0, ending at n.
    values:
        ``k`` non-negative finite floats, one per piece.
    """

    __slots__ = ("_n", "_boundaries", "_values")

    def __init__(
        self,
        n: int,
        boundaries: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> None:
        self._n = validate_domain_size(n)
        self._boundaries = validate_boundaries(np.asarray(boundaries), self._n)
        self._values = validate_values(
            np.asarray(values), self._boundaries.shape[0] - 1
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(cls, n: int) -> "TilingHistogram":
        """The 1-histogram of the uniform distribution over ``[0, n)``."""
        return cls(n, [0, n], [1.0 / n])

    @classmethod
    def from_pieces(
        cls, n: int, pieces: Sequence[tuple[Interval, float]]
    ) -> "TilingHistogram":
        """Build from ``(interval, value)`` pairs that must tile ``[0, n)``.

        Raises :class:`InvalidHistogramError` if the intervals overlap or
        leave part of the domain uncovered.
        """
        if not pieces:
            raise InvalidHistogramError("a tiling histogram needs at least one piece")
        ordered = sorted(pieces, key=lambda piece: piece[0].start)
        boundaries = [0]
        values = []
        cursor = 0
        for interval, value in ordered:
            if interval.start != cursor:
                raise InvalidHistogramError(
                    f"tiling gap or overlap at position {cursor}: next interval "
                    f"starts at {interval.start}"
                )
            boundaries.append(interval.stop)
            values.append(value)
            cursor = interval.stop
        if cursor != n:
            raise InvalidHistogramError(
                f"tiling covers [0, {cursor}) but the domain is [0, {n})"
            )
        return cls(n, boundaries, values)

    @classmethod
    def from_pmf(cls, pmf: np.ndarray) -> "TilingHistogram":
        """Exact (up to ``n``-piece) representation of a probability vector.

        Adjacent equal entries are merged, so the result has one piece per
        maximal run of equal values.
        """
        pmf = np.asarray(pmf, dtype=np.float64)
        n = pmf.shape[0]
        change = np.flatnonzero(np.diff(pmf)) + 1
        boundaries = np.concatenate(([0], change, [n]))
        values = pmf[boundaries[:-1]]
        return cls(n, boundaries, values)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Domain size."""
        return self._n

    @property
    def num_pieces(self) -> int:
        """Number of constant pieces ``k``."""
        return self._values.shape[0]

    @property
    def boundaries(self) -> np.ndarray:
        """The ``k + 1`` piece boundaries (read-only view)."""
        view = self._boundaries.view()
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """The ``k`` per-element piece values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def intervals(self) -> Iterator[Interval]:
        """Iterate over the pieces as :class:`Interval` objects."""
        for start, stop in zip(self._boundaries[:-1], self._boundaries[1:]):
            yield Interval(int(start), int(stop))

    def pieces(self) -> Iterator[tuple[Interval, float]]:
        """Iterate over ``(interval, value)`` pairs."""
        for interval, value in zip(self.intervals(), self._values):
            yield interval, float(value)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def value_at(self, points: int | np.ndarray) -> float | np.ndarray:
        """Evaluate ``H`` at one point or an array of points."""
        pts = np.asarray(points)
        if np.any((pts < 0) | (pts >= self._n)):
            raise InvalidHistogramError(
                f"evaluation points must lie in [0, {self._n})"
            )
        idx = np.searchsorted(self._boundaries, pts, side="right") - 1
        result = self._values[idx]
        if np.isscalar(points) or getattr(points, "ndim", 1) == 0:
            return float(result)
        return result

    def to_pmf(self) -> np.ndarray:
        """Expand to a dense length-``n`` vector of per-element values."""
        return np.repeat(self._values, np.diff(self._boundaries))

    def total_mass(self) -> float:
        """Total mass ``sum_t H(t)`` (1.0 for a distribution)."""
        lengths = np.diff(self._boundaries)
        return float(np.dot(self._values, lengths))

    def is_distribution(self, atol: float = 1e-9) -> bool:
        """Whether the histogram is a probability distribution."""
        return abs(self.total_mass() - 1.0) <= atol

    def normalized(self) -> "TilingHistogram":
        """Rescale values so the total mass is exactly 1.

        Raises :class:`InvalidHistogramError` when the histogram has zero
        mass (there is nothing to normalise).
        """
        mass = self.total_mass()
        if mass <= 0:
            raise InvalidHistogramError("cannot normalise a zero-mass histogram")
        return TilingHistogram(self._n, self._boundaries, self._values / mass)

    def range_mass(self, interval: Interval) -> float:
        """Mass assigned to ``interval`` (the selectivity-estimation kernel).

        Computed piece-by-piece as ``sum(value * overlap_length)`` without
        materialising the dense pmf.
        """
        if interval.stop > self._n:
            raise InvalidHistogramError(
                f"query interval {interval} exceeds the domain [0, {self._n})"
            )
        bounds = self._boundaries
        lo = np.searchsorted(bounds, interval.start, side="right") - 1
        hi = np.searchsorted(bounds, interval.stop, side="left")
        starts = np.maximum(bounds[lo:hi], interval.start)
        stops = np.minimum(bounds[lo + 1 : hi + 1], interval.stop)
        overlap = np.maximum(stops - starts, 0)
        return float(np.dot(self._values[lo:hi], overlap))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def canonical(self) -> "TilingHistogram":
        """Merge adjacent pieces with equal values (minimal representation)."""
        keep = np.flatnonzero(np.diff(self._values)) + 1
        boundaries = np.concatenate(
            ([0], self._boundaries[keep], [self._n])
        )
        values = self._values[np.concatenate(([0], keep))]
        return TilingHistogram(self._n, boundaries, values)

    def restrict_values(self) -> np.ndarray:
        """Alias for :meth:`values` kept for symmetry with the paper text."""
        return self.values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TilingHistogram):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._boundaries, other._boundaries)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._boundaries.tobytes(), self._values.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TilingHistogram(n={self._n}, pieces={self.num_pieces}, "
            f"mass={self.total_mass():.4f})"
        )
