"""Compacting histograms to an exact piece budget.

The greedy learner outputs up to ``2 q + 1 = O(k log(1/eps))`` visible
pieces (a priority k-histogram flattens to at most ``2k + 1`` tiles).
When a caller needs *exactly* ``k`` pieces — e.g. a fixed-size catalog
slot — the learned histogram can be re-partitioned optimally over its own
segment boundaries: a dynamic program over ``M`` segments instead of
``n`` points, so the cost is ``O(M^2 k)`` with ``M << n``.

This is an extension beyond the paper (README.md "Experiments", T7 discusses it); it
uses the learned histogram itself as the proxy distribution, so no new
samples are needed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.histograms.tiling import TilingHistogram


def compact(histogram: TilingHistogram, k: int) -> TilingHistogram:
    """The best k-piece approximation of ``histogram`` (squared l2).

    Merges adjacent pieces optimally: the output's boundaries are a
    subset of the input's, values are mass-preserving piece means, and
    the squared-l2 distance to the input is minimal among all such
    coarsenings.  Returns the input unchanged when it already fits.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    segments = histogram.num_pieces
    if segments <= k:
        return histogram

    bounds = histogram.boundaries
    values = histogram.values
    lengths = np.diff(bounds).astype(np.float64)
    masses = values * lengths
    mass_prefix = np.concatenate(([0.0], np.cumsum(masses)))
    sq_prefix = np.concatenate(([0.0], np.cumsum(values * values * lengths)))
    len_prefix = np.concatenate(([0.0], np.cumsum(lengths)))

    def costs_into(t: int) -> np.ndarray:
        """Merge cost of segments [s, t) into one piece, for all s < t."""
        s = np.arange(t)
        mass = mass_prefix[t] - mass_prefix[s]
        length = len_prefix[t] - len_prefix[s]
        return sq_prefix[t] - sq_prefix[s] - (mass * mass) / length

    inf = np.inf
    best = np.full(segments + 1, inf)
    best[0] = 0.0
    parents = np.zeros((k, segments + 1), dtype=np.int64)
    for j in range(k):
        nxt = np.full(segments + 1, inf)
        for t in range(j + 1, segments - (k - j - 1) + 1):
            candidates = best[:t] + costs_into(t)
            s = int(np.argmin(candidates))
            nxt[t] = candidates[s]
            parents[j, t] = s
        best = nxt

    cut_indices = np.empty(k + 1, dtype=np.int64)
    cut_indices[k] = segments
    for j in range(k - 1, -1, -1):
        cut_indices[j] = parents[j, cut_indices[j + 1]]
    new_bounds = bounds[cut_indices]
    new_lengths = np.diff(new_bounds).astype(np.float64)
    new_masses = mass_prefix[cut_indices[1:]] - mass_prefix[cut_indices[:-1]]
    return TilingHistogram(histogram.n, new_bounds, new_masses / new_lengths)
