"""Maintain k-histogram summaries over a fleet of parallel streams.

The single-stream :class:`~repro.streaming.StreamingHistogramMaintainer`
pairs one reservoir with one facade session; a serving deployment
watches many streams over one shared domain.  :class:`FleetMaintainer`
keeps one reservoir per stream and drives them all through a
:class:`~repro.api.HistogramFleet`, so rebuilds, tester probes, and
min-k sweeps run fleet-batched (one compile pass, lockstep searches)
instead of stream-by-stream.

Invalidation is lazy and per member: absorbing items into one stream's
reservoir marks only that member stale, and the next fleet operation
re-draws and recompiles just the stale members — the quiet streams keep
their pools, compiled slabs, and verdict memos.
"""

from __future__ import annotations

import numpy as np

from repro.api.fleet import HistogramFleet
from repro.core.identity import IdentityResult, test_identity_l2_on_sketch
from repro.core.params import GreedyParams, TesterParams
from repro.core.results import LearnResult, TestResult, UniformityResult
from repro.core.selection import SelectionResult
from repro.core.uniformity import test_uniformity_on_sketch
from repro.errors import EmptyStreamError, InvalidParameterError
from repro.histograms.intervals import Interval
from repro.histograms.tiling import TilingHistogram
from repro.streaming.reservoir import ReservoirSampler
from repro.utils.rng import spawn_rngs


class FleetMaintainer:
    """K-histogram summaries of ``F`` streams of values from ``[0, n)``.

    Parameters
    ----------
    fleet_size:
        Number of streams ``F``.
    n / k / epsilon:
        As in :class:`~repro.streaming.StreamingHistogramMaintainer`,
        shared by every stream.
    refresh_every:
        Rebuild a member's histogram after this many new items on that
        member (default ``4 * reservoir_capacity``).
    reservoir_capacity:
        Per-stream reservoir size (default 4096).
    params:
        Explicit learner sizes; defaults to a budget matched to the
        reservoir, as in the single-stream maintainer.
    engine / tester_engine:
        Forwarded to the fleet (learner scoring / flatness engines);
        rebuild waves default to the fleet's batched ``"lockstep"``
        learner, byte-identical to the serial engines.
    rng:
        Base seed; one independent child generator is spawned per
        stream (reservoir and session draws share it, mirroring the
        single-stream maintainer).
    executor:
        Optional :class:`repro.api.ParallelExecutor` forwarded to the
        fleet.  Reservoirs feed the shard slabs directly: a refresh
        touches only the dirty members' slabs (the quiet streams'
        compiled state never recompiles), and those dirty recompiles
        fan across the executor's workers.  Byte-identical results; the
        caller owns the executor.
    """

    def __init__(
        self,
        fleet_size: int,
        n: int,
        k: int,
        epsilon: float = 0.25,
        *,
        refresh_every: int | None = None,
        reservoir_capacity: int = 4096,
        params: GreedyParams | None = None,
        engine: str = "lockstep",
        tester_engine: str = "compiled",
        rng: "int | None | np.random.Generator" = None,
        executor: "object | None" = None,
    ) -> None:
        if fleet_size < 1:
            raise InvalidParameterError(
                f"fleet_size must be >= 1, got {fleet_size}"
            )
        if n < 1 or k < 1:
            raise InvalidParameterError(f"need n >= 1 and k >= 1, got n={n}, k={k}")
        self._n = int(n)
        self._k = int(k)
        self._epsilon = float(epsilon)
        rngs = spawn_rngs(rng, fleet_size)
        self._reservoirs = [
            ReservoirSampler(reservoir_capacity, member_rng) for member_rng in rngs
        ]
        self._refresh_every = (
            int(refresh_every) if refresh_every is not None else 4 * reservoir_capacity
        )
        if self._refresh_every < 1:
            raise InvalidParameterError("refresh_every must be >= 1")
        if params is None:
            budget = reservoir_capacity
            params = GreedyParams(
                weight_sample_size=max(budget // 2, 16),
                collision_sets=5,
                collision_set_size=max(budget // 4, 16),
                rounds=max(self._k, 2),
            )
        self._params = params
        self._fleet = HistogramFleet(
            self._reservoirs,
            self._n,
            rngs=rngs,
            method="fast",
            engine=engine,
            tester_engine=tester_engine,
            executor=executor,
        )
        self._items_seen = [0] * fleet_size
        self._since_rebuild = [0] * fleet_size
        self._stale = [False] * fleet_size
        self._rebuilds = 0
        self._histograms: list[TilingHistogram | None] = [None] * fleet_size
        # Maintainer-level mutation counters: reservoir intake and stored
        # -histogram commits, which the fleet's bundle epochs cannot see.
        self._mutations = [0] * fleet_size

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def fleet_size(self) -> int:
        """Number of streams ``F``."""
        return len(self._reservoirs)

    @property
    def items_seen(self) -> list[int]:
        """Per-member total stream items observed."""
        return list(self._items_seen)

    @property
    def rebuilds(self) -> int:
        """How many greedy rebuilds have run (fleet-wide)."""
        return self._rebuilds

    @property
    def ready(self) -> list[bool]:
        """Per-stream flag: has this stream absorbed any observation?

        Probing a not-ready stream raises :class:`EmptyStreamError`; a
        serving layer checks here first so one quiet stream turns into a
        structured per-request error instead of poisoning its batch.
        """
        return [reservoir.size > 0 for reservoir in self._reservoirs]

    @property
    def fleet(self) -> HistogramFleet:
        """The underlying fleet facade (pools, caches, diagnostics)."""
        return self._fleet

    def generation(self, member: int) -> int:
        """Stream ``member``'s mutation epoch.

        The sum of the maintainer's own mutation counter (reservoir
        intake, stored-histogram commits) and the member bundle's epoch
        (pool growth, compiles, invalidation, restore).  Both addends
        are monotonic, so the sum is too: equal generations bracket a
        span in which nothing about the member's retained state changed,
        which is what response caches and differential checkpoints key
        on.
        """
        self._check_member(member)
        return self._mutations[member] + self._fleet.generation(member)

    @property
    def generations(self) -> list[int]:
        """Per-stream mutation epochs (see :meth:`generation`)."""
        return [
            self._mutations[f] + self._fleet.generation(f)
            for f in range(self.fleet_size)
        ]

    def _check_member(self, member: int) -> None:
        if not 0 <= member < self.fleet_size:
            raise InvalidParameterError(
                f"member must be in [0, {self.fleet_size}), got {member}"
            )

    def _probe_members(self, members: "list[int] | None") -> list[int]:
        """Validate a probe's member subset and its streams' readiness.

        Probing a stream before its first observation is an
        :class:`EmptyStreamError`; pass ``members=`` to probe the ready
        subset of a fleet whose other streams are still quiet.
        """
        if members is None:
            members = list(range(self.fleet_size))
        else:
            members = [int(member) for member in members]
            for member in members:
                self._check_member(member)
        empty = [f for f in members if self._reservoirs[f].size == 0]
        if empty:
            raise EmptyStreamError(
                f"streams {empty} have no observations yet; update() them "
                "first (or probe with members= excluding them)"
            )
        return members

    # -------------------------------------------------------------- #
    # persistence
    # -------------------------------------------------------------- #

    def snapshot(self, path) -> None:
        """Checkpoint the whole maintainer to one snapshot file.

        Covers every layer a warm restart needs: per-stream reservoirs
        and intake counters, stored histograms, staleness flags, and the
        fleet's full warm state (pools, compiled slabs, verdict memos,
        rng states).  Crash-safe: a kill mid-write leaves the previous
        snapshot generation untouched.
        """
        from repro.persist import codec, format as persist_format

        meta, slabs = codec.maintainer_state(self)
        persist_format.write_snapshot(
            path, kind="maintainer", meta=meta, slabs=slabs
        )

    def restore(self, path) -> None:
        """Warm-start a freshly constructed maintainer from a snapshot.

        The maintainer must be configured exactly as the snapshotted one
        (``fleet_size``, ``n``, ``k``, ``epsilon``, reservoir capacity,
        refresh cadence, learner budget); a restored maintainer then
        answers byte-identical responses to the live instance the
        snapshot was taken from.  Any mismatch or file defect raises
        :class:`~repro.errors.SnapshotError`; the instance remains
        usable cold.
        """
        from repro.persist import codec, format as persist_format

        snap = persist_format.load_snapshot(path, kind="maintainer")
        codec.restore_maintainer(self, snap.meta, snap.slab)

    # -------------------------------------------------------------- #
    # stream intake
    # -------------------------------------------------------------- #

    def update(self, member: int, value: int) -> None:
        """Observe one item on stream ``member``."""
        self._check_member(member)
        if not 0 <= value < self._n:
            raise InvalidParameterError(
                f"stream value {value} outside the domain [0, {self._n})"
            )
        self._reservoirs[member].update(int(value))
        self._items_seen[member] += 1
        self._since_rebuild[member] += 1
        self._stale[member] = True
        self._mutations[member] += 1

    def update_many(self, member: int, values: np.ndarray) -> None:
        """Observe a batch of items on stream ``member``.

        The whole batch is validated up front — dtype and range, in one
        vectorised pass — so a bad batch raises a single
        :class:`InvalidParameterError` naming the member and the
        offending values *before* any item is absorbed (the reservoir
        never sees half a batch).
        """
        self._check_member(member)
        values = np.asarray(values)
        if values.dtype.kind not in "iu":
            raise InvalidParameterError(
                f"stream {member}: batch dtype must be integer, got "
                f"{values.dtype} (values are domain points in [0, {self._n}))"
            )
        if values.size and (values.min() < 0 or values.max() >= self._n):
            raise InvalidParameterError(
                f"stream {member}: batch values span "
                f"[{int(values.min())}, {int(values.max())}], outside the "
                f"domain [0, {self._n})"
            )
        self._reservoirs[member].update_many(values)
        self._items_seen[member] += int(values.size)
        self._since_rebuild[member] += int(values.size)
        self._stale[member] = True
        self._mutations[member] += 1

    def _sync(self) -> None:
        """Lazily drop stale members' pools before the next fleet op."""
        for member, stale in enumerate(self._stale):
            if stale:
                self._fleet.invalidate(member)
                self._stale[member] = False

    # -------------------------------------------------------------- #
    # summaries
    # -------------------------------------------------------------- #

    def histograms(self) -> list[TilingHistogram]:
        """Every stream's current summary, rebuilding due members.

        Members whose streams absorbed at least ``refresh_every`` items
        since their last rebuild (or that never built) relearn in one
        fleet-batched ``learn`` pass; fresh members keep their summary.
        """
        return self.histograms_for(None)

    def histograms_for(
        self, members: "list[int] | None" = None
    ) -> list[TilingHistogram]:
        """Current summaries for a member subset, in the listed order.

        Due members of the subset (never built, or at least
        ``refresh_every`` items since their last rebuild) relearn in one
        fleet-batched ``learn(members=due)`` pass — a partial rebuild
        pays greedy rounds only for the due streams while still sharing
        the fleet's pooled draws and stacked compile; fresh members keep
        their summary untouched.  This is the entry point selectivity
        serving batches ride.
        """
        members = self._probe_members(members)
        due = [
            f
            for f in members
            if self._histograms[f] is None
            or self._since_rebuild[f] >= self._refresh_every
        ]
        if due:
            self._sync()
            results = self._fleet.learn(
                self._k, self._epsilon, params=self._params, members=due
            )
            for f, result in zip(due, results):
                self._histograms[f] = result.filled_histogram
                self._since_rebuild[f] = 0
                self._rebuilds += 1
                self._mutations[f] += 1
        return [self._histograms[f] for f in members]

    def histogram(self, member: int) -> TilingHistogram:
        """One stream's current summary (rebuilding lazily if needed)."""
        self._check_member(member)
        if self._reservoirs[member].size == 0:
            raise EmptyStreamError(
                f"stream {member} has no observations yet; update() it first"
            )
        if (
            self._histograms[member] is None
            or self._since_rebuild[member] >= self._refresh_every
        ):
            self._sync()
            session = self._fleet.session(member)
            result = session.learn(self._k, self._epsilon, params=self._params)
            self._histograms[member] = result.filled_histogram
            self._since_rebuild[member] = 0
            self._rebuilds += 1
            self._mutations[member] += 1
        return self._histograms[member]

    # -------------------------------------------------------------- #
    # testing the streams
    # -------------------------------------------------------------- #

    def _tester_params(self, params: TesterParams | None) -> TesterParams:
        if params is not None:
            return params
        # As in the single-stream maintainer: the reservoir cannot
        # support more independent information than it holds.
        return TesterParams(
            num_sets=5, set_size=max(self._reservoirs[0].capacity, 16)
        )

    def test(
        self,
        k: int | None = None,
        epsilon: float | None = None,
        *,
        norm: str = "l2",
        params: TesterParams | None = None,
        engine: str | None = None,
        members: "list[int] | None" = None,
    ) -> list[TestResult]:
        """Test every stream for tiling k-histogram structure, batched.

        Defaults to the maintainer's own ``(k, epsilon)``; one verdict
        per stream, in the listed member order (``members`` restricts
        the probe — e.g. to the ready subset while some streams are
        still quiet).  Repeated probes between stream updates share each
        member's draw, compiled slab, and verdict memo; only members
        that absorbed new items re-draw.
        """
        members = self._probe_members(members)
        if norm not in ("l1", "l2"):
            raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")
        k = self._k if k is None else int(k)
        epsilon = self._epsilon if epsilon is None else float(epsilon)
        self._sync()
        resolved = self._tester_params(params)
        runner = self._fleet.test_l2 if norm == "l2" else self._fleet.test_l1
        return runner(k, epsilon, params=resolved, engine=engine, members=members)

    def min_k(
        self,
        epsilon: float | None = None,
        *,
        max_k: int | None = None,
        norm: str = "l1",
        params: TesterParams | None = None,
        engine: str | None = None,
        members: "list[int] | None" = None,
    ) -> list[SelectionResult]:
        """Smallest credible bucket count per stream, batched.

        Shares each member's session budget (and verdict memo) with
        :meth:`test`, like the single-stream maintainer's probes.
        ``members`` restricts the sweep, as in :meth:`test`.
        """
        members = self._probe_members(members)
        epsilon = self._epsilon if epsilon is None else float(epsilon)
        self._sync()
        return self._fleet.min_k(
            epsilon,
            max_k=max_k,
            norm=norm,
            params=self._tester_params(params),
            engine=engine,
            members=members,
        )

    def learn(
        self,
        k: int | None = None,
        epsilon: float | None = None,
        *,
        params: GreedyParams | None = None,
        members: "list[int] | None" = None,
    ) -> list[LearnResult]:
        """Run the greedy learner *now* on a member subset, fleet-batched.

        Defaults to the maintainer's own ``(k, epsilon)``; an explicit
        pair learns at a different operating point without touching the
        maintainer's configuration.  When the pair *is* the configured
        one, each learned summary also refreshes that stream's stored
        histogram (and resets its rebuild counter) — this is the
        learn-after-failed-test path a serving client drives.
        """
        members = self._probe_members(members)
        k = self._k if k is None else int(k)
        epsilon = self._epsilon if epsilon is None else float(epsilon)
        self._sync()
        results = self._fleet.learn(
            k, epsilon, params=params if params is not None else self._params,
            members=members,
        )
        if k == self._k and epsilon == self._epsilon and params is None:
            for member, result in zip(members, results):
                self._histograms[member] = result.filled_histogram
                self._since_rebuild[member] = 0
                self._rebuilds += 1
                self._mutations[member] += 1
        return results

    def _probe_sketch(self, member: int, params: TesterParams):
        """One stream's first pooled tester set, sketched and cached.

        Uniformity and identity are whole-domain collision statistics —
        they read a single :class:`~repro.samples.collision.CollisionSketch`,
        not the ``r``-set flatness machinery — so the probe consumes the
        first set of the member's shared test-family pool.  The pool (and
        its cached :class:`~repro.samples.estimators.MultiSketch` build)
        is the same one :meth:`test` / :meth:`min_k` draw from, so these
        probes never cost a separate draw event.
        """
        bundle = self._fleet.session(member)._bundle
        multi = bundle.multi_sketch(params)
        return multi.sketches[0], bundle.tester_sets(params)[0]

    def uniformity(
        self,
        epsilon: float | None = None,
        *,
        params: TesterParams | None = None,
        members: "list[int] | None" = None,
    ) -> list[UniformityResult]:
        """[GR00] uniformity verdict per stream, off the shared pool.

        The ``k = 1`` specialist: accepts iff the stream's collision
        probability sits at the uniform level.  One verdict per listed
        member; repeated probes between updates are O(1) per member
        (the sketch build is cached alongside the tester pool).
        """
        members = self._probe_members(members)
        epsilon = self._epsilon if epsilon is None else float(epsilon)
        self._sync()
        resolved = self._tester_params(params)
        return [
            test_uniformity_on_sketch(
                self._probe_sketch(member, resolved)[0], epsilon
            )
            for member in members
        ]

    def identity(
        self,
        reference: object,
        epsilon: float | None = None,
        *,
        params: TesterParams | None = None,
        members: "list[int] | None" = None,
    ) -> list[IdentityResult]:
        """l2 identity verdict per stream against an explicit reference.

        ``reference`` is the known ``q`` (pmf array, distribution, or
        histogram) shared by every probed member — the serving pattern
        is "which tenants still match the baseline profile?".  Reads
        the same cached whole-domain collision sketch as
        :meth:`uniformity`.
        """
        members = self._probe_members(members)
        epsilon = self._epsilon if epsilon is None else float(epsilon)
        self._sync()
        resolved = self._tester_params(params)
        results = []
        for member in members:
            sketch, samples = self._probe_sketch(member, resolved)
            results.append(
                test_identity_l2_on_sketch(sketch, samples, reference, epsilon)
            )
        return results

    def selectivity(
        self,
        start: int,
        stop: int,
        *,
        members: "list[int] | None" = None,
    ) -> list[float]:
        """Estimated mass of ``[start, stop)`` per stream's summary.

        Reads each stream's current histogram through
        :meth:`histograms_for`, so due members rebuild (fleet-batched)
        before answering; the range sum itself is a piece-overlap walk,
        no dense expansion.
        """
        start, stop = int(start), int(stop)
        if not 0 <= start < stop <= self._n:
            raise InvalidParameterError(
                f"selectivity range [{start}, {stop}) outside the domain "
                f"[0, {self._n})"
            )
        interval = Interval(start, stop)
        return [
            float(histogram.range_mass(interval))
            for histogram in self.histograms_for(members)
        ]
