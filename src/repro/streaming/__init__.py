"""Streaming histogram maintenance ([TGIK02] lineage).

The paper's greedy algorithm "is inspired by [the] streaming algorithm
in [TGIK02]" (dynamic multidimensional histograms).  This package closes
the loop: :class:`StreamingHistogramMaintainer` keeps a near-v-optimal
k-histogram over a stream of values by combining

* an exact uniform reservoir (Vitter's Algorithm R) over the stream, and
* periodic rebuilds with the paper's fast greedy learner driven by the
  reservoir.

:class:`FleetMaintainer` scales the same loop to many parallel streams
over one shared domain, batching rebuilds and tester probes through
:class:`repro.api.HistogramFleet` with lazy per-member invalidation.

Substrate/extension status is documented in README.md ("Design notes").
"""

from repro.streaming.fleet import FleetMaintainer
from repro.streaming.maintainer import StreamingHistogramMaintainer
from repro.streaming.reservoir import ReservoirSampler

__all__ = ["FleetMaintainer", "ReservoirSampler", "StreamingHistogramMaintainer"]
