"""Uniform reservoir sampling (Vitter's Algorithm R).

Maintains a uniform-without-replacement sample of a stream in O(1) per
item; the streaming histogram maintainer uses it as the sample source
for periodic greedy rebuilds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.rng import as_rng


class ReservoirSampler:
    """A fixed-capacity uniform sample over everything seen so far.

    After ``t`` updates, each of the ``t`` stream items is present in the
    reservoir with probability ``capacity / t`` (exactly, by induction) —
    the classical Algorithm R invariant.
    """

    def __init__(
        self,
        capacity: int,
        rng: "int | None | np.random.Generator" = None,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._rng = as_rng(rng)
        self._items = np.empty(capacity, dtype=np.int64)
        self._seen = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained items."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Total stream items observed."""
        return self._seen

    @property
    def size(self) -> int:
        """Items currently held (``min(seen, capacity)``)."""
        return min(self._seen, self._capacity)

    def update(self, value: int) -> None:
        """Observe one stream item."""
        if self._seen < self._capacity:
            self._items[self._seen] = value
        else:
            slot = int(self._rng.integers(0, self._seen + 1))
            if slot < self._capacity:
                self._items[slot] = value
        self._seen += 1

    def update_many(self, values: np.ndarray) -> None:
        """Observe a batch (loop of :meth:`update`; order preserved)."""
        for value in np.asarray(values).ravel():
            self.update(int(value))

    def contents(self) -> np.ndarray:
        """A copy of the current reservoir contents."""
        return self._items[: self.size].copy()

    def sample(
        self, size: int, rng: "int | None | np.random.Generator" = None
    ) -> np.ndarray:
        """Draw ``size`` items i.i.d. (with replacement) from the reservoir.

        This is the bootstrap view the greedy learner consumes: the
        reservoir approximates the stream's empirical distribution, and
        with-replacement draws from it approximate fresh stream samples.
        """
        if self.size == 0:
            raise InvalidParameterError("cannot sample from an empty reservoir")
        generator = as_rng(rng if rng is not None else self._rng)
        idx = generator.integers(0, self.size, size=size)
        return self._items[idx]
