"""Maintain a near-v-optimal histogram over a stream.

Combines the reservoir sampler with periodic rebuilds by the paper's
fast greedy learner.  Between rebuilds the summary is stale by at most
``refresh_every`` items, which bounds its extra error by the mass of the
unseen suffix; the reservoir keeps rebuild quality independent of the
stream length.

Both engine choices ride through the facade session: ``engine`` selects
the learner's scoring engine and ``tester_engine`` the flatness engine
used by :meth:`StreamingHistogramMaintainer.test` /
:meth:`StreamingHistogramMaintainer.min_k`, which probe the reservoir's
current contents for k-histogram structure (e.g. to adapt ``k`` as the
stream drifts).
"""

from __future__ import annotations

import numpy as np

from repro.api.session import HistogramSession
from repro.core.params import GreedyParams, TesterParams
from repro.core.results import TestResult
from repro.core.selection import SelectionResult
from repro.errors import EmptyStreamError, InvalidParameterError
from repro.histograms.tiling import TilingHistogram
from repro.streaming.reservoir import ReservoirSampler
from repro.utils.rng import as_rng


class StreamingHistogramMaintainer:
    """A k-histogram summary of a stream of values from ``[0, n)``.

    Parameters
    ----------
    n:
        Domain size.
    k:
        Histogram budget passed to the greedy learner.
    epsilon:
        Learner accuracy (Theorem 2 semantics at ``scale=1``).
    refresh_every:
        Rebuild the histogram after this many new items (default
        ``4 * reservoir_capacity``, so most reservoir content turns over
        between rebuilds).
    reservoir_capacity:
        Reservoir size (default 4096).
    params:
        Explicit learner sizes; defaults to a budget matched to the
        reservoir (the reservoir cannot support more independent
        information than it holds).
    forget_after_rebuild:
        When ``True`` the reservoir is reset after each rebuild, giving
        sliding-window semantics (the summary reflects roughly the last
        ``refresh_every`` items) — use this for drifting streams.  The
        default ``False`` keeps Algorithm R's whole-stream uniformity.
    engine:
        Learner scoring engine forwarded to the session
        (``"incremental"`` or ``"full"``).
    tester_engine:
        Flatness engine forwarded to the session for :meth:`test` /
        :meth:`min_k` (``"compiled"`` or ``"full"``).
    executor:
        Optional :class:`repro.api.ParallelExecutor` forwarded to the
        session: the reservoir's pooled draws feed the shard-mergeable
        compile builders directly, so rebuild compiles fan per shard.
        Results stay byte-identical; the caller owns the executor.
    """

    def __init__(
        self,
        n: int,
        k: int,
        epsilon: float = 0.25,
        *,
        refresh_every: int | None = None,
        reservoir_capacity: int = 4096,
        params: GreedyParams | None = None,
        forget_after_rebuild: bool = False,
        engine: str = "incremental",
        tester_engine: str = "compiled",
        rng: "int | None | np.random.Generator" = None,
        executor: "object | None" = None,
    ) -> None:
        if n < 1 or k < 1:
            raise InvalidParameterError(f"need n >= 1 and k >= 1, got n={n}, k={k}")
        self._n = int(n)
        self._k = int(k)
        self._epsilon = float(epsilon)
        self._engine = engine
        self._tester_engine = tester_engine
        self._executor = executor
        self._rng = as_rng(rng)
        self._reservoir = ReservoirSampler(reservoir_capacity, self._rng)
        self._refresh_every = (
            int(refresh_every) if refresh_every is not None else 4 * reservoir_capacity
        )
        if self._refresh_every < 1:
            raise InvalidParameterError("refresh_every must be >= 1")
        if params is None:
            budget = reservoir_capacity
            params = GreedyParams(
                weight_sample_size=max(budget // 2, 16),
                collision_sets=5,
                collision_set_size=max(budget // 4, 16),
                rounds=max(self._k, 2),
            )
        self._params = params
        self._forget_after_rebuild = bool(forget_after_rebuild)
        self._items_seen = 0
        self._since_rebuild = 0
        self._rebuilds = 0
        self._histogram: TilingHistogram | None = None
        # One facade session for the reservoir; its pools are invalidated
        # lazily (``_sync_session``) whenever the reservoir has absorbed
        # stream items since they were last filled.
        self._stale = False
        self._session = self._make_session()

    def _make_session(self) -> HistogramSession:
        return HistogramSession(
            self._reservoir,
            self._n,
            rng=self._rng,
            method="fast",
            engine=self._engine,
            tester_engine=self._tester_engine,
            executor=self._executor,
        )

    def _sync_session(self) -> HistogramSession:
        """The session, with pools dropped if the reservoir has changed."""
        if self._stale:
            self._session.invalidate()
            self._stale = False
        return self._session

    @property
    def items_seen(self) -> int:
        """Total stream items observed."""
        return self._items_seen

    @property
    def rebuilds(self) -> int:
        """How many greedy rebuilds have run."""
        return self._rebuilds

    @property
    def histogram(self) -> TilingHistogram:
        """The current summary (rebuilding lazily if needed)."""
        if self._histogram is None or self._since_rebuild >= self._refresh_every:
            self._rebuild()
        if self._histogram is None:
            raise EmptyStreamError("no stream items observed yet; update() first")
        return self._histogram

    def update(self, value: int) -> None:
        """Observe one stream item."""
        if not 0 <= value < self._n:
            raise InvalidParameterError(
                f"stream value {value} outside the domain [0, {self._n})"
            )
        self._reservoir.update(int(value))
        self._items_seen += 1
        self._since_rebuild += 1
        self._stale = True

    def update_many(self, values: np.ndarray) -> None:
        """Observe a batch of stream items."""
        values = np.asarray(values)
        if values.size and (values.min() < 0 or values.max() >= self._n):
            raise InvalidParameterError("stream values outside the domain")
        self._reservoir.update_many(values)
        self._items_seen += int(values.size)
        self._since_rebuild += int(values.size)
        self._stale = True

    def _rebuild(self) -> None:
        if self._reservoir.size == 0:
            return
        session = self._sync_session()
        result = session.learn(self._k, self._epsilon, params=self._params)
        self._histogram = result.filled_histogram
        self._since_rebuild = 0
        self._rebuilds += 1
        if self._forget_after_rebuild:
            self._reservoir = ReservoirSampler(self._reservoir.capacity, self._rng)
            self._session = self._make_session()
            self._stale = False

    # -------------------------------------------------------------- #
    # testing the stream
    # -------------------------------------------------------------- #

    def _tester_params(self, params: TesterParams | None) -> TesterParams:
        if params is not None:
            return params
        # Like the learner default: the reservoir cannot support more
        # independent information than it holds, so budget per set is
        # tied to its capacity (sets are drawn with replacement).
        return TesterParams(
            num_sets=5, set_size=max(self._reservoir.capacity, 16)
        )

    def test(
        self,
        k: int | None = None,
        epsilon: float | None = None,
        *,
        norm: str = "l2",
        params: TesterParams | None = None,
        engine: str | None = None,
    ) -> TestResult:
        """Test the reservoir's contents for tiling k-histogram structure.

        Defaults to the maintainer's own ``(k, epsilon)`` — "does the
        summary's shape assumption still hold?" — and runs through the
        session, so repeated probes between stream updates share one
        draw, one compiled tester sketch, and its verdict memo.
        """
        if self._reservoir.size == 0:
            raise EmptyStreamError("no stream items observed yet; update() first")
        k = self._k if k is None else int(k)
        epsilon = self._epsilon if epsilon is None else float(epsilon)
        session = self._sync_session()
        resolved = self._tester_params(params)
        if norm == "l2":
            return session.test_l2(k, epsilon, params=resolved, engine=engine)
        if norm == "l1":
            return session.test_l1(k, epsilon, params=resolved, engine=engine)
        raise InvalidParameterError(f"norm must be 'l1' or 'l2', got {norm!r}")

    def min_k(
        self,
        epsilon: float | None = None,
        *,
        max_k: int | None = None,
        norm: str = "l1",
        params: TesterParams | None = None,
        engine: str | None = None,
    ) -> SelectionResult:
        """Smallest credible bucket count for the reservoir's contents.

        Useful for adapting ``k`` as the stream drifts; shares the
        session budget (and compiled verdict memo) with :meth:`test`.
        ``norm`` defaults to ``"l1"``, matching :func:`estimate_min_k`
        and :meth:`repro.api.HistogramSession.min_k` (the reservoir-sized
        default ``params`` keep the l1 budget practical).
        """
        if self._reservoir.size == 0:
            raise EmptyStreamError("no stream items observed yet; update() first")
        epsilon = self._epsilon if epsilon is None else float(epsilon)
        session = self._sync_session()
        return session.min_k(
            epsilon,
            max_k=max_k,
            norm=norm,
            params=self._tester_params(params),
            engine=engine,
        )
