"""Range-query workload generators.

Three classical shapes plus a mixture:

* :func:`random_ranges` — endpoints uniform over the domain (long scans);
* :func:`short_ranges` — fixed-width windows at random offsets (the
  common "band" predicate);
* :func:`point_queries` — single-value lookups;
* :func:`mixed_workload` — an even blend of the three.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.utils.rng import as_rng


def _check(n: int, count: int) -> None:
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")


def random_ranges(
    n: int, count: int, rng: "int | None | np.random.Generator" = None
) -> list[Interval]:
    """``count`` ranges with uniformly random distinct endpoints."""
    _check(n, count)
    generator = as_rng(rng)
    starts = generator.integers(0, n, size=count)
    stops = generator.integers(0, n, size=count)
    queries = []
    for a, b in zip(starts, stops):
        lo, hi = (int(a), int(b)) if a < b else (int(b), int(a))
        queries.append(Interval(lo, hi + 1))
    return queries


def short_ranges(
    n: int,
    count: int,
    width: int | None = None,
    rng: "int | None | np.random.Generator" = None,
) -> list[Interval]:
    """``count`` windows of fixed ``width`` (default ``max(n // 32, 1)``)."""
    _check(n, count)
    if width is None:
        width = max(n // 32, 1)
    if not 1 <= width <= n:
        raise InvalidParameterError(f"width must be in [1, n], got {width}")
    generator = as_rng(rng)
    starts = generator.integers(0, n - width + 1, size=count)
    return [Interval(int(a), int(a) + width) for a in starts]


def point_queries(
    n: int, count: int, rng: "int | None | np.random.Generator" = None
) -> list[Interval]:
    """``count`` single-element lookups at uniform positions."""
    _check(n, count)
    generator = as_rng(rng)
    positions = generator.integers(0, n, size=count)
    return [Interval(int(a), int(a) + 1) for a in positions]


def mixed_workload(
    n: int, count: int, rng: "int | None | np.random.Generator" = None
) -> list[Interval]:
    """An even mix of random ranges, short ranges and point lookups."""
    _check(n, count)
    generator = as_rng(rng)
    per_kind = count // 3
    queries = random_ranges(n, per_kind, generator)
    queries += short_ranges(n, per_kind, rng=generator)
    queries += point_queries(n, count - 2 * per_kind, generator)
    return queries
