"""Selectivity (range-count) estimation on histograms.

A range query ``SELECT COUNT(*) WHERE a <= x < b`` over a column with
value distribution ``p`` has selectivity ``p([a, b))``; a histogram ``H``
estimates it as ``sum_{t in [a, b)} H(t)``.  For tiling histograms this
is a piece-overlap sum (no dense expansion).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.distances import as_pmf
from repro.histograms.intervals import Interval
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram


def true_selectivity(p: object, query: Interval) -> float:
    """Exact selectivity of ``query`` under distribution-like ``p``."""
    pmf = as_pmf(p)
    return float(pmf[query.start : query.stop].sum())


class SelectivityEstimator:
    """Answers range queries from a histogram summary.

    Wraps either histogram representation; priority histograms are
    flattened once at construction.
    """

    def __init__(self, histogram: TilingHistogram | PriorityHistogram) -> None:
        if isinstance(histogram, PriorityHistogram):
            histogram = histogram.to_tiling()
        if not isinstance(histogram, TilingHistogram):
            raise TypeError(
                f"expected a histogram, got {type(histogram).__name__}"
            )
        self._histogram = histogram

    @property
    def histogram(self) -> TilingHistogram:
        """The underlying tiling histogram."""
        return self._histogram

    @property
    def summary_size(self) -> int:
        """Number of stored pieces (the summary's space footprint)."""
        return self._histogram.num_pieces

    def estimate(self, query: Interval) -> float:
        """Estimated selectivity of one range query."""
        return self._histogram.range_mass(query)

    def estimate_many(self, queries: "list[Interval]") -> np.ndarray:
        """Estimated selectivities for a workload (vector result)."""
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)
