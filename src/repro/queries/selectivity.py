"""Selectivity (range-count) estimation on histograms.

A range query ``SELECT COUNT(*) WHERE a <= x < b`` over a column with
value distribution ``p`` has selectivity ``p([a, b))``; a histogram ``H``
estimates it as ``sum_{t in [a, b)} H(t)``.  For tiling histograms this
is a piece-overlap sum (no dense expansion).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.distributions.distances import as_pmf
from repro.histograms.intervals import Interval
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.api.session import HistogramSession


def true_selectivity(p: object, query: Interval) -> float:
    """Exact selectivity of ``query`` under distribution-like ``p``."""
    pmf = as_pmf(p)
    return float(pmf[query.start : query.stop].sum())


class SelectivityEstimator:
    """Answers range queries from a histogram summary.

    Wraps either histogram representation; priority histograms are
    flattened once at construction.
    """

    def __init__(self, histogram: TilingHistogram | PriorityHistogram) -> None:
        if isinstance(histogram, PriorityHistogram):
            histogram = histogram.to_tiling()
        if not isinstance(histogram, TilingHistogram):
            raise TypeError(
                f"expected a histogram, got {type(histogram).__name__}"
            )
        self._histogram = histogram

    @classmethod
    def from_session(
        cls,
        session: "HistogramSession",
        k: int,
        epsilon: float,
        *,
        filled: bool = True,
        **learn_kwargs: object,
    ) -> "SelectivityEstimator":
        """Learn a summary through a :class:`repro.api.HistogramSession`.

        The session's cached samples/sketches are reused, so building
        estimators at several ``k`` shares one draw.  ``filled`` selects
        the gap-filled histogram (better range-query behaviour over
        low-density regions); pass ``filled=False`` for the paper's
        strict priority-histogram semantics.
        """
        result = session.learn(k, epsilon, **learn_kwargs)
        histogram = result.filled_histogram if filled else result.histogram
        return cls(histogram)

    @property
    def histogram(self) -> TilingHistogram:
        """The underlying tiling histogram."""
        return self._histogram

    @property
    def summary_size(self) -> int:
        """Number of stored pieces (the summary's space footprint)."""
        return self._histogram.num_pieces

    def estimate(self, query: Interval) -> float:
        """Estimated selectivity of one range query."""
        return self._histogram.range_mass(query)

    def estimate_many(self, queries: "list[Interval]") -> np.ndarray:
        """Estimated selectivities for a workload (vector result)."""
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)
