"""Workload-level error metrics for selectivity estimators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.queries.selectivity import SelectivityEstimator, true_selectivity


@dataclass(frozen=True)
class WorkloadReport:
    """Error summary of one estimator over one workload.

    ``mean_absolute`` / ``max_absolute`` are in selectivity units (i.e.
    fractions of the table); ``rmse`` likewise.  ``summary_size`` is the
    number of histogram pieces the estimator stores.
    """

    mean_absolute: float
    max_absolute: float
    rmse: float
    num_queries: int
    summary_size: int


def evaluate_estimator(
    estimator: SelectivityEstimator,
    truth: object,
    workload: "list[Interval]",
) -> WorkloadReport:
    """Compare an estimator against exact selectivities.

    Parameters
    ----------
    estimator:
        The histogram-backed estimator under evaluation.
    truth:
        The true distribution (anything :func:`repro.distributions.as_pmf`
        accepts).
    workload:
        The queries to score.
    """
    if not workload:
        raise InvalidParameterError("workload must contain at least one query")
    estimates = estimator.estimate_many(workload)
    exact = np.array([true_selectivity(truth, q) for q in workload])
    errors = np.abs(estimates - exact)
    return WorkloadReport(
        mean_absolute=float(errors.mean()),
        max_absolute=float(errors.max()),
        rmse=float(np.sqrt((errors**2).mean())),
        num_queries=len(workload),
        summary_size=estimator.summary_size,
    )
