"""Approximate query answering on histograms.

The paper's database motivation: histograms "can be used for data
visualization, analysis and approximate query answering".  This package
implements the classical use — range-count (selectivity) estimation —
so the learned histograms can be evaluated on the workload they exist
for (experiment T6).
"""

from repro.queries.evaluate import WorkloadReport, evaluate_estimator
from repro.queries.selectivity import (
    SelectivityEstimator,
    true_selectivity,
)
from repro.queries.workload import (
    mixed_workload,
    point_queries,
    random_ranges,
    short_ranges,
)

__all__ = [
    "SelectivityEstimator",
    "WorkloadReport",
    "evaluate_estimator",
    "mixed_workload",
    "point_queries",
    "random_ranges",
    "short_ranges",
    "true_selectivity",
]
