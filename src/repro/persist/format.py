"""The snapshot file format: versioned header + page-aligned slab payloads.

One snapshot file carries everything a restore needs::

    offset 0     MAGIC (8 bytes, b"REPROSNP")
    offset 8     header length (uint64, little-endian)
    offset 16    header: UTF-8 JSON
                   {format_version, kind, meta, slabs: [manifest...],
                    parent?, depth?}
    ...          zero padding to the next 4096-byte boundary
    data start   slab payloads, each page-aligned, in manifest order

Each *physical* manifest entry records ``{name, dtype, shape, offset,
nbytes, crc32}`` with ``offset`` relative to the page-aligned data
start, so the header can be sized *after* the payload layout is fixed
without a circular dependency.  ``meta`` is the caller's JSON document —
compile parameters, rng state fingerprints, memo tables — and ``kind``
names the producing layer (``bundle`` / ``fleet`` / ``maintainer`` /
``service``) so a restore seam never maps a snapshot from the wrong
layer.

Format version 2 adds **differential snapshots**: a file written with
``parent=`` may carry *reference* entries ``{name, dtype, shape, nbytes,
crc32, ref: [file, offset]}`` whose payload lives at an absolute offset
in another snapshot file in the same directory.  References are
flattened at write time — a delta whose parent entry is itself a
reference copies that reference verbatim — so resolving any entry opens
at most one other file, and the ``depth`` header field (link count back
to the full base snapshot) is bounded by :data:`MAX_CHAIN`.  Version-1
files read exactly as before.

:func:`load_snapshot` maps the file once with :func:`numpy.memmap` and
hands out zero-copy *read-only* views; payload checksums are verified up
front — for referenced payloads against the *referring* file's recorded
crc, per link — and every malformed condition — missing file, bad
magic, truncation, version or kind mismatch, checksum failure, a chain
deeper than :data:`MAX_CHAIN` — surfaces as a structured
:class:`~repro.errors.SnapshotError` whose ``reason`` names the
condition, so restore seams degrade to a cold rebuild instead of
crashing.

:func:`write_snapshot` is crash-safe: the bytes land in a temp file in
the destination directory, are fsynced, and are moved into place with
``os.replace`` (followed by a directory fsync), so a crash mid-write
leaves the previous snapshot generation untouched.  A rename also never
invalidates mappings handed out by an earlier restore — the replaced
inode stays alive for as long as views reference it.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import numpy as np

from repro.errors import SnapshotError

MAGIC = b"REPROSNP"
FORMAT_VERSION = 2
#: Format versions this build can read (v1 predates differential
#: snapshots; its files carry no parent/ref entries).
SUPPORTED_VERSIONS = (1, 2)
#: Hard bound on the parent-chain depth a snapshot may declare.  Writers
#: compact long before this (the serving layer every 8 links); the bound
#: is the loader's defence against a corrupted or adversarial header.
MAX_CHAIN = 16
_PAGE = 4096


def _align(offset: int, boundary: int = _PAGE) -> int:
    return (offset + boundary - 1) // boundary * boundary


def _sync_file(handle) -> None:
    """Flush one open file to stable storage (chaos-test seam)."""
    handle.flush()
    os.fsync(handle.fileno())


def _sync_dir(path: str) -> None:
    """Fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _check_link_name(owner: str, name: object) -> str:
    """Validate a sibling-file reference (basename only, no traversal)."""
    if (
        not isinstance(name, str)
        or not name
        or name != os.path.basename(name)
        or name in (".", "..")
    ):
        raise SnapshotError(
            f"snapshot {owner!r} references an illegal sibling file "
            f"{name!r} (must be a plain basename)",
            reason="bad-header",
        )
    return name


def _read_header(path: str) -> tuple[dict, int]:
    """Parse one snapshot's JSON header without mapping its payloads.

    Returns ``(header, data_start)``.  Raises the same structured
    :class:`~repro.errors.SnapshotError` reasons as :func:`load_snapshot`
    for defects visible at the header level.
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(16)
            if len(prefix) < 16 or prefix[:8] != MAGIC:
                raise SnapshotError(
                    f"{path!r} is not a snapshot file (bad magic)",
                    reason="bad-magic",
                )
            (header_len,) = struct.unpack("<Q", prefix[8:16])
            blob = handle.read(header_len)
    except FileNotFoundError as exc:
        raise SnapshotError(f"no snapshot at {path!r}", reason="missing") from exc
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot {path!r}: {exc}", reason="unreadable"
        ) from exc
    if len(blob) < header_len:
        raise SnapshotError(
            f"snapshot {path!r} is truncated inside its header",
            reason="truncated",
        )
    try:
        header = json.loads(blob.decode("utf-8"))
        header["format_version"], header["kind"], header["meta"], header["slabs"]
    except (ValueError, KeyError, TypeError) as exc:
        raise SnapshotError(
            f"snapshot {path!r} has a malformed header: {exc}",
            reason="bad-header",
        ) from exc
    return header, _align(16 + int(header_len))


def write_snapshot(
    path,
    *,
    kind: str,
    meta: dict,
    slabs: dict,
    parent: "str | os.PathLike | None" = None,
    unchanged=(),
) -> None:
    """Atomically write one snapshot file.

    ``slabs`` maps slab names to arrays (any dtype/shape; non-contiguous
    inputs are compacted).  ``meta`` must be JSON-serializable.  The
    write is all-or-nothing: on any failure the destination still holds
    whatever it held before.

    Differential writes pass ``parent=`` (a sibling snapshot file) plus
    ``unchanged=``: slab names whose payloads are carried as references
    into the parent instead of being re-written.  Each referenced name
    must exist in the parent's manifest (else
    :class:`~repro.errors.SnapshotError` with reason ``missing-slab`` —
    callers fall back to a full write); references to references are
    flattened, so any chain resolves in one hop.  The caller vouches
    that a referenced payload is byte-identical to the parent's — the
    generation tracking upstream is what establishes that.
    """
    path = os.fspath(path)
    arrays = {name: np.ascontiguousarray(array) for name, array in slabs.items()}
    manifest = []
    offset = 0
    for name, array in arrays.items():
        offset = _align(offset)
        manifest.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": array.nbytes,
                "crc32": zlib.crc32(array.data),
            }
        )
        offset += array.nbytes
    header_doc = {
        "format_version": FORMAT_VERSION,
        "kind": str(kind),
        "meta": meta,
        "slabs": manifest,
    }
    if parent is not None:
        parent = os.fspath(parent)
        parent_header, parent_data_start = _read_header(parent)
        depth = int(parent_header.get("depth", 0)) + 1
        if depth > MAX_CHAIN:
            raise SnapshotError(
                f"writing {path!r} would chain {depth} snapshots deep "
                f"(bound {MAX_CHAIN}); compact to a full snapshot instead",
                reason="chain-too-deep",
            )
        parent_base = os.path.basename(parent)
        by_name = {spec.get("name"): spec for spec in parent_header["slabs"]}
        for name in unchanged:
            spec = by_name.get(name)
            if spec is None:
                raise SnapshotError(
                    f"parent snapshot {parent!r} holds no slab {name!r} to "
                    "reference",
                    reason="missing-slab",
                )
            if "ref" in spec:
                # Flatten: point straight at the file that physically
                # holds the payload, never at an intermediate delta.
                ref = list(spec["ref"])
            else:
                ref = [parent_base, parent_data_start + int(spec["offset"])]
            manifest.append(
                {
                    "name": str(name),
                    "dtype": spec["dtype"],
                    "shape": list(spec["shape"]),
                    "nbytes": int(spec["nbytes"]),
                    "crc32": int(spec["crc32"]),
                    "ref": ref,
                }
            )
        header_doc["parent"] = parent_base
        header_doc["depth"] = depth
    elif unchanged:
        raise SnapshotError(
            "unchanged= slab references require parent=", reason="missing-slab"
        )
    header = json.dumps(header_doc, sort_keys=True).encode("utf-8")
    data_start = _align(16 + len(header))
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        handle.write(b"\0" * (data_start - 16 - len(header)))
        cursor = 0
        for spec, array in zip(manifest, arrays.values()):
            if spec["offset"] > cursor:
                handle.write(b"\0" * (spec["offset"] - cursor))
                cursor = spec["offset"]
            handle.write(array.data)
            cursor += array.nbytes
        _sync_file(handle)
    os.replace(tmp, path)
    _sync_dir(os.path.dirname(path))


class Snapshot:
    """A loaded snapshot: metadata plus zero-copy read-only slab views.

    ``parent`` is the basename of the parent snapshot for a
    differential file (``None`` for a full one) and ``depth`` its
    declared chain depth (0 for a full snapshot).
    """

    def __init__(
        self,
        path: str,
        kind: str,
        meta: dict,
        views: dict,
        parent: str | None = None,
        depth: int = 0,
    ):
        self.path = path
        self.kind = kind
        self.meta = meta
        self.parent = parent
        self.depth = depth
        self._views = views

    @property
    def slab_names(self) -> tuple:
        return tuple(self._views)

    def slab(self, name: str) -> np.ndarray:
        """The named payload as a read-only view over the mapped file."""
        try:
            return self._views[name]
        except KeyError:
            raise SnapshotError(
                f"snapshot {self.path!r} has no slab {name!r}",
                reason="missing-slab",
            ) from None


def _map_raw(path: str) -> np.memmap:
    """Map one snapshot file read-only (shared missing/unreadable seam)."""
    try:
        return np.memmap(path, mode="r", dtype=np.uint8)
    except FileNotFoundError as exc:
        raise SnapshotError(f"no snapshot at {path!r}", reason="missing") from exc
    except (OSError, ValueError) as exc:
        raise SnapshotError(
            f"cannot map snapshot {path!r}: {exc}", reason="unreadable"
        ) from exc


def _open_link(directory: str, basename: str, kind: str, cache: dict) -> np.memmap:
    """Map and validate one referenced sibling snapshot file.

    Every corruption reason fires *per link*: a referenced file that is
    missing, unmappable, not a snapshot, truncated in its header, of an
    unreadable version, or of a different kind raises the same
    structured :class:`~repro.errors.SnapshotError` it would as a
    top-level load.
    """
    if basename in cache:
        return cache[basename]
    link_path = os.path.join(directory, basename)
    raw = _map_raw(link_path)
    if raw.size < 16 or raw[:8].tobytes() != MAGIC:
        raise SnapshotError(
            f"{link_path!r} is not a snapshot file (bad magic)",
            reason="bad-magic",
        )
    (header_len,) = struct.unpack("<Q", raw[8:16].tobytes())
    if 16 + header_len > raw.size:
        raise SnapshotError(
            f"snapshot {link_path!r} is truncated inside its header",
            reason="truncated",
        )
    try:
        header = json.loads(raw[16 : 16 + header_len].tobytes().decode("utf-8"))
        version = header["format_version"]
        link_kind = header["kind"]
    except (ValueError, KeyError, TypeError) as exc:
        raise SnapshotError(
            f"snapshot {link_path!r} has a malformed header: {exc}",
            reason="bad-header",
        ) from exc
    if version not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"snapshot {link_path!r} is format version {version!r}, this "
            f"build reads {SUPPORTED_VERSIONS}",
            reason="version-mismatch",
        )
    if link_kind != kind:
        raise SnapshotError(
            f"snapshot {link_path!r} holds a {link_kind!r} snapshot, its "
            f"referring delta holds {kind!r}",
            reason="kind-mismatch",
        )
    cache[basename] = raw
    return raw


def load_snapshot(path, *, kind: str | None = None) -> Snapshot:
    """Map and validate one snapshot file (resolving any parent chain).

    Verifies magic, format version, expected ``kind``, manifest sanity,
    chain depth, and every payload's crc32 before returning — for a
    differential snapshot, referenced payloads are mapped out of their
    owning files and checked against the *referring* manifest's recorded
    crc, with the same per-link validation a direct load would perform.
    Any defect raises :class:`~repro.errors.SnapshotError` with a
    ``reason`` code (``missing`` / ``bad-magic`` / ``bad-header`` /
    ``version-mismatch`` / ``kind-mismatch`` / ``truncated`` /
    ``checksum-mismatch`` / ``chain-too-deep``).
    """
    path = os.fspath(path)
    raw = _map_raw(path)
    if raw.size < 16 or raw[:8].tobytes() != MAGIC:
        raise SnapshotError(
            f"{path!r} is not a snapshot file (bad magic)", reason="bad-magic"
        )
    (header_len,) = struct.unpack("<Q", raw[8:16].tobytes())
    if 16 + header_len > raw.size:
        raise SnapshotError(
            f"snapshot {path!r} is truncated inside its header",
            reason="truncated",
        )
    try:
        header = json.loads(raw[16 : 16 + header_len].tobytes().decode("utf-8"))
        version = header["format_version"]
        file_kind = header["kind"]
        meta = header["meta"]
        manifest = header["slabs"]
    except (ValueError, KeyError, TypeError) as exc:
        raise SnapshotError(
            f"snapshot {path!r} has a malformed header: {exc}",
            reason="bad-header",
        ) from exc
    if version not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"snapshot {path!r} is format version {version!r}, this build "
            f"reads {SUPPORTED_VERSIONS}",
            reason="version-mismatch",
        )
    if kind is not None and file_kind != kind:
        raise SnapshotError(
            f"snapshot {path!r} holds a {file_kind!r} snapshot, expected "
            f"{kind!r}",
            reason="kind-mismatch",
        )
    parent = header.get("parent")
    depth = int(header.get("depth", 0))
    if parent is not None:
        _check_link_name(path, parent)
    if depth > MAX_CHAIN:
        raise SnapshotError(
            f"snapshot {path!r} declares a parent chain {depth} deep "
            f"(bound {MAX_CHAIN})",
            reason="chain-too-deep",
        )
    directory = os.path.dirname(path)
    data_start = _align(16 + int(header_len))
    links: dict[str, np.memmap] = {}
    views: dict[str, np.ndarray] = {}
    for spec in manifest:
        try:
            name = spec["name"]
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
            nbytes = int(spec["nbytes"])
            crc = int(spec["crc32"])
            if "ref" in spec:
                ref_file, ref_offset = spec["ref"]
                ref_offset = int(ref_offset)
                source, start = None, ref_offset
            else:
                ref_file = None
                source, start = raw, data_start + int(spec["offset"])
                if int(spec["offset"]) < 0:
                    raise ValueError("negative offset")
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {path!r} has a malformed slab manifest: {exc}",
                reason="bad-header",
            ) from exc
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != expected or start < 0:
            raise SnapshotError(
                f"snapshot {path!r} slab {name!r} manifest is inconsistent "
                f"({nbytes} bytes for shape {shape} of {dtype.str})",
                reason="bad-header",
            )
        if ref_file is not None:
            _check_link_name(path, ref_file)
            source = _open_link(directory, ref_file, file_kind, links)
            owner = os.path.join(directory, ref_file)
        else:
            owner = path
        if start + nbytes > source.size:
            raise SnapshotError(
                f"snapshot {owner!r} is truncated inside slab {name!r}",
                reason="truncated",
            )
        payload = source[start : start + nbytes]
        if zlib.crc32(payload) != crc:
            raise SnapshotError(
                f"snapshot {owner!r} slab {name!r} fails its checksum",
                reason="checksum-mismatch",
            )
        views[name] = payload.view(dtype).reshape(shape)
    return Snapshot(path, file_kind, meta, views, parent=parent, depth=depth)
