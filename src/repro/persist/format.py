"""The snapshot file format: versioned header + page-aligned slab payloads.

One snapshot file carries everything a restore needs::

    offset 0     MAGIC (8 bytes, b"REPROSNP")
    offset 8     header length (uint64, little-endian)
    offset 16    header: UTF-8 JSON
                   {format_version, kind, meta, slabs: [manifest...]}
    ...          zero padding to the next 4096-byte boundary
    data start   slab payloads, each page-aligned, in manifest order

Each manifest entry records ``{name, dtype, shape, offset, nbytes,
crc32}`` with ``offset`` relative to the page-aligned data start, so the
header can be sized *after* the payload layout is fixed without a
circular dependency.  ``meta`` is the caller's JSON document — compile
parameters, rng state fingerprints, memo tables — and ``kind`` names the
producing layer (``bundle`` / ``fleet`` / ``maintainer`` / ``service``)
so a restore seam never maps a snapshot from the wrong layer.

:func:`load_snapshot` maps the file once with :func:`numpy.memmap` and
hands out zero-copy *read-only* views; payload checksums are verified up
front, and every malformed condition — missing file, bad magic,
truncation, version or kind mismatch, checksum failure — surfaces as a
structured :class:`~repro.errors.SnapshotError` whose ``reason`` names
the condition, so restore seams degrade to a cold rebuild instead of
crashing.

:func:`write_snapshot` is crash-safe: the bytes land in a temp file in
the destination directory, are fsynced, and are moved into place with
``os.replace`` (followed by a directory fsync), so a crash mid-write
leaves the previous snapshot generation untouched.  A rename also never
invalidates mappings handed out by an earlier restore — the replaced
inode stays alive for as long as views reference it.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import numpy as np

from repro.errors import SnapshotError

MAGIC = b"REPROSNP"
FORMAT_VERSION = 1
_PAGE = 4096


def _align(offset: int, boundary: int = _PAGE) -> int:
    return (offset + boundary - 1) // boundary * boundary


def _sync_file(handle) -> None:
    """Flush one open file to stable storage (chaos-test seam)."""
    handle.flush()
    os.fsync(handle.fileno())


def _sync_dir(path: str) -> None:
    """Fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(path, *, kind: str, meta: dict, slabs: dict) -> None:
    """Atomically write one snapshot file.

    ``slabs`` maps slab names to arrays (any dtype/shape; non-contiguous
    inputs are compacted).  ``meta`` must be JSON-serializable.  The
    write is all-or-nothing: on any failure the destination still holds
    whatever it held before.
    """
    path = os.fspath(path)
    arrays = {name: np.ascontiguousarray(array) for name, array in slabs.items()}
    manifest = []
    offset = 0
    for name, array in arrays.items():
        offset = _align(offset)
        manifest.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": array.nbytes,
                "crc32": zlib.crc32(array.data),
            }
        )
        offset += array.nbytes
    header = json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "kind": str(kind),
            "meta": meta,
            "slabs": manifest,
        },
        sort_keys=True,
    ).encode("utf-8")
    data_start = _align(16 + len(header))
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        handle.write(b"\0" * (data_start - 16 - len(header)))
        cursor = 0
        for spec, array in zip(manifest, arrays.values()):
            if spec["offset"] > cursor:
                handle.write(b"\0" * (spec["offset"] - cursor))
                cursor = spec["offset"]
            handle.write(array.data)
            cursor += array.nbytes
        _sync_file(handle)
    os.replace(tmp, path)
    _sync_dir(os.path.dirname(path))


class Snapshot:
    """A loaded snapshot: metadata plus zero-copy read-only slab views."""

    def __init__(self, path: str, kind: str, meta: dict, views: dict):
        self.path = path
        self.kind = kind
        self.meta = meta
        self._views = views

    @property
    def slab_names(self) -> tuple:
        return tuple(self._views)

    def slab(self, name: str) -> np.ndarray:
        """The named payload as a read-only view over the mapped file."""
        try:
            return self._views[name]
        except KeyError:
            raise SnapshotError(
                f"snapshot {self.path!r} has no slab {name!r}",
                reason="missing-slab",
            ) from None


def load_snapshot(path, *, kind: str | None = None) -> Snapshot:
    """Map and validate one snapshot file.

    Verifies magic, format version, expected ``kind``, manifest sanity,
    and every payload's crc32 before returning; any defect raises
    :class:`~repro.errors.SnapshotError` with a ``reason`` code
    (``missing`` / ``bad-magic`` / ``bad-header`` / ``version-mismatch``
    / ``kind-mismatch`` / ``truncated`` / ``checksum-mismatch``).
    """
    path = os.fspath(path)
    try:
        raw = np.memmap(path, mode="r", dtype=np.uint8)
    except FileNotFoundError as exc:
        raise SnapshotError(
            f"no snapshot at {path!r}", reason="missing"
        ) from exc
    except (OSError, ValueError) as exc:
        raise SnapshotError(
            f"cannot map snapshot {path!r}: {exc}", reason="unreadable"
        ) from exc
    if raw.size < 16 or raw[:8].tobytes() != MAGIC:
        raise SnapshotError(
            f"{path!r} is not a snapshot file (bad magic)", reason="bad-magic"
        )
    (header_len,) = struct.unpack("<Q", raw[8:16].tobytes())
    if 16 + header_len > raw.size:
        raise SnapshotError(
            f"snapshot {path!r} is truncated inside its header",
            reason="truncated",
        )
    try:
        header = json.loads(raw[16 : 16 + header_len].tobytes().decode("utf-8"))
        version = header["format_version"]
        file_kind = header["kind"]
        meta = header["meta"]
        manifest = header["slabs"]
    except (ValueError, KeyError, TypeError) as exc:
        raise SnapshotError(
            f"snapshot {path!r} has a malformed header: {exc}",
            reason="bad-header",
        ) from exc
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} is format version {version!r}, this build "
            f"reads {FORMAT_VERSION}",
            reason="version-mismatch",
        )
    if kind is not None and file_kind != kind:
        raise SnapshotError(
            f"snapshot {path!r} holds a {file_kind!r} snapshot, expected "
            f"{kind!r}",
            reason="kind-mismatch",
        )
    data_start = _align(16 + int(header_len))
    views: dict[str, np.ndarray] = {}
    for spec in manifest:
        try:
            name = spec["name"]
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
            offset = int(spec["offset"])
            nbytes = int(spec["nbytes"])
            crc = int(spec["crc32"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {path!r} has a malformed slab manifest: {exc}",
                reason="bad-header",
            ) from exc
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != expected or offset < 0:
            raise SnapshotError(
                f"snapshot {path!r} slab {name!r} manifest is inconsistent "
                f"({nbytes} bytes for shape {shape} of {dtype.str})",
                reason="bad-header",
            )
        start = data_start + offset
        if start + nbytes > raw.size:
            raise SnapshotError(
                f"snapshot {path!r} is truncated inside slab {name!r}",
                reason="truncated",
            )
        payload = raw[start : start + nbytes]
        if zlib.crc32(payload) != crc:
            raise SnapshotError(
                f"snapshot {path!r} slab {name!r} fails its checksum",
                reason="checksum-mismatch",
            )
        views[name] = payload.view(dtype).reshape(shape)
    return Snapshot(path, file_kind, meta, views)
