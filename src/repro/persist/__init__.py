"""Versioned, mmap-backed snapshot/restore for compiled sketch state.

``repro.persist`` lets every warm layer of the stack survive a process
restart: :class:`~repro.api.SketchBundle` pools and compiled caches,
whole :class:`~repro.api.HistogramFleet` /
:class:`~repro.streaming.fleet.FleetMaintainer` trees (reservoirs,
histograms, rng states included), and :class:`~repro.serving.service.
HistogramService` checkpoints behind ``repro-serve --snapshot-dir``.

The file format lives in :mod:`repro.persist.format` (crash-safe atomic
writes, page-aligned payloads, per-slab checksums); the object codecs in
:mod:`repro.persist.codec`.  Restores hand zero-copy read-only
``np.memmap`` views straight to the engines; anything malformed raises
:class:`~repro.errors.SnapshotError` and callers cold-rebuild.
"""

from repro.errors import SnapshotError
from repro.persist.format import (
    FORMAT_VERSION,
    MAGIC,
    Snapshot,
    load_snapshot,
    write_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "Snapshot",
    "SnapshotError",
    "load_snapshot",
    "write_snapshot",
]
