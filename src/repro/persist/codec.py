"""Codecs between live objects and snapshot ``(meta, slabs)`` pairs.

Each ``*_state`` function flattens one layer's warm state — sample
pools, compiled greedy/tester sketches, verdict memos, rng states,
reservoirs, counters — into a JSON-safe ``meta`` document plus a flat
dict of named arrays; the matching ``restore_*`` rebuilds the layer *in
place* on a freshly constructed instance.  Layers nest by slab-name
prefixing (``member/{f}/...`` inside a fleet, ``fleet/...`` inside a
maintainer), so one file checkpoints a whole serving tree.

Restores are zero-copy where the engines allow it: compiled prefix
slabs, candidate grids, sorted weight samples, and sample pools are
handed to the engines as the loader's read-only memmap views, through
the same ``adopt_compiled_*`` seams the fleet compiler plants through.
The structures that must stay mutable (reservoir buffers, the small
``k``-piece histograms) are copied.  The fleet's stacked ``(F, n+1, r)``
tester slabs are deliberately *not* persisted: the fleet repairs them
member by member from the restored compiled testers through its
existing ``adopt_member`` path, byte-identically.

The binding contract: a restored instance answers byte-identical
responses — verdicts, histograms, query logs, memo accounting, and
future rng draws — to the live instance it was snapshotted from.  Two
details carry most of that weight.  First, JSON round-trips the exact
bits of every finite float (``repr`` ↔ parse) and arbitrary-precision
ints, so memo keys, thresholds, and PCG64 states restore exactly.
Second, each fleet member's reservoir, session, and bundle share one
``Generator`` object, so assigning ``bit_generator.state`` in the
bundle restore rewinds all three at once.

A configuration fingerprint mismatch (the restoring instance was built
with different ``n``/sizes/engines than the snapshotted one) raises
:class:`~repro.errors.SnapshotError` with ``reason="config-mismatch"``
*before* any state is touched at that layer, so callers fall back to a
cold rebuild.
"""

from __future__ import annotations

import numpy as np

from repro.api.sketches import _GrowablePool
from repro.core.candidates import CandidateSet
from repro.core.flatness import CompiledTesterSketches, FlatnessResult
from repro.core.greedy import CompiledGreedySketches
from repro.errors import SnapshotError
from repro.histograms.tiling import TilingHistogram
from repro.samples.sample_set import SampleSet


def _scoped(slab, prefix: str):
    """A slab accessor that resolves names under ``prefix``."""
    return lambda name: slab(prefix + name)


def _restored_pool(values: np.ndarray) -> _GrowablePool:
    """A sample pool over a read-only restored buffer.

    Capacity equals length, so the pool serves views straight off the
    mapped file and any *growth* reallocates into a fresh writable
    buffer first (``fill_to`` copies the prefix out) — the mapping is
    never written.
    """
    pool = _GrowablePool()
    pool._buffer = np.ascontiguousarray(values, dtype=np.int64)
    pool._length = int(pool._buffer.shape[0])
    return pool


def _sample_set_over(sorted_values: np.ndarray, n: int) -> SampleSet:
    """A :class:`SampleSet` adopting an already-sorted read-only view.

    ``SampleSet.from_sorted`` copies; the snapshot's payload is the
    checksummed ``sorted_values`` of the set being restored, so the view
    is adopted directly (sortedness was established when it was built).
    """
    built = SampleSet.__new__(SampleSet)
    built._sorted = sorted_values
    built._n = int(n)
    return built


def _check_fingerprint(layer: str, stored: dict, expected: dict) -> None:
    if stored != expected:
        raise SnapshotError(
            f"{layer} snapshot was taken under configuration {stored}, "
            f"this instance is configured as {expected}",
            reason="config-mismatch",
        )


# ------------------------------------------------------------------ #
# SketchBundle
# ------------------------------------------------------------------ #


def bundle_state(bundle) -> tuple[dict, dict]:
    """One bundle's pools, compiled caches, memos, and rng state."""
    meta = {
        "n": int(bundle._n),
        "samples_drawn": int(bundle.samples_drawn),
        "draw_events": {
            str(key): int(value) for key, value in bundle.draw_events.items()
        },
        "rng_state": bundle._rng.bit_generator.state,
        "collision_pools": len(bundle._collision_pool),
        "tester_pools": len(bundle._tester_pool),
        "learn": [],
        "test": [],
    }
    slabs = {
        "pool/weight": bundle._weight_pool.view(bundle._weight_pool.length)
    }
    for i, pool in enumerate(bundle._collision_pool):
        slabs[f"pool/collision/{i}"] = pool.view(pool.length)
    for i, pool in enumerate(bundle._tester_pool):
        slabs[f"pool/tester/{i}"] = pool.view(pool.length)
    for j, (key, compiled) in enumerate(bundle._compiled_cache.items()):
        method, max_candidates, weight_size, num_sets, set_size = key
        meta["learn"].append(
            {
                "method": str(method),
                "max_candidates": (
                    None if max_candidates is None else int(max_candidates)
                ),
                "weight_sample_size": int(weight_size),
                "collision_sets": int(num_sets),
                "collision_set_size": int(set_size),
                "pairs_per_set": float(compiled.pairs_per_set),
            }
        )
        slabs[f"learn/{j}/grid"] = compiled.candidates.grid
        slabs[f"learn/{j}/lo"] = compiled.candidates.lo
        slabs[f"learn/{j}/hi"] = compiled.candidates.hi
        slabs[f"learn/{j}/weight_sorted"] = compiled.weight_set.sorted_values
        slabs[f"learn/{j}/weight_prefix"] = compiled.weight_prefix
        slabs[f"learn/{j}/pair_prefix_cols"] = compiled.pair_prefix_cols
        slabs[f"learn/{j}/self_costs"] = compiled.self_costs
    for j, (key, compiled) in enumerate(bundle._tester_compiled_cache.items()):
        num_sets, set_size = key
        memo = [
            [
                int(start),
                int(stop),
                str(metric),
                float(epsilon),
                float(scale),
                bool(result.accepted),
                str(result.reason),
                None if result.statistic is None else float(result.statistic),
                None if result.threshold is None else float(result.threshold),
            ]
            for (start, stop, metric, epsilon, scale), result in (
                compiled._memo.items()
            )
        ]
        meta["test"].append(
            {
                "num_sets": int(num_sets),
                "set_size": int(set_size),
                "memo": memo,
                "memo_hits": int(compiled.memo_hits),
                "memo_misses": int(compiled.memo_misses),
            }
        )
        slabs[f"test/{j}/count_cols"] = compiled._count_cols
        slabs[f"test/{j}/pair_cols"] = compiled._pair_cols
    return meta, slabs


def restore_bundle(bundle, meta: dict, slab) -> None:
    """Rebuild one bundle in place from restored state (zero-copy)."""
    _check_fingerprint(
        "bundle", {"n": int(meta["n"])}, {"n": int(bundle._n)}
    )
    bundle.invalidate()
    bundle._weight_pool = _restored_pool(slab("pool/weight"))
    bundle._collision_pool = [
        _restored_pool(slab(f"pool/collision/{i}"))
        for i in range(int(meta["collision_pools"]))
    ]
    bundle._tester_pool = [
        _restored_pool(slab(f"pool/tester/{i}"))
        for i in range(int(meta["tester_pools"]))
    ]
    for j, entry in enumerate(meta["learn"]):
        candidates = CandidateSet(
            slab(f"learn/{j}/grid"),
            slab(f"learn/{j}/lo"),
            slab(f"learn/{j}/hi"),
        )
        compiled = CompiledGreedySketches(
            candidates=candidates,
            weight_set=_sample_set_over(
                slab(f"learn/{j}/weight_sorted"), bundle._n
            ),
            weight_prefix=slab(f"learn/{j}/weight_prefix"),
            pair_prefix_cols=slab(f"learn/{j}/pair_prefix_cols"),
            self_costs=slab(f"learn/{j}/self_costs"),
            pairs_per_set=float(entry["pairs_per_set"]),
        )
        key = (
            str(entry["method"]),
            (
                None
                if entry["max_candidates"] is None
                else int(entry["max_candidates"])
            ),
            int(entry["weight_sample_size"]),
            int(entry["collision_sets"]),
            int(entry["collision_set_size"]),
        )
        bundle._compiled_cache[key] = compiled
    for j, entry in enumerate(meta["test"]):
        compiled = CompiledTesterSketches(
            slab(f"test/{j}/count_cols"),
            slab(f"test/{j}/pair_cols"),
            int(entry["set_size"]),
        )
        for row in entry["memo"]:
            start, stop, metric, epsilon, scale = row[:5]
            accepted, reason, statistic, threshold = row[5:]
            key = (
                int(start),
                int(stop),
                str(metric),
                float(epsilon),
                float(scale),
            )
            compiled._memo[key] = FlatnessResult(
                bool(accepted),
                str(reason),
                None if statistic is None else float(statistic),
                None if threshold is None else float(threshold),
            )
        compiled.memo_hits = int(entry["memo_hits"])
        compiled.memo_misses = int(entry["memo_misses"])
        key = (int(entry["num_sets"]), int(entry["set_size"]))
        bundle._tester_compiled_cache[key] = compiled
    bundle.draw_events.clear()
    bundle.draw_events.update(
        {str(key): int(value) for key, value in meta["draw_events"].items()}
    )
    bundle.samples_drawn = int(meta["samples_drawn"])
    # In place: the reservoir, session, and bundle of one fleet member
    # share this Generator, so all three rewind together.
    bundle._rng.bit_generator.state = meta["rng_state"]


# ------------------------------------------------------------------ #
# HistogramFleet
# ------------------------------------------------------------------ #


def fleet_state(fleet) -> tuple[dict, dict]:
    """Every member bundle plus the fleet's configuration fingerprint.

    The stacked ``(F, n+1, r)`` tester slabs are recomputed on restore
    from the members' compiled testers (``adopt_member`` copies each
    layout back into fresh stacks), so only per-member state persists.
    """
    members = []
    slabs: dict = {}
    for f, session in enumerate(fleet._sessions):
        member_meta, member_slabs = bundle_state(session._bundle)
        members.append(member_meta)
        for name, array in member_slabs.items():
            slabs[f"member/{f}/{name}"] = array
    meta = {
        "n": int(fleet._n),
        "size": int(fleet.size),
        "method": fleet._method,
        "engine": fleet._engine,
        "tester_engine": fleet._tester_engine,
        "max_candidates": fleet._max_candidates,
        "members": members,
    }
    return meta, slabs


def _fleet_fingerprint(fleet) -> dict:
    return {
        "n": int(fleet._n),
        "size": int(fleet.size),
        "method": fleet._method,
        "engine": fleet._engine,
        "tester_engine": fleet._tester_engine,
        "max_candidates": fleet._max_candidates,
    }


def restore_fleet(fleet, meta: dict, slab) -> None:
    """Rebuild every member bundle of a freshly constructed fleet."""
    expected = _fleet_fingerprint(fleet)
    _check_fingerprint(
        "fleet", {key: meta.get(key) for key in expected}, expected
    )
    # Drop any existing warm state (including stacked tester slabs);
    # the next fleet op re-adopts the restored compiled testers.
    fleet.invalidate()
    for f, member_meta in enumerate(meta["members"]):
        restore_bundle(
            fleet._sessions[f]._bundle, member_meta, _scoped(slab, f"member/{f}/")
        )


# ------------------------------------------------------------------ #
# FleetMaintainer
# ------------------------------------------------------------------ #


def slab_member(name: str) -> int | None:
    """Which fleet member owns one maintainer-level slab (or ``None``).

    The maintainer's slab namespace is member-partitioned —
    ``fleet/member/{f}/...`` (the bundle tree), ``hist/{f}/...`` (the
    stored histogram), ``reservoir/{f}`` — which is what lets a
    differential checkpoint re-write only the slabs of members whose
    generation moved.  Names outside those prefixes (there are none
    today, but the seam is honest) report ``None`` and are always
    re-written.
    """
    for prefix in ("fleet/member/", "hist/", "reservoir/"):
        if name.startswith(prefix):
            return int(name[len(prefix) :].split("/", 1)[0])
    return None


def maintainer_state(maintainer) -> tuple[dict, dict]:
    """Reservoirs, rebuild counters, stored histograms, and the fleet."""
    fleet_meta, fleet_slabs = fleet_state(maintainer._fleet)
    slabs = {f"fleet/{name}": array for name, array in fleet_slabs.items()}
    histograms = []
    for f, histogram in enumerate(maintainer._histograms):
        histograms.append(histogram is not None)
        if histogram is not None:
            slabs[f"hist/{f}/boundaries"] = histogram.boundaries
            slabs[f"hist/{f}/values"] = histogram.values
    for f, reservoir in enumerate(maintainer._reservoirs):
        slabs[f"reservoir/{f}"] = reservoir._items[: reservoir.size]
    params = maintainer._params
    meta = {
        "fleet_size": int(maintainer.fleet_size),
        "n": int(maintainer._n),
        "k": int(maintainer._k),
        "epsilon": float(maintainer._epsilon),
        "reservoir_capacity": int(maintainer._reservoirs[0].capacity),
        "refresh_every": int(maintainer._refresh_every),
        "params": [
            int(params.weight_sample_size),
            int(params.collision_sets),
            int(params.collision_set_size),
            int(params.rounds),
        ],
        "reservoir_seen": [int(r.seen) for r in maintainer._reservoirs],
        "items_seen": [int(v) for v in maintainer._items_seen],
        "since_rebuild": [int(v) for v in maintainer._since_rebuild],
        "stale": [bool(v) for v in maintainer._stale],
        "rebuilds": int(maintainer._rebuilds),
        "histograms": histograms,
        "fleet": fleet_meta,
    }
    return meta, slabs


def _maintainer_fingerprint(maintainer) -> dict:
    params = maintainer._params
    return {
        "fleet_size": int(maintainer.fleet_size),
        "n": int(maintainer._n),
        "k": int(maintainer._k),
        "epsilon": float(maintainer._epsilon),
        "reservoir_capacity": int(maintainer._reservoirs[0].capacity),
        "refresh_every": int(maintainer._refresh_every),
        "params": [
            int(params.weight_sample_size),
            int(params.collision_sets),
            int(params.collision_set_size),
            int(params.rounds),
        ],
    }


def restore_maintainer(maintainer, meta: dict, slab) -> None:
    """Rebuild a freshly constructed maintainer's whole serving state."""
    expected = _maintainer_fingerprint(maintainer)
    _check_fingerprint(
        "maintainer", {key: meta.get(key) for key in expected}, expected
    )
    restore_fleet(maintainer._fleet, meta["fleet"], _scoped(slab, "fleet/"))
    for f, reservoir in enumerate(maintainer._reservoirs):
        contents = slab(f"reservoir/{f}")
        reservoir._items[: contents.shape[0]] = contents
        reservoir._seen = int(meta["reservoir_seen"][f])
    maintainer._items_seen = [int(v) for v in meta["items_seen"]]
    maintainer._since_rebuild = [int(v) for v in meta["since_rebuild"]]
    maintainer._stale = [bool(v) for v in meta["stale"]]
    maintainer._rebuilds = int(meta["rebuilds"])
    histograms: list = []
    for f, built in enumerate(meta["histograms"]):
        if not built:
            histograms.append(None)
            continue
        histograms.append(
            TilingHistogram(
                maintainer._n,
                np.array(slab(f"hist/{f}/boundaries")),
                np.array(slab(f"hist/{f}/values")),
            )
        )
    maintainer._histograms = histograms
