"""repro — sub-linear approximation and testing of k-histogram distributions.

A faithful, production-quality reproduction of

    Piotr Indyk, Reut Levi, Ronitt Rubinfeld.
    "Approximating and Testing k-Histogram Distributions in Sub-linear
    Time." PODS 2012.

Public surface (see README.md for a tour):

* sessions:  :class:`HistogramSession` — the recommended front door:
  draw a sample budget once, compile sketches once, answer batched
  learn/test/min-k operations with cross-call caching;
* fleets:    :class:`HistogramFleet` — batched learn/test over many
  distributions sharing a domain (vectorised compilation and lockstep
  tester searches, byte-identical to a loop of sessions);
* sharding:  :class:`ShardPlan` / :class:`ParallelExecutor` — the
  parallel shard engine behind ``executor=`` on sessions, fleets, and
  maintainers (mergeable per-shard sketches, process pool over
  shared-memory slabs, byte-identical results);
* learning:  :func:`learn_histogram` (Algorithm 1 / Theorem 2);
* testing:   :func:`test_k_histogram_l2`, :func:`test_k_histogram_l1`
  (Theorems 3/4), :func:`test_uniformity` (the k=1 special case);
* representations: :class:`Interval`, :class:`TilingHistogram`,
  :class:`PriorityHistogram`;
* distributions: :class:`DiscreteDistribution`,
  :class:`EmpiricalDistribution`, the family generators in
  :mod:`repro.distributions`;
* baselines: :func:`voptimal_histogram` (exact DP) and the sampling
  constructions in :mod:`repro.baselines`;
* ground truth: :func:`distance_to_k_histogram` (exact distance to the
  property);
* hard instances: :mod:`repro.core.lower_bound` (Theorem 5).
"""

from repro.api import (
    ArraySource,
    CountingSource,
    HistogramFleet,
    HistogramSession,
    ParallelExecutor,
    SampleSource,
    ShardPlan,
    SketchBundle,
    as_sample_source,
)
from repro.baselines import (
    compressed_from_samples,
    equidepth_from_samples,
    equiwidth_from_samples,
    voptimal_from_samples,
    voptimal_histogram,
)
from repro.core import (
    GreedyParams,
    LearnResult,
    SelectionResult,
    TesterParams,
    TestResult,
    UniformityResult,
    estimate_min_k,
    learn_histogram,
    test_k_histogram_l1,
    test_k_histogram_l2,
    test_uniformity,
)
from repro.distributions import (
    DiscreteDistribution,
    EmpiricalDistribution,
    distance_to_k_histogram,
    is_k_histogram,
    l1_distance,
    l2_distance,
    nearest_k_histogram,
)
from repro.errors import (
    EmptyStreamError,
    InsufficientSamplesError,
    InvalidDistributionError,
    InvalidHistogramError,
    InvalidIntervalError,
    InvalidParameterError,
    ReproError,
)
from repro.histograms import Interval, PriorityHistogram, TilingHistogram, compact

__version__ = "1.0.0"

__all__ = [
    "ArraySource",
    "CountingSource",
    "DiscreteDistribution",
    "EmpiricalDistribution",
    "EmptyStreamError",
    "GreedyParams",
    "HistogramFleet",
    "HistogramSession",
    "InsufficientSamplesError",
    "Interval",
    "InvalidDistributionError",
    "InvalidHistogramError",
    "InvalidIntervalError",
    "InvalidParameterError",
    "LearnResult",
    "ParallelExecutor",
    "PriorityHistogram",
    "ReproError",
    "SampleSource",
    "SelectionResult",
    "ShardPlan",
    "SketchBundle",
    "TestResult",
    "TesterParams",
    "TilingHistogram",
    "UniformityResult",
    "__version__",
    "as_sample_source",
    "compact",
    "compressed_from_samples",
    "distance_to_k_histogram",
    "equidepth_from_samples",
    "equiwidth_from_samples",
    "estimate_min_k",
    "is_k_histogram",
    "l1_distance",
    "l2_distance",
    "learn_histogram",
    "nearest_k_histogram",
    "test_k_histogram_l1",
    "test_k_histogram_l2",
    "test_uniformity",
    "voptimal_from_samples",
    "voptimal_histogram",
]
