"""Tests for repro.api (HistogramSession, SampleSource, SketchBundle).

The two contracts that make the facade safe to adopt:

* a fresh session is seed-for-seed byte-identical to the legacy one-shot
  entry points (same draws, same order, same results);
* batched operations share one sample draw per sketch family (asserted
  through a counting source).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ArraySource,
    CountingSource,
    HistogramSession,
    SampleSource,
    as_sample_source,
)
from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams, TesterParams
from repro.core.selection import estimate_min_k

# Alias the paper-named ``test*`` functions so pytest does not collect them.
from repro.core.tester import test_k_histogram_l1 as khist_test_l1
from repro.core.tester import test_k_histogram_l2 as khist_test_l2
from repro.distributions import families
from repro.errors import InvalidParameterError
from repro.streaming.reservoir import ReservoirSampler

N = 128
DIST = families.random_tiling_histogram(N, 4, rng=7, min_piece=4)
TEST_PARAMS = TesterParams(num_sets=5, set_size=4_000)
LEARN_PARAMS = GreedyParams(
    weight_sample_size=2_000, collision_sets=5, collision_set_size=800, rounds=6
)


def assert_learn_results_equal(a, b):
    assert a.histogram == b.histogram
    assert a.filled_histogram == b.filled_histogram
    assert a.priority_histogram.to_tiling() == b.priority_histogram.to_tiling()
    assert a.rounds == b.rounds
    assert a.params == b.params
    assert a.method == b.method
    assert a.num_candidates == b.num_candidates
    assert a.samples_used == b.samples_used


class TestSampleSource:
    def test_distribution_satisfies_protocol(self):
        assert isinstance(DIST, SampleSource)
        assert as_sample_source(DIST) is DIST

    def test_reservoir_satisfies_protocol(self):
        reservoir = ReservoirSampler(16, rng=1)
        reservoir.update_many(np.arange(16))
        assert isinstance(reservoir, SampleSource)
        assert as_sample_source(reservoir) is reservoir

    def test_array_is_wrapped(self):
        source = as_sample_source(np.array([1, 5, 5, 9]))
        assert isinstance(source, ArraySource)
        assert source.n == 10
        draws = source.sample(1_000, rng=0)
        assert set(np.unique(draws)) <= {1, 5, 9}

    def test_array_source_respects_explicit_n(self):
        assert ArraySource(np.array([1, 2]), n=64).n == 64
        with pytest.raises(InvalidParameterError):
            ArraySource(np.array([1, 70]), n=64)

    def test_array_source_validation(self):
        with pytest.raises(InvalidParameterError):
            ArraySource(np.empty(0, dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            ArraySource(np.array([-1, 2]))
        with pytest.raises(InvalidParameterError):
            ArraySource(np.zeros((2, 2)))

    def test_unsupported_source_rejected(self):
        with pytest.raises(InvalidParameterError):
            as_sample_source(object())

    def test_counting_source_accounts_draws(self):
        counting = CountingSource(DIST)
        counting.sample(10, rng=0)
        counting.sample(5, rng=0)
        assert counting.calls == 2
        assert counting.samples_drawn == 15


class TestSeedEquivalence:
    """One-shot sessions are byte-identical to the legacy entry points."""

    @pytest.mark.parametrize("method", ["fast", "exhaustive"])
    def test_learn_matches_legacy(self, method):
        legacy = learn_histogram(
            DIST, N, 4, 0.3, method=method, scale=0.05, rng=17
        )
        fresh = HistogramSession(DIST, N, rng=17, scale=0.05, method=method)
        assert_learn_results_equal(legacy, fresh.learn(4, 0.3))

    def test_learn_matches_legacy_with_params_and_cap(self):
        legacy = learn_histogram(
            DIST, N, 3, 0.4, params=LEARN_PARAMS, max_candidates=200, rng=3
        )
        fresh = HistogramSession(DIST, N, rng=3, max_candidates=200)
        assert_learn_results_equal(legacy, fresh.learn(3, 0.4, params=LEARN_PARAMS))

    def test_test_l2_matches_legacy(self):
        legacy = khist_test_l2(DIST, N, 4, 0.3, params=TEST_PARAMS, rng=5)
        fresh = HistogramSession(DIST, N, rng=5)
        assert legacy == fresh.test_l2(4, 0.3, params=TEST_PARAMS)

    def test_test_l1_matches_legacy(self):
        legacy = khist_test_l1(DIST, N, 4, 0.3, params=TEST_PARAMS, rng=5)
        fresh = HistogramSession(DIST, N, rng=5)
        assert legacy == fresh.test_l1(4, 0.3, params=TEST_PARAMS)

    def test_min_k_matches_legacy(self):
        legacy = estimate_min_k(DIST, N, 0.25, max_k=10, params=TEST_PARAMS, rng=9)
        fresh = HistogramSession(DIST, N, rng=9)
        assert legacy == fresh.min_k(0.25, max_k=10, params=TEST_PARAMS)

    def test_legacy_shims_stay_deterministic(self):
        """Same seed, same call — twice — gives identical results."""
        a = learn_histogram(DIST, N, 4, 0.3, scale=0.05, rng=11)
        b = learn_histogram(DIST, N, 4, 0.3, scale=0.05, rng=11)
        assert_learn_results_equal(a, b)
        assert khist_test_l2(
            DIST, N, 4, 0.3, params=TEST_PARAMS, rng=11
        ) == khist_test_l2(DIST, N, 4, 0.3, params=TEST_PARAMS, rng=11)


class TestSampleReuse:
    """Batched operations issue one draw per sketch family."""

    GRID = [(2, 0.3), (3, 0.3), (4, 0.25), (5, 0.25)]

    def test_learn_many_single_draw_event(self):
        counting = CountingSource(DIST)
        session = HistogramSession(counting, N, rng=1, scale=0.05)
        results = session.learn_many(self.GRID)
        assert len(results) == 4
        assert session.draw_events == {"learn": 1, "test": 0}
        # One call for the weight sample plus one per collision set, all
        # made while filling the pool once.
        largest = GreedyParams.from_paper(N, 5, 0.25, scale=0.05)
        assert counting.calls == 1 + largest.collision_sets

    def test_learn_many_with_shared_budget_reuses_everything(self):
        counting = CountingSource(DIST)
        session = HistogramSession(counting, N, rng=1, learn_budget=LEARN_PARAMS)
        session.learn_many(self.GRID)
        calls_after_batch = counting.calls
        session.learn(3, 0.28)  # contained sizes: no new draws
        assert counting.calls == calls_after_batch

    def test_learn_budget_varies_rounds_only(self):
        session = HistogramSession(DIST, N, rng=2, learn_budget=LEARN_PARAMS)
        small, large = session.learn_many([(2, 0.5), (5, 0.25)])
        assert small.params.weight_sample_size == large.params.weight_sample_size
        assert len(small.rounds) < len(large.rounds)

    def test_test_many_single_draw_event(self):
        counting = CountingSource(DIST)
        session = HistogramSession(counting, N, rng=1)
        verdicts = session.test_many(self.GRID, norm="l2", params=TEST_PARAMS)
        assert len(verdicts) == 4
        assert session.draw_events == {"learn": 0, "test": 1}
        assert counting.calls == TEST_PARAMS.num_sets

    def test_testers_and_min_k_share_one_pool(self):
        counting = CountingSource(DIST)
        session = HistogramSession(counting, N, rng=1, test_budget=TEST_PARAMS)
        session.test_l2(4, 0.3)
        calls_after_first = counting.calls
        session.test_l1(3, 0.3)
        session.min_k(0.3, max_k=8)
        assert counting.calls == calls_after_first

    def test_pool_growth_draws_only_the_difference(self):
        counting = CountingSource(DIST)
        session = HistogramSession(counting, N, rng=1)
        session.test_l2(4, 0.3, params=TesterParams(num_sets=5, set_size=1_000))
        drawn_small = counting.samples_drawn
        session.test_l2(4, 0.3, params=TesterParams(num_sets=5, set_size=1_500))
        # Each of the 5 sets grows by 500 samples; nothing is re-drawn.
        assert counting.samples_drawn - drawn_small == 5 * 500

    def test_pool_growth_skips_unused_sets(self):
        counting = CountingSource(DIST)
        session = HistogramSession(counting, N, rng=1)
        session.test_l2(4, 0.3, params=TesterParams(num_sets=15, set_size=1_000))
        drawn_wide = counting.samples_drawn
        session.test_l2(4, 0.3, params=TesterParams(num_sets=5, set_size=3_000))
        # Only the 5 sets this call slices grow; the other 10 stay put.
        assert counting.samples_drawn - drawn_wide == 5 * 2_000

    def test_prefetch_learn_makes_later_learns_sample_free(self):
        counting = CountingSource(DIST)
        session = HistogramSession(counting, N, rng=1, scale=0.05)
        session.prefetch_learn(self.GRID)
        drawn = counting.samples_drawn
        session.learn(5, 0.25)
        session.learn(2, 0.3)
        assert counting.samples_drawn == drawn
        assert session.draw_events["learn"] == 1

    def test_invalidate_forces_redraw(self):
        counting = CountingSource(DIST)
        session = HistogramSession(counting, N, rng=1)
        session.test_l2(4, 0.3, params=TEST_PARAMS)
        session.invalidate()
        session.test_l2(4, 0.3, params=TEST_PARAMS)
        assert session.draw_events["test"] == 2
        assert counting.calls == 2 * TEST_PARAMS.num_sets

    def test_repeated_call_is_identical(self):
        """Cached sketches make repeat calls pure."""
        session = HistogramSession(DIST, N, rng=4, scale=0.05)
        assert session.test_l2(4, 0.3, params=TEST_PARAMS) == session.test_l2(
            4, 0.3, params=TEST_PARAMS
        )
        assert_learn_results_equal(session.learn(4, 0.3), session.learn(4, 0.3))


class TestSessionBehaviour:
    def test_samples_drawn_tracks_pool(self):
        session = HistogramSession(DIST, N, rng=1)
        session.test_l2(4, 0.3, params=TEST_PARAMS)
        assert session.samples_drawn == TEST_PARAMS.total_samples

    def test_learn_results_are_sensible(self):
        session = HistogramSession(DIST, N, rng=6, scale=0.05)
        result = session.learn(4, 0.3)
        assert result.histogram.n == N
        assert result.histogram.num_pieces >= 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            HistogramSession(DIST, 0)
        session = HistogramSession(DIST, N, rng=1)
        with pytest.raises(InvalidParameterError):
            session.test_many([(2, 0.3)], norm="tv")
        with pytest.raises(InvalidParameterError):
            session.min_k(0.3, max_k=0)
        with pytest.raises(InvalidParameterError):
            session.min_k(0.3, norm="tv")

    def test_empty_grids(self):
        session = HistogramSession(DIST, N, rng=1)
        assert session.learn_many([]) == []
        assert session.test_many([]) == []
        assert session.samples_drawn == 0

    def test_session_over_raw_array(self):
        values = DIST.sample(20_000, rng=0)
        session = HistogramSession(values, N, rng=1, scale=0.05)
        result = session.learn(4, 0.3)
        assert result.histogram.n == N


class TestGrowablePool:
    """Capacity-doubling pools: amortised growth, draw-only-the-deficit."""

    def test_fill_draws_only_deficit(self):
        from repro.api.sketches import _GrowablePool

        drawn = []

        def draw(count):
            drawn.append(count)
            return np.arange(count)

        pool = _GrowablePool()
        pool.fill_to(10, draw)
        pool.fill_to(10, draw)  # no-op
        pool.fill_to(25, draw)
        assert drawn == [10, 15]
        assert pool.length == 25
        assert list(pool.view(25)) == list(range(10)) + list(range(15))

    def test_views_are_read_only_and_zero_copy(self):
        from repro.api.sketches import _GrowablePool

        pool = _GrowablePool()
        pool.fill_to(8, lambda count: np.arange(count))
        view = pool.view(4)
        assert view.base is not None  # a view into the buffer, not a copy
        with pytest.raises(ValueError):
            view[0] = 99

    def test_capacity_doubles(self):
        from repro.api.sketches import _GrowablePool

        pool = _GrowablePool()
        pool.fill_to(4, lambda count: np.zeros(count, dtype=np.int64))
        pool.fill_to(5, lambda count: np.zeros(count, dtype=np.int64))
        assert pool.capacity >= 8  # doubled, not resized-to-fit
        pool.fill_to(6, lambda count: np.zeros(count, dtype=np.int64))
        assert pool.capacity >= 8

    def test_budget_bumps_keep_prefix(self):
        """Repeated learn budget bumps re-use the drawn prefix unchanged."""
        session = HistogramSession(DIST, N, rng=4)
        small = GreedyParams(
            weight_sample_size=500, collision_sets=3, collision_set_size=300, rounds=2
        )
        big = GreedyParams(
            weight_sample_size=900, collision_sets=4, collision_set_size=700, rounds=2
        )
        first = session._bundle.learn_samples(small)
        prefix = first.weight_samples.copy()
        second = session._bundle.learn_samples(big)
        assert np.array_equal(second.weight_samples[:500], prefix)
        assert session.draw_events == {"learn": 2, "test": 0}
