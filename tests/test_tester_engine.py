"""Equivalence of the compiled tester engine against the per-query path.

The compiled engine (``engine="compiled"``) answers Algorithm 2's
flatness queries from precomputed ``(n + 1, r)`` prefix gathers with a
verdict memo; ``engine="full"`` re-runs the per-set searches on every
probe.  The contract is *byte*-identity on verdicts **and query logs**
(``TestResult`` equality compares both), pinned here on one-shot
testers, session grids, min-k sweeps, and a hypothesis lockstep over
random ``(n, k, eps)`` grids — plus the cache-lifetime rules
(memo-hit accounting, invalidation) the session relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CountingSource, HistogramSession
from repro.core.flatness import (
    CompiledTesterSketches,
    compile_tester_sketches,
    flatness_oracle,
)

# Alias the paper-named ``test*`` functions so pytest does not collect them.
from repro.core.flatness import test_flatness_l1 as flatness_l1
from repro.core.flatness import test_flatness_l2 as flatness_l2
from repro.core.params import TesterParams
from repro.core.selection import estimate_min_k
from repro.core.tester import test_k_histogram_l1 as khist_test_l1
from repro.core.tester import test_k_histogram_l2 as khist_test_l2
from repro.distributions import families
from repro.errors import InvalidParameterError
from repro.samples.estimators import MultiSketch
from repro.streaming.maintainer import StreamingHistogramMaintainer

PARAMS = TesterParams(num_sets=9, set_size=8_000)

CASES = [
    ("4-hist", families.random_tiling_histogram(256, 4, rng=3, min_piece=8), 256),
    ("sawtooth", families.sawtooth(128), 128),
    ("spikes", families.spikes(256, 8), 256),
    ("zipf", families.zipf(192, 1.0), 192),
]


def make_multi(dist, n, rng):
    return MultiSketch.from_sample_sets(
        dist.sample_sets(PARAMS.num_sets, PARAMS.set_size, np.random.default_rng(rng)),
        n,
    )


class TestEngineEquivalence:
    """compiled == full, bit for bit, verdicts and query logs."""

    @pytest.mark.parametrize("name,dist,n", CASES, ids=[c[0] for c in CASES])
    @pytest.mark.parametrize("seed", [1, 23])
    def test_one_shot_l2(self, name, dist, n, seed):
        compiled = khist_test_l2(dist, n, 4, 0.25, params=PARAMS, rng=seed)
        full = khist_test_l2(
            dist, n, 4, 0.25, params=PARAMS, engine="full", rng=seed
        )
        assert compiled == full  # partition, queries, verdict — everything

    @pytest.mark.parametrize("name,dist,n", CASES, ids=[c[0] for c in CASES])
    def test_one_shot_l1(self, name, dist, n):
        compiled = khist_test_l1(dist, n, 4, 0.25, params=PARAMS, rng=7)
        full = khist_test_l1(dist, n, 4, 0.25, params=PARAMS, engine="full", rng=7)
        assert compiled == full

    def test_min_k_equivalence(self):
        dist = families.two_level(256, heavy_start=64, heavy_length=64)
        compiled = estimate_min_k(dist, 256, 0.25, max_k=10, params=PARAMS, rng=5)
        full = estimate_min_k(
            dist, 256, 0.25, max_k=10, params=PARAMS, engine="full", rng=5
        )
        assert compiled == full

    def test_compiled_queries_match_per_query_oracle(self):
        """Every (start, stop) agrees with the legacy one-shot flatness tests."""
        dist = families.zipf(96, 1.0)
        multi = make_multi(dist, 96, 11)
        compiled = compile_tester_sketches(multi)
        l2 = compiled.oracle("l2", 0.3)
        l1 = compiled.oracle("l1", 0.3, scale=0.01)
        rng = np.random.default_rng(0)
        for _ in range(60):
            start = int(rng.integers(0, 95))
            stop = int(rng.integers(start + 1, 97))
            assert l2(start, stop) == flatness_l2(multi, start, stop, 0.3)
            assert l1(start, stop) == flatness_l1(
                multi, start, stop, 0.3, scale=0.01
            )

    def test_invalid_engine_rejected(self):
        with pytest.raises(InvalidParameterError):
            khist_test_l2(families.uniform(16), 16, 2, 0.3, engine="magic", rng=1)
        with pytest.raises(InvalidParameterError):
            HistogramSession(families.uniform(16), 16, tester_engine="magic")


class TestSessionEquivalence:
    """A (k, eps) grid through HistogramSession: engines agree per point."""

    GRID = [(2, 0.3), (3, 0.3), (4, 0.25), (6, 0.25)]

    @pytest.mark.parametrize("norm", ["l1", "l2"])
    def test_test_many_grid(self, norm):
        dist = families.random_tiling_histogram(128, 4, rng=9, min_piece=4)
        compiled = HistogramSession(dist, 128, rng=3, test_budget=PARAMS)
        full = HistogramSession(
            dist, 128, rng=3, test_budget=PARAMS, tester_engine="full"
        )
        assert compiled.test_many(self.GRID, norm=norm) == full.test_many(
            self.GRID, norm=norm
        )

    def test_engine_override_per_call(self):
        dist = families.sawtooth(128)
        session = HistogramSession(dist, 128, rng=2, test_budget=PARAMS)
        assert session.test_l2(3, 0.3) == session.test_l2(3, 0.3, engine="full")
        assert session.min_k(0.3, max_k=6) == session.min_k(
            0.3, max_k=6, engine="full"
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lockstep_random_grids(seed):
    """Hypothesis lockstep: random (n, k, eps) grids, both engines.

    Verdicts and query logs must be identical point for point, and the
    shared compiled object's memo accounting must tally exactly: every
    probe is either a hit or a miss, and the misses are the distinct
    memo keys.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(32, 160))
    pieces = int(rng.integers(1, 6))
    dist = families.random_tiling_histogram(n, pieces, rng=seed % 13 + 1, min_piece=2)
    grid = [
        (int(rng.integers(1, n // 2 + 2)), float(rng.choice([0.2, 0.25, 0.3, 0.4])))
        for _ in range(3)
    ]
    params = TesterParams(num_sets=5, set_size=2_000)
    compiled_session = HistogramSession(dist, n, rng=seed, test_budget=params)
    full_session = HistogramSession(
        dist, n, rng=seed, test_budget=params, tester_engine="full"
    )
    norm = "l2" if seed % 2 else "l1"
    a = compiled_session.test_many(grid, norm=norm)
    b = full_session.test_many(grid, norm=norm)
    assert a == b
    # Memo accounting on the session's shared compiled object.
    sketches = compiled_session._bundle._tester_compiled_cache[
        (params.num_sets, params.set_size)
    ]
    total_queries = sum(len(r.queries) for r in a)
    assert sketches.memo_hits + sketches.memo_misses == total_queries
    assert sketches.memo_misses == sketches.memo_size
    assert sketches.memo_hits == total_queries - sketches.memo_size


class TestMemoSharing:
    """The verdict memo is shared where the design says it is."""

    def test_repeat_call_is_all_hits(self):
        dist = families.zipf(128, 1.0)
        session = HistogramSession(dist, 128, rng=1, test_budget=PARAMS)
        first = session.test_l2(4, 0.3)
        sketches = session._bundle._tester_compiled_cache[
            (PARAMS.num_sets, PARAMS.set_size)
        ]
        misses_after_first = sketches.memo_misses
        second = session.test_l2(4, 0.3)
        assert first == second
        assert sketches.memo_misses == misses_after_first  # zero new work

    def test_grid_points_share_verdicts(self):
        """k only caps the piece count: larger k replays smaller k's probes."""
        dist = families.random_tiling_histogram(128, 4, rng=5, min_piece=8)
        session = HistogramSession(dist, 128, rng=1, test_budget=PARAMS)
        session.test_l2(2, 0.3)
        sketches = session._bundle._tester_compiled_cache[
            (PARAMS.num_sets, PARAMS.set_size)
        ]
        misses_small_k = sketches.memo_misses
        session.test_l2(6, 0.3)
        hits = sketches.memo_hits
        assert hits >= misses_small_k  # the k=2 search replayed entirely
        session.min_k(0.3, max_k=6, norm="l2")
        assert sketches.memo_misses == sketches.memo_size

    def test_distinct_epsilons_do_not_collide(self):
        dist = families.uniform(64)
        multi = make_multi(dist, 64, 3)
        sketches = compile_tester_sketches(multi)
        a = sketches.oracle("l2", 0.3)(0, 64)
        b = sketches.oracle("l2", 0.5)(0, 64)
        assert sketches.memo_misses == 2  # same interval, two keys
        assert a == flatness_l2(multi, 0, 64, 0.3)
        assert b == flatness_l2(multi, 0, 64, 0.5)


class TestCacheLifetime:
    """Compile-once semantics and invalidation through the session."""

    def test_one_compile_per_budget(self):
        counting = CountingSource(families.zipf(96, 1.0))
        session = HistogramSession(counting, 96, rng=1, test_budget=PARAMS)
        session.test_l2(3, 0.3)
        sketches_first = session._bundle._tester_compiled_cache[
            (PARAMS.num_sets, PARAMS.set_size)
        ]
        session.test_l1(4, 0.25)
        session.min_k(0.3, max_k=5)
        cache = session._bundle._tester_compiled_cache
        assert len(cache) == 1
        assert cache[(PARAMS.num_sets, PARAMS.set_size)] is sketches_first

    def test_invalidate_drops_tester_compile_cache(self):
        session = HistogramSession(
            families.zipf(96, 1.0), 96, rng=1, test_budget=PARAMS
        )
        session.test_l2(3, 0.3)
        assert session._bundle._tester_compiled_cache
        session.invalidate()
        assert session._bundle._tester_compiled_cache == {}
        session.test_l2(3, 0.3)  # recompiles from the fresh pool
        assert len(session._bundle._tester_compiled_cache) == 1

    def test_validation_happens_once_not_per_query(self):
        """Bad parameters fail at oracle creation, before any probe."""
        multi = make_multi(families.uniform(64), 64, 1)
        sketches = compile_tester_sketches(multi)
        with pytest.raises(InvalidParameterError):
            sketches.oracle("l2", 0.0)
        with pytest.raises(InvalidParameterError):
            sketches.oracle("l1", 0.3, scale=0.0)
        with pytest.raises(InvalidParameterError):
            sketches.oracle("tv", 0.3)
        with pytest.raises(InvalidParameterError):
            flatness_oracle(multi, "l2", 1.5)
        assert sketches.memo_misses == 0  # nothing ran

    def test_compile_matches_batched_interval_prefixes(self):
        """Per-sketch compilation equals the one-sort batched pass."""
        from repro.samples.collision import batched_interval_prefixes

        dist = families.zipf(64, 1.0)
        sets = dist.sample_sets(3, 1_000, np.random.default_rng(2))
        compiled = compile_tester_sketches(MultiSketch.from_sample_sets(sets, 64))
        grid = np.arange(65, dtype=np.int64)
        count_rows, pair_rows = batched_interval_prefixes(sets, 64, grid)
        assert np.array_equal(compiled._count_cols, count_rows.T)
        assert np.array_equal(compiled._pair_cols, pair_rows.T)
        assert compiled.set_size == 1_000

    def test_compiled_properties(self):
        multi = make_multi(families.uniform(64), 64, 1)
        sketches = compile_tester_sketches(multi)
        assert isinstance(sketches, CompiledTesterSketches)
        assert sketches.n == 64
        assert sketches.num_sets == PARAMS.num_sets
        assert sketches.set_size == PARAMS.set_size


class TestMaintainerPassthrough:
    """The streaming maintainer forwards both engines and can test."""

    def _fed(self, **kwargs):
        dist = families.random_tiling_histogram(64, 3, rng=4, min_piece=8)
        maintainer = StreamingHistogramMaintainer(
            64, 3, refresh_every=1_000, reservoir_capacity=1_000, rng=8, **kwargs
        )
        maintainer.update_many(dist.sample(4_000, np.random.default_rng(9)))
        return maintainer

    def test_test_defaults_to_own_shape(self):
        maintainer = self._fed()
        result = maintainer.test()
        assert result.k == 3
        assert result.epsilon == 0.25
        assert result.norm == "l2"

    def test_engines_agree_over_the_reservoir(self):
        compiled = self._fed()
        full = self._fed(tester_engine="full")
        assert compiled.test(4, 0.3) == full.test(4, 0.3)
        assert compiled.min_k(0.3, max_k=8) == full.min_k(0.3, max_k=8)

    def test_probes_share_session_budget(self):
        maintainer = self._fed()
        maintainer.test()
        drawn = maintainer._session.samples_drawn
        maintainer.min_k(max_k=8)  # same budget: no new draws
        assert maintainer._session.samples_drawn == drawn

    def test_update_invalidates_before_next_probe(self):
        maintainer = self._fed()
        maintainer.test()
        events = maintainer._session.draw_events["test"]
        maintainer.update(5)
        maintainer.test()
        assert maintainer._session.draw_events["test"] == events + 1

    def test_empty_reservoir_raises(self):
        maintainer = StreamingHistogramMaintainer(64, 2, rng=1)
        with pytest.raises(InvalidParameterError):
            maintainer.test()
        with pytest.raises(InvalidParameterError):
            maintainer.min_k()
