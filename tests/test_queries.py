"""Tests for repro.queries (selectivity estimation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import families
from repro.errors import InvalidParameterError
from repro.histograms.intervals import Interval
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram
from repro.queries.evaluate import evaluate_estimator
from repro.queries.selectivity import SelectivityEstimator, true_selectivity
from repro.queries.workload import (
    mixed_workload,
    point_queries,
    random_ranges,
    short_ranges,
)


class TestTrueSelectivity:
    def test_full_domain(self):
        assert true_selectivity(families.uniform(16), Interval(0, 16)) == pytest.approx(1.0)

    def test_subrange(self):
        assert true_selectivity(families.uniform(16), Interval(4, 8)) == pytest.approx(0.25)


class TestSelectivityEstimator:
    def test_exact_on_matching_histogram(self):
        hist = TilingHistogram(16, [0, 8, 16], [0.05, 0.075])
        est = SelectivityEstimator(hist)
        assert est.estimate(Interval(0, 8)) == pytest.approx(0.4)
        assert est.estimate(Interval(4, 12)) == pytest.approx(0.5)

    def test_accepts_priority_histogram(self):
        hist = PriorityHistogram(16)
        hist.add(Interval(0, 16), 1 / 16)
        est = SelectivityEstimator(hist)
        assert est.estimate(Interval(0, 4)) == pytest.approx(0.25)

    def test_rejects_non_histogram(self):
        with pytest.raises(TypeError):
            SelectivityEstimator(np.ones(4) / 4)

    def test_estimate_many(self):
        est = SelectivityEstimator(TilingHistogram.uniform(16))
        out = est.estimate_many([Interval(0, 8), Interval(0, 4)])
        assert np.allclose(out, [0.5, 0.25])

    def test_summary_size(self):
        est = SelectivityEstimator(TilingHistogram(16, [0, 4, 16], [0.1, 0.05]))
        assert est.summary_size == 2


class TestWorkloads:
    @pytest.mark.parametrize(
        "factory", [random_ranges, point_queries, mixed_workload]
    )
    def test_queries_inside_domain(self, factory, rng):
        for q in factory(64, 50, rng):
            assert 0 <= q.start < q.stop <= 64

    def test_short_ranges_width(self, rng):
        for q in short_ranges(64, 20, width=5, rng=rng):
            assert q.length == 5

    def test_short_ranges_default_width(self, rng):
        queries = short_ranges(64, 20, rng=rng)
        assert all(q.length == 2 for q in queries)

    def test_point_queries_are_singletons(self, rng):
        assert all(q.length == 1 for q in point_queries(64, 20, rng))

    def test_counts(self, rng):
        assert len(mixed_workload(64, 31, rng)) == 31
        assert len(random_ranges(64, 0, rng)) == 0

    def test_deterministic_given_seed(self):
        assert random_ranges(64, 10, 3) == random_ranges(64, 10, 3)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            random_ranges(0, 5)
        with pytest.raises(InvalidParameterError):
            short_ranges(64, 5, width=65)


class TestEvaluateEstimator:
    def test_perfect_histogram_scores_zero(self, rng):
        dist = families.random_tiling_histogram(64, 4, rng)
        hist = TilingHistogram.from_pmf(dist.pmf)
        report = evaluate_estimator(
            SelectivityEstimator(hist), dist, mixed_workload(64, 60, rng)
        )
        assert report.mean_absolute == pytest.approx(0.0, abs=1e-12)
        assert report.max_absolute == pytest.approx(0.0, abs=1e-12)

    def test_better_summary_scores_better(self, rng):
        """v-optimal beats equi-width on skewed data."""
        from repro.baselines.equiwidth import equiwidth_from_pmf
        from repro.baselines.voptimal import voptimal_histogram

        dist = families.zipf(256, 1.2)
        workload = mixed_workload(256, 150, rng)
        good = evaluate_estimator(
            SelectivityEstimator(voptimal_histogram(dist.pmf, 8)), dist, workload
        )
        bad = evaluate_estimator(
            SelectivityEstimator(equiwidth_from_pmf(dist.pmf, 8)), dist, workload
        )
        assert good.mean_absolute < bad.mean_absolute

    def test_report_fields(self, rng):
        dist = families.uniform(64)
        report = evaluate_estimator(
            SelectivityEstimator(TilingHistogram.uniform(64)),
            dist,
            point_queries(64, 10, rng),
        )
        assert report.num_queries == 10
        assert report.summary_size == 1
        assert report.rmse >= 0

    def test_empty_workload_raises(self):
        with pytest.raises(InvalidParameterError):
            evaluate_estimator(
                SelectivityEstimator(TilingHistogram.uniform(4)),
                families.uniform(4),
                [],
            )
