"""Tests for repro.streaming (reservoir + maintainer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import families
from repro.distributions.distances import l1_distance
from repro.errors import InvalidParameterError
from repro.streaming.maintainer import StreamingHistogramMaintainer
from repro.streaming.reservoir import ReservoirSampler


class TestReservoir:
    def test_fills_to_capacity(self):
        res = ReservoirSampler(4, rng=1)
        res.update_many(np.arange(3))
        assert res.size == 3 and res.seen == 3
        res.update_many(np.arange(10))
        assert res.size == 4 and res.seen == 13

    def test_small_stream_kept_exactly(self):
        res = ReservoirSampler(10, rng=1)
        res.update_many(np.array([5, 7, 9]))
        assert sorted(res.contents()) == [5, 7, 9]

    def test_uniformity_of_retention(self):
        """Algorithm R invariant: every item retained w.p. capacity/seen."""
        capacity, stream_len, trials = 8, 64, 600
        counts = np.zeros(stream_len)
        for t in range(trials):
            res = ReservoirSampler(capacity, rng=t)
            res.update_many(np.arange(stream_len))
            counts[res.contents()] += 1
        expected = capacity / stream_len
        rates = counts / trials
        assert np.abs(rates - expected).max() < 0.08

    def test_sample_with_replacement(self):
        res = ReservoirSampler(4, rng=1)
        res.update_many(np.array([3, 3, 3, 3]))
        assert np.all(res.sample(10, rng=2) == 3)

    def test_empty_sample_raises(self):
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(4).sample(1)

    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(0)


class TestMaintainer:
    def test_summarises_stationary_stream(self, rng):
        dist = families.random_tiling_histogram(128, 4, 3, min_piece=8)
        maintainer = StreamingHistogramMaintainer(
            128, 4, refresh_every=2_000, reservoir_capacity=2_000, rng=5
        )
        maintainer.update_many(dist.sample(10_000, rng))
        summary = maintainer.histogram
        assert l1_distance(dist, summary) < 0.25

    def test_adapts_to_drift(self, rng):
        """After a distribution shift, rebuilds track the new regime."""
        before = families.two_level(128, heavy_start=0, heavy_length=16)
        after = families.two_level(128, heavy_start=96, heavy_length=16)
        maintainer = StreamingHistogramMaintainer(
            128, 4, refresh_every=1_000, reservoir_capacity=1_000, rng=6
        )
        maintainer.update_many(before.sample(3_000, rng))
        _ = maintainer.histogram
        # Flood with the new regime: the reservoir turns over.
        maintainer.update_many(after.sample(30_000, rng))
        summary = maintainer.histogram
        assert summary.range_mass(__import__("repro").Interval(96, 112)) > 0.5

    def test_windowed_mode_adapts_faster(self, rng):
        """forget_after_rebuild bounds staleness by one refresh window."""
        before = families.two_level(128, heavy_start=0, heavy_length=16)
        after = families.two_level(128, heavy_start=96, heavy_length=16)
        windowed = StreamingHistogramMaintainer(
            128, 4, refresh_every=1_000, reservoir_capacity=1_000,
            forget_after_rebuild=True, rng=6,
        )
        windowed.update_many(before.sample(3_000, rng))
        _ = windowed.histogram
        windowed.update_many(after.sample(2_000, rng))
        summary = windowed.histogram
        assert summary.range_mass(__import__("repro").Interval(96, 112)) > 0.5

    def test_lazy_rebuild_counting(self, rng):
        dist = families.uniform(64)
        maintainer = StreamingHistogramMaintainer(
            64, 2, refresh_every=500, reservoir_capacity=500, rng=7
        )
        maintainer.update_many(dist.sample(500, rng))
        assert maintainer.rebuilds == 0  # lazy: nothing rebuilt yet
        _ = maintainer.histogram
        assert maintainer.rebuilds == 1
        _ = maintainer.histogram
        assert maintainer.rebuilds == 1  # cached between refreshes
        maintainer.update_many(dist.sample(500, rng))
        _ = maintainer.histogram
        assert maintainer.rebuilds == 2

    def test_empty_stream_raises(self):
        maintainer = StreamingHistogramMaintainer(64, 2, rng=8)
        with pytest.raises(InvalidParameterError):
            _ = maintainer.histogram

    def test_out_of_domain_update_raises(self):
        maintainer = StreamingHistogramMaintainer(64, 2, rng=9)
        with pytest.raises(InvalidParameterError):
            maintainer.update(64)
        with pytest.raises(InvalidParameterError):
            maintainer.update_many(np.array([-1]))

    def test_items_seen(self, rng):
        maintainer = StreamingHistogramMaintainer(64, 2, rng=10)
        maintainer.update(5)
        maintainer.update_many(np.array([1, 2, 3]))
        assert maintainer.items_seen == 4

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            StreamingHistogramMaintainer(0, 2)
        with pytest.raises(InvalidParameterError):
            StreamingHistogramMaintainer(64, 2, refresh_every=0)


class TestEmptyStreamProbes:
    """Probing any maintainer before its first observation is a clear
    :class:`EmptyStreamError` (a ReproError), never a stale-pool crash."""

    def test_single_stream_probes_raise_empty_stream_error(self):
        from repro.errors import EmptyStreamError, ReproError

        maintainer = StreamingHistogramMaintainer(64, 2, rng=1)
        for probe in (maintainer.test, maintainer.min_k, lambda: maintainer.histogram):
            with pytest.raises(EmptyStreamError):
                probe()
            with pytest.raises(ReproError):  # the catch-all contract
                probe()

    def test_probe_after_forgetting_rebuild_raises_cleanly(self, rng):
        """forget_after_rebuild empties the reservoir; the next probe must
        fail with the same clear error, not a crash from stale pools."""
        from repro.errors import EmptyStreamError

        maintainer = StreamingHistogramMaintainer(
            64, 2, rng=2, forget_after_rebuild=True,
            refresh_every=16, reservoir_capacity=16,
        )
        maintainer.update_many(rng.integers(0, 64, size=32))
        _ = maintainer.histogram  # rebuild resets the reservoir
        with pytest.raises(EmptyStreamError):
            maintainer.test()
        with pytest.raises(EmptyStreamError):
            maintainer.min_k()

    def test_empty_stream_error_is_backward_compatible(self):
        """Existing callers catching InvalidParameterError keep working."""
        from repro.errors import EmptyStreamError

        assert issubclass(EmptyStreamError, InvalidParameterError)


class TestFleetMaintainer:
    def _fed(self, fleet_size=3, **kwargs):
        from repro.streaming import FleetMaintainer

        dist = families.random_tiling_histogram(64, 3, rng=4, min_piece=8)
        maintainer = FleetMaintainer(
            fleet_size, 64, 3, refresh_every=1_000, reservoir_capacity=500,
            rng=8, **kwargs,
        )
        feeder = np.random.default_rng(9)
        for member in range(fleet_size):
            maintainer.update_many(member, dist.sample(2_000, feeder))
        return maintainer

    def test_histograms_and_probes_cover_the_fleet(self):
        maintainer = self._fed()
        summaries = maintainer.histograms()
        assert len(summaries) == 3
        assert maintainer.rebuilds == 3
        verdicts = maintainer.test()
        assert len(verdicts) == 3
        assert all(v.k == 3 and v.norm == "l2" for v in verdicts)
        selections = maintainer.min_k(0.3, max_k=8, norm="l2")
        assert len(selections) == 3

    def test_lazy_per_member_invalidation(self):
        maintainer = self._fed()
        maintainer.test()
        events = [e["test"] for e in maintainer.fleet.draw_events]
        maintainer.update(1, 5)  # only member 1 absorbs an item
        maintainer.test()
        after = [e["test"] for e in maintainer.fleet.draw_events]
        assert after[1] == events[1] + 1
        assert after[0] == events[0] and after[2] == events[2]

    def test_partial_rebuilds_only_due_members(self):
        maintainer = self._fed()
        maintainer.histograms()
        rebuilds = maintainer.rebuilds
        maintainer.update_many(2, np.random.default_rng(3).integers(0, 64, 1_000))
        maintainer.histograms()  # only member 2 crossed refresh_every
        assert maintainer.rebuilds == rebuilds + 1

    def test_empty_members_raise_empty_stream_error(self):
        from repro.errors import EmptyStreamError
        from repro.streaming import FleetMaintainer

        maintainer = FleetMaintainer(2, 64, 2, rng=1)
        with pytest.raises(EmptyStreamError):
            maintainer.test()
        with pytest.raises(EmptyStreamError):
            maintainer.min_k()
        with pytest.raises(EmptyStreamError):
            maintainer.histograms()
        maintainer.update(0, 7)
        with pytest.raises(EmptyStreamError):  # member 1 still empty
            maintainer.test()
        with pytest.raises(EmptyStreamError):
            maintainer.histogram(1)
        assert maintainer.histogram(0) is not None

    def test_validation(self):
        from repro.streaming import FleetMaintainer

        with pytest.raises(InvalidParameterError):
            FleetMaintainer(0, 64, 2)
        with pytest.raises(InvalidParameterError):
            FleetMaintainer(2, 64, 0)
        with pytest.raises(InvalidParameterError):
            FleetMaintainer(2, 64, 2, refresh_every=0)
        maintainer = FleetMaintainer(2, 64, 2, rng=1)
        with pytest.raises(InvalidParameterError):
            maintainer.update(5, 1)
        with pytest.raises(InvalidParameterError):
            maintainer.update(0, 64)
        with pytest.raises(InvalidParameterError):
            maintainer.update_many(0, np.array([-1]))
        maintainer.update(0, 1)
        with pytest.raises(InvalidParameterError):
            maintainer.test(norm="tv")

    def test_update_many_rejects_bad_dtype_with_member_context(self):
        from repro.streaming import FleetMaintainer

        maintainer = FleetMaintainer(3, 64, 2, rng=1)
        with pytest.raises(InvalidParameterError) as excinfo:
            maintainer.update_many(1, np.array([0.5, 1.5]))
        message = str(excinfo.value)
        assert "stream 1" in message
        assert "dtype must be integer" in message
        assert "float64" in message

    def test_update_many_rejects_out_of_range_with_span(self):
        from repro.streaming import FleetMaintainer

        maintainer = FleetMaintainer(3, 64, 2, rng=1)
        with pytest.raises(InvalidParameterError) as excinfo:
            maintainer.update_many(2, np.array([3, -4, 70]))
        message = str(excinfo.value)
        assert "stream 2" in message
        assert "[-4, 70]" in message  # the actual batch span, for triage
        assert "outside the domain [0, 64)" in message

    def test_failed_batch_leaves_the_reservoir_untouched(self):
        """Validation is all-or-nothing: a rejected batch must not leak
        a prefix into the reservoir or bump the intake counters."""
        from repro.streaming import FleetMaintainer

        maintainer = FleetMaintainer(2, 64, 2, rng=1)
        maintainer.update_many(0, np.array([1, 2, 3]))
        seen = maintainer.items_seen[0]
        before = sorted(maintainer._reservoirs[0].contents())
        with pytest.raises(InvalidParameterError):
            maintainer.update_many(0, np.array([4, 5, 999]))
        with pytest.raises(InvalidParameterError):
            maintainer.update_many(0, np.array([6.0, 7.0]))
        assert maintainer.items_seen[0] == seen
        assert sorted(maintainer._reservoirs[0].contents()) == before
        assert maintainer.ready == [True, False]  # member 1 still quiet

    def test_update_many_empty_batch_is_a_noop(self):
        from repro.streaming import FleetMaintainer

        maintainer = FleetMaintainer(2, 64, 2, rng=1)
        maintainer.update_many(0, np.array([], dtype=np.int64))
        assert maintainer.items_seen[0] == 0
        assert maintainer.ready == [False, False]

    def test_probe_ready_subset_while_one_stream_quiet(self):
        from repro.errors import EmptyStreamError
        from repro.streaming import FleetMaintainer

        maintainer = FleetMaintainer(
            3, 64, 2, reservoir_capacity=200, refresh_every=400, rng=2
        )
        feeder = np.random.default_rng(5)
        maintainer.update_many(0, feeder.integers(0, 64, 600))
        maintainer.update_many(2, feeder.integers(0, 64, 600))
        with pytest.raises(EmptyStreamError):
            maintainer.test()  # member 1 still quiet
        verdicts = maintainer.test(members=[0, 2])
        assert len(verdicts) == 2
        selections = maintainer.min_k(0.3, max_k=8, norm="l2", members=[2])
        assert len(selections) == 1
        with pytest.raises(EmptyStreamError):
            maintainer.min_k(members=[1])
