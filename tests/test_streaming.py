"""Tests for repro.streaming (reservoir + maintainer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import families
from repro.distributions.distances import l1_distance
from repro.errors import InvalidParameterError
from repro.streaming.maintainer import StreamingHistogramMaintainer
from repro.streaming.reservoir import ReservoirSampler


class TestReservoir:
    def test_fills_to_capacity(self):
        res = ReservoirSampler(4, rng=1)
        res.update_many(np.arange(3))
        assert res.size == 3 and res.seen == 3
        res.update_many(np.arange(10))
        assert res.size == 4 and res.seen == 13

    def test_small_stream_kept_exactly(self):
        res = ReservoirSampler(10, rng=1)
        res.update_many(np.array([5, 7, 9]))
        assert sorted(res.contents()) == [5, 7, 9]

    def test_uniformity_of_retention(self):
        """Algorithm R invariant: every item retained w.p. capacity/seen."""
        capacity, stream_len, trials = 8, 64, 600
        counts = np.zeros(stream_len)
        for t in range(trials):
            res = ReservoirSampler(capacity, rng=t)
            res.update_many(np.arange(stream_len))
            counts[res.contents()] += 1
        expected = capacity / stream_len
        rates = counts / trials
        assert np.abs(rates - expected).max() < 0.08

    def test_sample_with_replacement(self):
        res = ReservoirSampler(4, rng=1)
        res.update_many(np.array([3, 3, 3, 3]))
        assert np.all(res.sample(10, rng=2) == 3)

    def test_empty_sample_raises(self):
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(4).sample(1)

    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(0)


class TestMaintainer:
    def test_summarises_stationary_stream(self, rng):
        dist = families.random_tiling_histogram(128, 4, 3, min_piece=8)
        maintainer = StreamingHistogramMaintainer(
            128, 4, refresh_every=2_000, reservoir_capacity=2_000, rng=5
        )
        maintainer.update_many(dist.sample(10_000, rng))
        summary = maintainer.histogram
        assert l1_distance(dist, summary) < 0.25

    def test_adapts_to_drift(self, rng):
        """After a distribution shift, rebuilds track the new regime."""
        before = families.two_level(128, heavy_start=0, heavy_length=16)
        after = families.two_level(128, heavy_start=96, heavy_length=16)
        maintainer = StreamingHistogramMaintainer(
            128, 4, refresh_every=1_000, reservoir_capacity=1_000, rng=6
        )
        maintainer.update_many(before.sample(3_000, rng))
        _ = maintainer.histogram
        # Flood with the new regime: the reservoir turns over.
        maintainer.update_many(after.sample(30_000, rng))
        summary = maintainer.histogram
        assert summary.range_mass(__import__("repro").Interval(96, 112)) > 0.5

    def test_windowed_mode_adapts_faster(self, rng):
        """forget_after_rebuild bounds staleness by one refresh window."""
        before = families.two_level(128, heavy_start=0, heavy_length=16)
        after = families.two_level(128, heavy_start=96, heavy_length=16)
        windowed = StreamingHistogramMaintainer(
            128, 4, refresh_every=1_000, reservoir_capacity=1_000,
            forget_after_rebuild=True, rng=6,
        )
        windowed.update_many(before.sample(3_000, rng))
        _ = windowed.histogram
        windowed.update_many(after.sample(2_000, rng))
        summary = windowed.histogram
        assert summary.range_mass(__import__("repro").Interval(96, 112)) > 0.5

    def test_lazy_rebuild_counting(self, rng):
        dist = families.uniform(64)
        maintainer = StreamingHistogramMaintainer(
            64, 2, refresh_every=500, reservoir_capacity=500, rng=7
        )
        maintainer.update_many(dist.sample(500, rng))
        assert maintainer.rebuilds == 0  # lazy: nothing rebuilt yet
        _ = maintainer.histogram
        assert maintainer.rebuilds == 1
        _ = maintainer.histogram
        assert maintainer.rebuilds == 1  # cached between refreshes
        maintainer.update_many(dist.sample(500, rng))
        _ = maintainer.histogram
        assert maintainer.rebuilds == 2

    def test_empty_stream_raises(self):
        maintainer = StreamingHistogramMaintainer(64, 2, rng=8)
        with pytest.raises(InvalidParameterError):
            _ = maintainer.histogram

    def test_out_of_domain_update_raises(self):
        maintainer = StreamingHistogramMaintainer(64, 2, rng=9)
        with pytest.raises(InvalidParameterError):
            maintainer.update(64)
        with pytest.raises(InvalidParameterError):
            maintainer.update_many(np.array([-1]))

    def test_items_seen(self, rng):
        maintainer = StreamingHistogramMaintainer(64, 2, rng=10)
        maintainer.update(5)
        maintainer.update_many(np.array([1, 2, 3]))
        assert maintainer.items_seen == 4

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            StreamingHistogramMaintainer(0, 2)
        with pytest.raises(InvalidParameterError):
            StreamingHistogramMaintainer(64, 2, refresh_every=0)
