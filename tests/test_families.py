"""Tests for repro.distributions.families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import families
from repro.errors import InvalidParameterError


ALL_FAMILIES = [
    lambda rng: families.uniform(64),
    lambda rng: families.random_tiling_histogram(64, 5, rng),
    lambda rng: families.two_level(64),
    lambda rng: families.zipf(64, 1.2),
    lambda rng: families.geometric(64, 0.95),
    lambda rng: families.linear_ramp(64),
    lambda rng: families.sawtooth(64),
    lambda rng: families.gaussian_mixture(64),
    lambda rng: families.dirichlet_random(64, 1.0, rng),
]


@pytest.mark.parametrize("factory", ALL_FAMILIES)
def test_every_family_is_a_distribution(factory, rng):
    dist = factory(rng)
    assert dist.n == 64
    assert dist.pmf.sum() == pytest.approx(1.0)
    assert np.all(dist.pmf >= 0)


class TestUniform:
    def test_values(self):
        assert np.allclose(families.uniform(10).pmf, 0.1)

    def test_invalid_n(self):
        with pytest.raises(InvalidParameterError):
            families.uniform(0)


class TestRandomTilingHistogram:
    def test_is_k_histogram(self, rng):
        dist = families.random_tiling_histogram(100, 6, rng)
        assert dist.min_histogram_pieces() <= 6

    def test_min_piece_respected(self, rng):
        dist = families.random_tiling_histogram(100, 4, rng, min_piece=10)
        runs = np.flatnonzero(np.diff(dist.pmf))
        boundaries = np.concatenate(([0], runs + 1, [100]))
        assert np.diff(boundaries).min() >= 10

    def test_k_too_large_raises(self, rng):
        with pytest.raises(InvalidParameterError):
            families.random_tiling_histogram(10, 11, rng)

    def test_deterministic_given_seed(self):
        a = families.random_tiling_histogram(50, 4, 123)
        b = families.random_tiling_histogram(50, 4, 123)
        assert np.array_equal(a.pmf, b.pmf)

    def test_k_equals_one_is_uniform(self, rng):
        dist = families.random_tiling_histogram(20, 1, rng)
        assert np.allclose(dist.pmf, 0.05)


class TestTwoLevel:
    def test_heavy_band_mass(self):
        dist = families.two_level(100, heavy_start=10, heavy_length=20, heavy_mass=0.9)
        assert dist.pmf[10:30].sum() == pytest.approx(0.9)

    def test_is_three_piece_histogram(self):
        dist = families.two_level(100, heavy_start=10, heavy_length=20)
        assert dist.min_histogram_pieces() <= 3

    def test_band_must_fit(self):
        with pytest.raises(InvalidParameterError):
            families.two_level(10, heavy_start=5, heavy_length=10)

    def test_invalid_mass(self):
        with pytest.raises(InvalidParameterError):
            families.two_level(10, heavy_mass=1.5)


class TestShapes:
    def test_zipf_decreasing(self):
        pmf = families.zipf(32, 1.0).pmf
        assert np.all(np.diff(pmf) <= 0)

    def test_zipf_zero_exponent_is_uniform(self):
        assert np.allclose(families.zipf(16, 0.0).pmf, 1 / 16)

    def test_zipf_negative_exponent_raises(self):
        with pytest.raises(InvalidParameterError):
            families.zipf(16, -1.0)

    def test_geometric_ratio_one_is_uniform(self):
        assert np.allclose(families.geometric(16, 1.0).pmf, 1 / 16)

    def test_geometric_bad_ratio_raises(self):
        with pytest.raises(InvalidParameterError):
            families.geometric(16, 0.0)

    def test_ramp_increasing(self):
        pmf = families.linear_ramp(32).pmf
        assert np.all(np.diff(pmf) > 0)

    def test_sawtooth_alternates(self):
        pmf = families.sawtooth(16).pmf
        assert np.all(pmf[::2] > pmf[1::2])

    def test_sawtooth_teeth_count_validation(self):
        with pytest.raises(InvalidParameterError):
            families.sawtooth(8, num_teeth=5)

    def test_sawtooth_is_far_from_uniform(self):
        """The fine zigzag keeps l1 distance from uniform ~ constant."""
        pmf = families.sawtooth(128, low=0.25, high=1.75).pmf
        assert np.abs(pmf - 1 / 128).sum() > 0.5

    def test_gaussian_mixture_peaks_near_centers(self):
        dist = families.gaussian_mixture(100, centers=[25.0], widths=[5.0])
        assert abs(int(np.argmax(dist.pmf)) - 25) <= 1

    def test_gaussian_mixture_validation(self):
        with pytest.raises(InvalidParameterError):
            families.gaussian_mixture(100, centers=[10.0], widths=[1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            families.gaussian_mixture(100, centers=[10.0], widths=[-1.0])

    def test_dirichlet_alpha_validation(self):
        with pytest.raises(InvalidParameterError):
            families.dirichlet_random(10, alpha=0.0)
