"""Tests for repro.core.lower_bound (Theorem 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lower_bound import (
    collision_distinguisher,
    heavy_intervals,
    no_instance,
    yes_instance,
)
from repro.distributions.property_distance import distance_to_k_histogram
from repro.errors import InvalidParameterError


class TestYesInstance:
    def test_is_distribution(self):
        dist = yes_instance(100, 4)
        assert dist.pmf.sum() == pytest.approx(1.0)

    def test_is_k_histogram(self):
        dist = yes_instance(100, 4)
        assert dist.min_histogram_pieces() <= 4

    def test_alternating_masses(self):
        from repro.histograms.intervals import Interval

        dist = yes_instance(100, 4)
        assert dist.weight(Interval(0, 25)) == pytest.approx(0.5)
        assert dist.weight(Interval(25, 50)) == pytest.approx(0.0)
        assert dist.weight(Interval(50, 75)) == pytest.approx(0.5)

    def test_uniform_within_heavy(self):
        dist = yes_instance(100, 4)
        for interval in heavy_intervals(100, 4):
            assert dist.is_flat(interval)

    def test_odd_k(self):
        dist = yes_instance(99, 5)
        assert dist.pmf.sum() == pytest.approx(1.0)
        assert len(heavy_intervals(99, 5)) == 3

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            yes_instance(10, 11)


class TestNoInstance:
    def test_is_distribution(self):
        dist = no_instance(100, 4, rng=3)
        assert dist.pmf.sum() == pytest.approx(1.0)

    def test_exactly_one_interval_scrambled(self):
        yes = yes_instance(100, 4)
        no = no_instance(100, 4, rng=3)
        changed = [
            iv
            for iv in heavy_intervals(100, 4)
            if not np.allclose(yes.pmf[iv.start : iv.stop], no.pmf[iv.start : iv.stop])
        ]
        assert len(changed) == 1

    def test_scrambled_interval_half_support(self):
        no = no_instance(100, 4, rng=3)
        yes = yes_instance(100, 4)
        for iv in heavy_intervals(100, 4):
            seg = no.pmf[iv.start : iv.stop]
            if not np.allclose(seg, yes.pmf[iv.start : iv.stop]):
                zeros = np.count_nonzero(seg == 0)
                assert zeros == iv.length // 2
                # survivors carry (roughly) double probability
                level = yes.pmf[iv.start]
                assert np.allclose(seg[seg > 0], 2 * level, rtol=0.1)

    def test_mass_preserved_per_interval(self):
        yes = yes_instance(100, 4)
        no = no_instance(100, 4, rng=5)
        for iv in heavy_intervals(100, 4):
            assert no.weight(iv) == pytest.approx(yes.weight(iv))

    def test_no_instance_is_far_in_l1(self):
        """The scrambled instance is Omega(1/k)-far from k-histograms."""
        k = 4
        no = no_instance(128, k, rng=7)
        lower = distance_to_k_histogram(no, k, norm="l1")
        assert lower > 0.1  # ~ 1/(2k) = 0.125 for the scrambled quarter

    def test_too_small_interval_raises(self):
        with pytest.raises(InvalidParameterError):
            no_instance(4, 4, rng=3)

    def test_deterministic_given_seed(self):
        assert np.array_equal(
            no_instance(64, 4, rng=9).pmf, no_instance(64, 4, rng=9).pmf
        )


class TestHeavyIntervals:
    def test_even_k(self):
        intervals = heavy_intervals(100, 4)
        assert [(iv.start, iv.stop) for iv in intervals] == [(0, 25), (50, 75)]

    def test_cover_half_the_domain(self):
        intervals = heavy_intervals(128, 8)
        assert sum(iv.length for iv in intervals) == 64


class TestCollisionDistinguisher:
    def test_separates_at_large_sample_size(self, rng):
        n, k = 1024, 8
        m = int(6 * np.sqrt(k * n))
        yes, no = yes_instance(n, k), no_instance(n, k, rng=1)
        yes_flags = [
            collision_distinguisher(yes.sample(m, rng), n, k).says_no
            for _ in range(10)
        ]
        no_flags = [
            collision_distinguisher(no.sample(m, rng), n, k).says_no
            for _ in range(10)
        ]
        assert sum(yes_flags) <= 3
        assert sum(no_flags) >= 7

    def test_fails_at_tiny_sample_size(self, rng):
        """Below ~sqrt(kn) samples the verdicts carry little signal:
        heavy intervals see too few hits for any collision pair."""
        n, k = 4096, 8
        m = int(0.05 * np.sqrt(k * n))
        no = no_instance(n, k, rng=2)
        flags = [
            collision_distinguisher(no.sample(m, rng), n, k).says_no
            for _ in range(20)
        ]
        assert sum(flags) <= 10  # no better than chance

    def test_statistic_near_one_on_yes(self, rng):
        n, k = 1024, 4
        m = 20_000
        verdict = collision_distinguisher(yes_instance(n, k).sample(m, rng), n, k)
        assert verdict.statistic == pytest.approx(1.0, abs=0.2)

    def test_statistic_near_two_on_no(self, rng):
        n, k = 1024, 4
        m = 20_000
        verdict = collision_distinguisher(
            no_instance(n, k, rng=3).sample(m, rng), n, k
        )
        assert verdict.statistic == pytest.approx(2.0, abs=0.3)

    def test_invalid_threshold(self, rng):
        with pytest.raises(InvalidParameterError):
            collision_distinguisher(np.array([1, 2, 3]), 16, 2, threshold_factor=1.0)
