"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_returns_generator_unchanged(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_seed_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).random(5)
        b = as_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(7, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(7, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)

    def test_children_independent(self):
        children = spawn_rngs(7, 2)
        a = children[0].random(100)
        b = children[1].random(100)
        assert not np.array_equal(a, b)

    def test_children_deterministic_given_seed(self):
        a = spawn_rngs(7, 3)[2].random(4)
        b = spawn_rngs(7, 3)[2].random(4)
        assert np.array_equal(a, b)

    def test_spawning_twice_from_same_parent_differs(self):
        parent = np.random.default_rng(7)
        first = spawn_rngs(parent, 1)[0].random(4)
        second = spawn_rngs(parent, 1)[0].random(4)
        assert not np.array_equal(first, second)
