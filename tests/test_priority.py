"""Tests for repro.histograms.priority."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidHistogramError
from repro.histograms.intervals import Interval
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram


@st.composite
def priority_histograms(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    hist = PriorityHistogram(n)
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        start = draw(st.integers(min_value=0, max_value=n - 1))
        stop = draw(st.integers(min_value=start + 1, max_value=n))
        value = draw(st.floats(min_value=0, max_value=1, allow_nan=False))
        hist.add(Interval(start, stop), value)
    return hist


class TestConstruction:
    def test_empty(self):
        hist = PriorityHistogram(10)
        assert hist.num_pieces == 0
        assert hist.value_at(5) == 0.0

    def test_add_assigns_increasing_priorities(self):
        hist = PriorityHistogram(10)
        first = hist.add(Interval(0, 5), 0.1)
        second = hist.add(Interval(2, 8), 0.2)
        assert second.priority == first.priority + 1

    def test_add_many_shares_priority(self):
        hist = PriorityHistogram(10)
        hist.add(Interval(0, 10), 0.1)
        hist.add_many([(Interval(0, 3), 0.2), (Interval(7, 10), 0.3)])
        priorities = [p.priority for p in hist.pieces()]
        assert priorities == [1, 2, 2]

    def test_out_of_domain_raises(self):
        with pytest.raises(InvalidHistogramError):
            PriorityHistogram(5).add(Interval(0, 6), 0.1)

    def test_negative_value_raises(self):
        with pytest.raises(InvalidHistogramError):
            PriorityHistogram(5).add(Interval(0, 5), -0.1)


class TestEvaluation:
    def test_highest_priority_wins(self):
        hist = PriorityHistogram(10)
        hist.add(Interval(0, 10), 0.1)
        hist.add(Interval(3, 6), 0.5)
        assert hist.value_at(0) == 0.1
        assert hist.value_at(4) == 0.5
        assert hist.value_at(9) == 0.1

    def test_uncovered_is_zero(self):
        hist = PriorityHistogram(10)
        hist.add(Interval(3, 6), 0.5)
        assert hist.value_at(0) == 0.0
        assert hist.value_at(9) == 0.0

    def test_tie_broken_by_insertion_order(self):
        """The paper's rule: the largest index wins among equal coverage."""
        hist = PriorityHistogram(10)
        hist.add(Interval(0, 10), 0.1, priority=1)
        hist.add(Interval(0, 10), 0.9, priority=1)
        assert hist.value_at(5) == 0.9

    def test_array_evaluation(self):
        hist = PriorityHistogram(6)
        hist.add(Interval(2, 4), 0.5)
        assert np.allclose(hist.value_at(np.arange(6)), [0, 0, 0.5, 0.5, 0, 0])

    def test_out_of_domain_eval_raises(self):
        with pytest.raises(InvalidHistogramError):
            PriorityHistogram(5).value_at(5)


class TestFlattening:
    def test_simple_flatten(self):
        hist = PriorityHistogram(10)
        hist.add(Interval(0, 10), 0.05)
        hist.add(Interval(4, 6), 0.3)
        tiling = hist.to_tiling()
        assert isinstance(tiling, TilingHistogram)
        assert np.allclose(tiling.to_pmf(), hist.value_at(np.arange(10)))

    def test_flatten_with_gaps(self):
        hist = PriorityHistogram(10)
        hist.add(Interval(2, 5), 0.2)
        tiling = hist.to_tiling()
        pmf = tiling.to_pmf()
        assert pmf[0] == 0.0 and pmf[2] == 0.2 and pmf[9] == 0.0

    def test_from_tiling_roundtrip(self):
        tiling = TilingHistogram(8, [0, 3, 8], [0.2, 0.08])
        hist = PriorityHistogram.from_tiling(tiling)
        assert np.allclose(hist.to_pmf(), tiling.to_pmf())

    @given(priority_histograms())
    def test_flatten_agrees_with_pointwise_evaluation(self, hist):
        """to_tiling() must agree with the priority-resolution semantics."""
        points = np.arange(hist.n)
        assert np.allclose(hist.to_tiling().to_pmf(), hist.value_at(points))

    @given(priority_histograms())
    def test_flatten_piece_bound(self, hist):
        """Section 1.1: priority k-histogram -> tiling with <= 2k+1 pieces."""
        tiling = hist.to_tiling()
        assert tiling.num_pieces <= 2 * max(hist.num_pieces, 1) + 1

    @given(priority_histograms())
    def test_priority_histogram_mass_matches_tiling(self, hist):
        assert hist.to_tiling().total_mass() == pytest.approx(
            float(hist.to_pmf().sum())
        )
