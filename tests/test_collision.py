"""Tests for repro.samples.collision."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.samples.collision import (
    CollisionSketch,
    batched_interval_prefixes,
    batched_pair_prefixes,
    collision_count,
    dense_interval_prefixes,
)
from repro.utils.prefix import pairs_count


def naive_collisions(samples, a, b):
    """O(m^2) reference: pairs of equal samples falling in [a, b)."""
    inside = [s for s in samples if a <= s < b]
    return sum(
        1
        for i in range(len(inside))
        for j in range(i + 1, len(inside))
        if inside[i] == inside[j]
    )


class TestCollisionCount:
    def test_no_duplicates(self):
        assert collision_count(np.array([1, 2, 3])) == 0

    def test_all_equal(self):
        assert collision_count(np.array([7, 7, 7, 7])) == 6

    def test_mixed(self):
        assert collision_count(np.array([1, 1, 2, 2, 2])) == 1 + 3

    def test_empty(self):
        assert collision_count(np.array([], dtype=np.int64)) == 0

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=50))
    def test_matches_naive(self, values):
        samples = np.array(values, dtype=np.int64)
        assert collision_count(samples) == naive_collisions(values, 0, 10)


class TestCollisionSketch:
    def test_total(self):
        sketch = CollisionSketch(np.array([1, 1, 2, 2, 2]), 5)
        assert sketch.total_collisions == 4
        assert sketch.size == 5

    def test_interval_queries(self):
        samples = np.array([0, 0, 1, 3, 3, 3])
        sketch = CollisionSketch(samples, 5)
        assert sketch.collisions(0, 2) == 1
        assert sketch.collisions(3, 5) == 3
        assert sketch.collisions(1, 3) == 0
        assert sketch.count(0, 2) == 3

    def test_vectorised_queries(self):
        samples = np.array([0, 0, 1, 3, 3, 3])
        sketch = CollisionSketch(samples, 5)
        coll = sketch.collisions(np.array([0, 3]), np.array([2, 5]))
        assert np.array_equal(coll, [1, 3])

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidParameterError):
            CollisionSketch(np.array([9]), 5)

    @given(
        st.lists(st.integers(min_value=0, max_value=11), max_size=60),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=12),
    )
    def test_matches_naive(self, values, a, b):
        a, b = min(a, b), max(a, b)
        sketch = CollisionSketch(np.array(values, dtype=np.int64), 12)
        assert sketch.collisions(a, b) == naive_collisions(values, a, b)
        assert sketch.count(a, b) == sum(1 for v in values if a <= v < b)

    def test_grid_prefixes(self):
        samples = np.array([0, 0, 1, 3, 3, 3, 7])
        sketch = CollisionSketch(samples, 8)
        grid = np.array([0, 2, 4, 8])
        counts, pairs = sketch.prefixes_on_grid(grid)
        assert pairs[1] - pairs[0] == sketch.collisions(0, 2)
        assert pairs[2] - pairs[1] == sketch.collisions(2, 4)
        assert pairs[3] - pairs[2] == sketch.collisions(4, 8)
        assert counts[3] - counts[0] == 7

    def test_pairs_never_negative(self, rng):
        samples = rng.integers(0, 100, size=1000)
        sketch = CollisionSketch(samples, 100)
        starts = rng.integers(0, 50, size=20)
        stops = starts + rng.integers(1, 50, size=20)
        assert np.all(np.asarray(sketch.collisions(starts, stops)) >= 0)


class TestBatchedPrefixes:
    """The one-pass compile must equal r sequential sketch compiles."""

    def test_matches_per_set_sketches(self, rng):
        n = 50
        sets = [rng.integers(0, n, size=size) for size in (0, 1, 40, 200)]
        grid = np.unique(
            np.concatenate([[0, n], rng.integers(0, n + 1, size=12)])
        )
        batched = batched_pair_prefixes(sets, n, grid)
        stacked = np.stack(
            [CollisionSketch(s, n).prefixes_on_grid(grid)[1] for s in sets]
        )
        assert batched.dtype == np.int64
        assert batched.flags.c_contiguous
        assert np.array_equal(batched, stacked)

    def test_no_sets(self):
        assert batched_pair_prefixes([], 10, np.array([0, 10])).shape == (0, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            batched_pair_prefixes([np.array([5])], 5, np.array([0, 5]))

    def test_grid_beyond_domain_rejected(self):
        """A grid point past n would read the next set's stripe."""
        with pytest.raises(InvalidParameterError):
            batched_pair_prefixes(
                [np.array([1, 1, 2]), np.array([3, 3, 3])], 10, np.array([0, 5, 15])
            )

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=7), max_size=30),
            min_size=1,
            max_size=4,
        )
    )
    def test_matches_per_set_property(self, raw_sets):
        n = 8
        sets = [np.array(s, dtype=np.int64) for s in raw_sets]
        grid = np.arange(n + 1)
        batched = batched_pair_prefixes(sets, n, grid)
        stacked = np.stack(
            [CollisionSketch(s, n).prefixes_on_grid(grid)[1] for s in sets]
        )
        assert np.array_equal(batched, stacked)


@st.composite
def adversarial_set_batches(draw):
    """(n, sets) with the shapes that break naive prefix builders.

    Single-point domains, empty sets, all-mass-on-one-bucket sets, and
    arbitrary multisets mix freely — the interchange contract between
    the counting and sort builders must hold on all of them.
    """
    n = draw(st.integers(min_value=1, max_value=12))
    def one_set(kind_and_seed):
        kind, value, size, arbitrary = kind_and_seed
        if kind == "empty":
            return []
        if kind == "one-bucket":
            return [value % n] * size
        return [v % n for v in arbitrary]
    kinds = st.tuples(
        st.sampled_from(["empty", "one-bucket", "arbitrary"]),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=1, max_value=25),
        st.lists(st.integers(min_value=0, max_value=11), max_size=30),
    ).map(one_set)
    sets = draw(st.lists(kinds, min_size=1, max_size=4))
    return n, [np.array(s, dtype=np.int64) for s in sets]


class TestDenseVsSortProperty:
    """dense_interval_prefixes must equal the sort path bit for bit.

    The fleet lockstep suite only exercises the interchange indirectly
    (through whole tester runs); this pins it at the builder level, on
    adversarial shapes, for both the count and pair rows.
    """

    @given(adversarial_set_batches())
    def test_dense_equals_sort_path(self, batch):
        n, sets = batch
        grid = np.arange(n + 1, dtype=np.int64)
        dense_counts, dense_pairs = dense_interval_prefixes(sets, n)
        sort_counts, sort_pairs = batched_interval_prefixes(sets, n, grid)
        assert dense_counts.dtype == sort_counts.dtype == np.int64
        assert np.array_equal(dense_counts, sort_counts)
        assert np.array_equal(dense_pairs, sort_pairs)

    def test_single_point_domain(self):
        counts, pairs = dense_interval_prefixes(
            [np.zeros(9, dtype=np.int64), np.zeros(0, dtype=np.int64)], 1
        )
        ref = batched_interval_prefixes(
            [np.zeros(9, dtype=np.int64), np.zeros(0, dtype=np.int64)],
            1,
            np.array([0, 1]),
        )
        assert np.array_equal(counts, ref[0])
        assert np.array_equal(pairs, ref[1])
        assert pairs[0, 1] == pairs_count(9)

    def test_all_mass_on_one_bucket(self):
        sets = [np.full(50, 3, dtype=np.int64)]
        counts, pairs = dense_interval_prefixes(sets, 8)
        ref = batched_interval_prefixes(sets, 8, np.arange(9))
        assert np.array_equal(counts, ref[0])
        assert np.array_equal(pairs, ref[1])


class TestScaling:
    def test_large_counts_exact(self):
        """int64 exactness for ~10^6 identical samples."""
        samples = np.zeros(1_000_000, dtype=np.int64)
        sketch = CollisionSketch(samples, 4)
        assert sketch.total_collisions == pairs_count(1_000_000)
