"""Tests for repro.samples.sample_set."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.samples.sample_set import SampleSet


class TestConstruction:
    def test_basic(self):
        s = SampleSet(np.array([3, 1, 2, 1]), 5)
        assert s.size == 4 and s.n == 5
        assert np.array_equal(s.sorted_values, [1, 1, 2, 3])

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidParameterError):
            SampleSet(np.array([5]), 5)
        with pytest.raises(InvalidParameterError):
            SampleSet(np.array([-1]), 5)

    def test_2d_raises(self):
        with pytest.raises(InvalidParameterError):
            SampleSet(np.ones((2, 2), dtype=np.int64), 5)

    def test_empty_ok(self):
        assert SampleSet(np.array([], dtype=np.int64), 5).size == 0

    def test_unique_values(self):
        s = SampleSet(np.array([3, 1, 1, 3]), 5)
        assert np.array_equal(s.unique_values(), [1, 3])


class TestCounting:
    def test_scalar_count(self):
        s = SampleSet(np.array([0, 1, 1, 2, 4]), 5)
        assert s.count(1, 3) == 3
        assert s.count(0, 5) == 5
        assert s.count(3, 4) == 0

    def test_vector_count(self):
        s = SampleSet(np.array([0, 1, 1, 2, 4]), 5)
        counts = s.count(np.array([0, 1]), np.array([2, 5]))
        assert np.array_equal(counts, [3, 4])

    def test_fraction(self):
        s = SampleSet(np.array([0, 1, 1, 2]), 5)
        assert s.fraction(1, 2) == pytest.approx(0.5)

    def test_fraction_empty_set_raises(self):
        with pytest.raises(InvalidParameterError):
            SampleSet(np.array([], dtype=np.int64), 5).fraction(0, 5)

    @given(
        st.lists(st.integers(min_value=0, max_value=19), max_size=60),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    def test_count_matches_naive(self, values, a, b):
        a, b = min(a, b), max(a, b)
        s = SampleSet(np.array(values, dtype=np.int64), 20)
        naive = sum(1 for v in values if a <= v < b)
        assert s.count(a, b) == naive


class TestGridPrefix:
    def test_prefix_consistency(self):
        s = SampleSet(np.array([0, 1, 1, 2, 4, 4]), 6)
        grid = np.array([0, 2, 4, 6])
        prefix = s.count_prefix_on_grid(grid)
        # count over [grid[i], grid[j]) equals prefix difference
        assert prefix[1] - prefix[0] == s.count(0, 2)
        assert prefix[2] - prefix[1] == s.count(2, 4)
        assert prefix[3] - prefix[2] == s.count(4, 6)

    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=40))
    def test_prefix_matches_count_everywhere(self, values):
        s = SampleSet(np.array(values, dtype=np.int64), 16)
        grid = np.arange(17)
        prefix = s.count_prefix_on_grid(grid)
        for a in range(0, 17, 3):
            for b in range(a, 17, 3):
                assert prefix[b] - prefix[a] == s.count(a, b)
