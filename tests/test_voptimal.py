"""Tests for repro.baselines.voptimal (the exact DP)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.voptimal import (
    l1_piece_cost_matrix,
    voptimal_cost,
    voptimal_from_samples,
    voptimal_histogram,
)
from repro.errors import InvalidParameterError


def brute_force_cost(pmf: np.ndarray, k: int, norm: str) -> float:
    """Enumerate all partitions into exactly <= k non-empty pieces."""
    n = pmf.shape[0]
    best = np.inf
    for pieces in range(1, k + 1):
        for cuts in itertools.combinations(range(1, n), pieces - 1):
            bounds = [0, *cuts, n]
            cost = 0.0
            for a, b in zip(bounds[:-1], bounds[1:]):
                seg = pmf[a:b]
                if norm == "l2":
                    cost += ((seg - seg.mean()) ** 2).sum()
                else:
                    cost += np.abs(seg - np.median(seg)).sum()
            best = min(best, cost)
    return best


class TestL2DP:
    def test_histogram_input_has_zero_cost(self):
        pmf = np.repeat([0.05, 0.15], [10, 5])
        pmf = pmf / pmf.sum()
        assert voptimal_cost(pmf, 2, norm="l2") == pytest.approx(0.0, abs=1e-15)

    def test_k_equals_n_is_exact(self):
        pmf = np.array([0.1, 0.2, 0.3, 0.4])
        assert voptimal_cost(pmf, 4, norm="l2") == pytest.approx(0.0, abs=1e-15)

    def test_k1_is_variance_around_mean(self):
        pmf = np.array([0.1, 0.2, 0.3, 0.4])
        expected = ((pmf - pmf.mean()) ** 2).sum()
        assert voptimal_cost(pmf, 1, norm="l2") == pytest.approx(expected)

    def test_monotone_in_k(self):
        rng = np.random.default_rng(3)
        pmf = rng.dirichlet(np.ones(20))
        costs = [voptimal_cost(pmf, k, norm="l2") for k in range(1, 8)]
        assert all(a >= b - 1e-15 for a, b in zip(costs, costs[1:]))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=1, allow_nan=False), min_size=3, max_size=9),
        st.integers(min_value=1, max_value=4),
    )
    def test_matches_brute_force_l2(self, weights, k):
        pmf = np.array(weights)
        pmf = pmf / pmf.sum()
        k = min(k, pmf.shape[0])
        assert voptimal_cost(pmf, k, norm="l2") == pytest.approx(
            brute_force_cost(pmf, k, "l2"), abs=1e-10
        )

    def test_histogram_output_matches_cost(self):
        rng = np.random.default_rng(5)
        pmf = rng.dirichlet(np.ones(24))
        hist = voptimal_histogram(pmf, 4, norm="l2")
        realised = ((pmf - hist.to_pmf()) ** 2).sum()
        assert realised == pytest.approx(voptimal_cost(pmf, 4, norm="l2"), abs=1e-12)

    def test_l2_optimum_is_distribution(self):
        """Mean-fitted optimal histogram always sums to 1."""
        rng = np.random.default_rng(6)
        pmf = rng.dirichlet(np.ones(30))
        assert voptimal_histogram(pmf, 5).total_mass() == pytest.approx(1.0)

    def test_recovers_true_boundaries(self):
        pmf = np.repeat([0.01, 0.06], [20, 5])
        pmf = pmf / pmf.sum()
        hist = voptimal_histogram(pmf, 2, norm="l2")
        assert list(hist.boundaries) == [0, 20, 25]


class TestL1DP:
    def test_cost_matrix_matches_naive(self):
        rng = np.random.default_rng(7)
        pmf = rng.random(12)
        matrix = l1_piece_cost_matrix(pmf)
        for s in range(12):
            for t in range(s + 1, 13):
                seg = pmf[s:t]
                expected = np.abs(seg - np.median(seg)).sum()
                assert matrix[s, t] == pytest.approx(expected, abs=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=1, allow_nan=False), min_size=3, max_size=8),
        st.integers(min_value=1, max_value=3),
    )
    def test_matches_brute_force_l1(self, weights, k):
        pmf = np.array(weights)
        pmf = pmf / pmf.sum()
        k = min(k, pmf.shape[0])
        assert voptimal_cost(pmf, k, norm="l1") == pytest.approx(
            brute_force_cost(pmf, k, "l1"), abs=1e-10
        )

    def test_histogram_input_has_zero_cost(self):
        pmf = np.repeat([0.02, 0.12], [15, 5])
        pmf = pmf / pmf.sum()
        assert voptimal_cost(pmf, 2, norm="l1") == pytest.approx(0.0, abs=1e-14)


class TestValidationAndSamples:
    def test_k_too_large_raises(self):
        with pytest.raises(InvalidParameterError):
            voptimal_cost(np.ones(4) / 4, 5)

    def test_k_zero_raises(self):
        with pytest.raises(InvalidParameterError):
            voptimal_cost(np.ones(4) / 4, 0)

    def test_bad_norm_raises(self):
        with pytest.raises(InvalidParameterError):
            voptimal_cost(np.ones(4) / 4, 2, norm="linf")

    def test_empty_pmf_raises(self):
        with pytest.raises(InvalidParameterError):
            voptimal_cost(np.array([]), 1)

    def test_from_samples_recovers_structure(self, rng):
        pmf = np.repeat([0.002, 0.018], [50, 50])
        pmf = pmf / pmf.sum()
        samples = rng.choice(100, size=20_000, p=pmf)
        hist = voptimal_from_samples(samples, 100, 2)
        assert abs(int(hist.boundaries[1]) - 50) <= 2

    def test_from_samples_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            voptimal_from_samples(np.array([], dtype=np.int64), 10, 2)
