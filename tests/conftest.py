"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; statistical tests rely on this seed."""
    return np.random.default_rng(20120521)  # PODS'12 opening day


@pytest.fixture
def small_pmf() -> np.ndarray:
    """A hand-checkable 8-element distribution."""
    return np.array([0.05, 0.05, 0.2, 0.2, 0.2, 0.1, 0.1, 0.1])


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: long-running statistical tests (always run; marker is informational)"
    )
