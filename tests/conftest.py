"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; statistical tests rely on this seed."""
    return np.random.default_rng(20120521)  # PODS'12 opening day


@pytest.fixture
def small_pmf() -> np.ndarray:
    """A hand-checkable 8-element distribution."""
    return np.array([0.05, 0.05, 0.2, 0.2, 0.2, 0.1, 0.1, 0.1])


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: long-running statistical tests (always run; marker is informational)"
    )
    config.addinivalue_line(
        "markers",
        "shm_guard: assert the test leaves no orphaned /dev/shm segments "
        "(opt-in: executor/chaos tests that allocate shared memory)",
    )


def _shm_segments() -> "set[str]":
    """The stdlib-created shared-memory names currently in /dev/shm."""
    try:
        names = os.listdir("/dev/shm")
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()
    return {name for name in names if name.startswith("psm_")}


@pytest.fixture(autouse=True)
def shm_guard(request: pytest.FixtureRequest):
    """Fail any ``shm_guard``-marked test that orphans a shm segment.

    Autouse but opt-in by marker: the leak check compares ``/dev/shm``
    before and after the test body, so it must only run for tests that
    own every segment they see (parallel-executor and chaos tests); a
    blanket check would race other workers' legitimate segments.
    """
    if request.node.get_closest_marker("shm_guard") is None:
        yield
        return
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, (
        f"test orphaned {len(leaked)} shared-memory segment(s): "
        f"{sorted(leaked)} — every ParallelExecutor must be closed "
        "(or collected) before the test returns"
    )
