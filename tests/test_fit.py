"""Tests for repro.histograms.fit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.histograms.fit import best_fit_values, refit
from repro.histograms.tiling import TilingHistogram


class TestBestFitValues:
    def test_l2_is_piece_mean(self):
        pmf = np.array([0.1, 0.3, 0.2, 0.4])
        values = best_fit_values(pmf, [0, 2, 4], norm="l2")
        assert np.allclose(values, [0.2, 0.3])

    def test_l1_is_piece_median(self):
        pmf = np.array([0.0, 0.0, 1.0, 0.5, 0.5, 0.5])
        values = best_fit_values(pmf, [0, 3, 6], norm="l1")
        assert np.allclose(values, [0.0, 0.5])

    def test_bad_norm_raises(self):
        with pytest.raises(InvalidParameterError):
            best_fit_values(np.ones(4) / 4, [0, 4], norm="l3")

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False), min_size=4, max_size=12
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_l2_mean_is_optimal(self, values, cut_at):
        """No constant beats the mean on squared error."""
        pmf = np.array(values)
        boundaries = sorted({0, min(cut_at, len(values) - 1), len(values)})
        fit = best_fit_values(pmf, np.array(boundaries), norm="l2")
        for j in range(len(boundaries) - 1):
            seg = pmf[boundaries[j] : boundaries[j + 1]]
            base = ((seg - fit[j]) ** 2).sum()
            for delta in (-0.01, 0.01):
                assert base <= ((seg - (fit[j] + delta)) ** 2).sum() + 1e-12

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False), min_size=4, max_size=12
        )
    )
    def test_l1_median_is_optimal(self, values):
        pmf = np.array(values)
        boundaries = np.array([0, len(values)])
        fit = best_fit_values(pmf, boundaries, norm="l1")
        base = np.abs(pmf - fit[0]).sum()
        for delta in (-0.01, 0.01):
            assert base <= np.abs(pmf - (fit[0] + delta)).sum() + 1e-12


class TestRefit:
    def test_refit_improves_l2(self):
        pmf = np.array([0.1, 0.3, 0.25, 0.35])
        bad = TilingHistogram(4, [0, 2, 4], [0.0, 0.0])
        better = refit(bad, pmf, norm="l2")
        before = ((pmf - bad.to_pmf()) ** 2).sum()
        after = ((pmf - better.to_pmf()) ** 2).sum()
        assert after <= before

    def test_refit_keeps_partition(self):
        pmf = np.ones(6) / 6
        hist = TilingHistogram(6, [0, 2, 6], [0.5, 0.0])
        assert np.array_equal(refit(hist, pmf).boundaries, hist.boundaries)

    def test_l2_refit_of_distribution_is_distribution(self):
        """Mean-fitting any partition to a pmf yields total mass exactly 1."""
        pmf = np.array([0.4, 0.1, 0.1, 0.1, 0.3])
        hist = TilingHistogram(5, [0, 1, 3, 5], [0.0, 0.0, 0.0])
        assert refit(hist, pmf, norm="l2").total_mass() == pytest.approx(1.0)
