"""Tests for repro.core.flatness (Algorithms 3 and 4)."""

from __future__ import annotations

import pytest

# Alias the paper-named ``test*`` functions so pytest does not collect them.
from repro.core.flatness import REASON_COLLISION_OK, REASON_LIGHT, REASON_REJECTED
from repro.core.flatness import test_flatness_l1 as flatness_l1
from repro.core.flatness import test_flatness_l2 as flatness_l2
from repro.distributions import families
from repro.errors import InvalidParameterError
from repro.samples.estimators import MultiSketch


def make_multi(dist, num_sets, set_size, rng):
    return MultiSketch.from_sample_sets(
        dist.sample_sets(num_sets, set_size, rng), dist.n
    )


@pytest.fixture(scope="module")
def uniform_multi():
    import numpy as np

    return make_multi(families.uniform(256), 9, 20_000, np.random.default_rng(5))


@pytest.fixture(scope="module")
def steep_multi():
    """Nearly all mass on 4 elements: conditionally very non-uniform.

    (l2 flatness needs *concentrated* deviations: a broad 2-level split
    keeps ``||p_I||_2^2`` within the eps^2 slack and is rightly accepted.)
    """
    import numpy as np

    dist = families.two_level(256, heavy_start=128, heavy_length=4, heavy_mass=0.97)
    return make_multi(dist, 9, 20_000, np.random.default_rng(6))


class TestFlatnessL2:
    def test_flat_interval_accepted(self, uniform_multi):
        result = flatness_l2(uniform_multi, 0, 256, 0.25)
        assert result.accepted

    def test_non_flat_interval_rejected(self, steep_multi):
        result = flatness_l2(steep_multi, 0, 256, 0.25)
        assert not result.accepted
        assert result.reason == REASON_REJECTED
        assert result.statistic > result.threshold

    def test_flat_sub_interval_accepted(self, steep_multi):
        assert flatness_l2(steep_multi, 128, 132, 0.25).accepted

    def test_light_interval_accepted_regardless(self, steep_multi):
        """The light half is accepted via step 1 (hit fraction < eps^2/2)."""
        result = flatness_l2(steep_multi, 0, 64, 0.5)
        assert result.accepted
        assert result.reason == REASON_LIGHT
        assert result.statistic is None

    def test_reason_collision_bound(self, uniform_multi):
        result = flatness_l2(uniform_multi, 0, 256, 0.25)
        assert result.reason == REASON_COLLISION_OK
        assert result.statistic == pytest.approx(1 / 256, rel=0.2)

    def test_single_element_always_accepted(self, steep_multi):
        assert flatness_l2(steep_multi, 200, 201, 0.25).accepted

    def test_empty_interval_raises(self, uniform_multi):
        with pytest.raises(InvalidParameterError):
            flatness_l2(uniform_multi, 5, 5, 0.25)

    def test_bad_epsilon_raises(self, uniform_multi):
        with pytest.raises(InvalidParameterError):
            flatness_l2(uniform_multi, 0, 10, 0.0)


class TestFlatnessL1:
    def test_flat_interval_accepted(self, uniform_multi):
        assert flatness_l1(uniform_multi, 0, 256, 0.25, scale=1e-4).accepted

    def test_non_flat_interval_rejected(self, steep_multi):
        result = flatness_l1(steep_multi, 0, 256, 0.25, scale=1e-4)
        assert not result.accepted

    def test_threshold_formula(self, uniform_multi):
        result = flatness_l1(uniform_multi, 0, 256, 0.25, scale=1e-4)
        assert result.threshold == pytest.approx((1 / 256) * (1 + 0.25**2 / 4))

    def test_light_accept_when_scale_large(self, steep_multi):
        """With the unscaled (paper) threshold these sketches are light."""
        result = flatness_l1(steep_multi, 0, 256, 0.25, scale=1.0)
        assert result.accepted
        assert result.reason == REASON_LIGHT

    def test_bad_scale_raises(self, uniform_multi):
        with pytest.raises(InvalidParameterError):
            flatness_l1(uniform_multi, 0, 10, 0.25, scale=0.0)

    def test_zero_weight_interval_accepted(self):
        import numpy as np

        from repro.distributions.base import DiscreteDistribution

        pmf = np.zeros(64)
        pmf[:32] = 1 / 32
        dist = DiscreteDistribution(pmf)
        multi = make_multi(dist, 5, 5_000, np.random.default_rng(4))
        assert flatness_l1(multi, 32, 64, 0.25, scale=1e-3).accepted
        assert flatness_l2(multi, 32, 64, 0.25).accepted
