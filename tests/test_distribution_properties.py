"""Hypothesis suites for distribution functional identities.

These pin down the exact algebra the paper's analysis relies on:
additivity of weights and second moments, the conditional-collision
identity, and the coherence between samplers and estimators.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.base import DiscreteDistribution
from repro.histograms.intervals import Interval
from repro.samples.collision import CollisionSketch


@st.composite
def distributions(draw, min_n=2, max_n=40):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    if sum(weights) <= 0:
        weights = [1.0] * n
    return DiscreteDistribution(np.array(weights) / np.sum(weights))


@st.composite
def distribution_with_split(draw):
    dist = draw(distributions(min_n=3))
    cut = draw(st.integers(min_value=1, max_value=dist.n - 1))
    return dist, cut


class TestWeightAlgebra:
    @given(distribution_with_split())
    def test_weight_additivity(self, case):
        dist, cut = case
        left = dist.weight(Interval(0, cut))
        right = dist.weight(Interval(cut, dist.n))
        assert left + right == pytest.approx(1.0, abs=1e-9)

    @given(distribution_with_split())
    def test_second_moment_additivity(self, case):
        dist, cut = case
        total = dist.second_moment()
        parts = dist.second_moment(Interval(0, cut)) + dist.second_moment(
            Interval(cut, dist.n)
        )
        assert parts == pytest.approx(total, abs=1e-12)

    @given(distributions())
    def test_second_moment_bounds(self, dist):
        """1/n <= ||p||_2^2 <= 1 for any distribution."""
        norm_sq = dist.second_moment()
        assert 1.0 / dist.n - 1e-12 <= norm_sq <= 1.0 + 1e-12

    @given(distributions())
    def test_conditional_collision_identity(self, dist):
        """||p_I||_2^2 == second_moment(I) / p(I)^2 whenever p(I) > 0."""
        interval = Interval(0, dist.n)
        mass = dist.weight(interval)
        if mass <= 0:
            return
        expected = dist.second_moment(interval) / mass**2
        assert dist.conditional_collision_probability(interval) == pytest.approx(
            expected
        )

    @given(distributions())
    def test_flatness_iff_minimal_norm(self, dist):
        """An interval is flat iff its conditional norm hits 1/|I|
        (the identity both flatness tests exploit)."""
        interval = Interval(0, dist.n)
        if dist.weight(interval) <= 0:
            return
        norm = dist.conditional_collision_probability(interval)
        if dist.is_flat(interval):
            assert norm == pytest.approx(1.0 / interval.length, rel=1e-6)
        else:
            assert norm > 1.0 / interval.length - 1e-12


class TestSamplerEstimatorCoherence:
    @settings(max_examples=10, deadline=None)
    @given(distributions(min_n=4, max_n=16), st.integers(min_value=0, max_value=5))
    def test_sampling_frequencies_track_pmf(self, dist, seed):
        samples = dist.sample(40_000, seed)
        freq = np.bincount(samples, minlength=dist.n) / 40_000
        assert np.abs(freq - dist.pmf).max() < 0.03

    @settings(max_examples=10, deadline=None)
    @given(distributions(min_n=4, max_n=16), st.integers(min_value=0, max_value=5))
    def test_collision_statistic_tracks_norm(self, dist, seed):
        samples = dist.sample(30_000, seed)
        sketch = CollisionSketch(samples, dist.n)
        observed = sketch.total_collisions / (30_000 * 29_999 / 2)
        assert observed == pytest.approx(dist.second_moment(), abs=0.02)

    @settings(max_examples=10, deadline=None)
    @given(distribution_with_split(), st.integers(min_value=0, max_value=5))
    def test_interval_collisions_sum_to_total(self, case, seed):
        """coll(S) >= coll(S_left) + coll(S_right): cross-boundary pairs
        never collide (different values), so equality holds."""
        dist, cut = case
        samples = dist.sample(5_000, seed)
        sketch = CollisionSketch(samples, dist.n)
        left = sketch.collisions(0, cut)
        right = sketch.collisions(cut, dist.n)
        assert left + right == sketch.total_collisions


class TestMinPiecesStructure:
    @given(distributions())
    def test_min_pieces_bounds(self, dist):
        pieces = dist.min_histogram_pieces()
        assert 1 <= pieces <= dist.n

    @given(distributions())
    def test_from_pmf_roundtrip_matches_min_pieces(self, dist):
        from repro.histograms.tiling import TilingHistogram

        hist = TilingHistogram.from_pmf(dist.pmf)
        assert hist.num_pieces == dist.min_histogram_pieces()
        assert np.allclose(hist.to_pmf(), dist.pmf)
