"""Tests for repro.samples.sharded — mergeable shard sketches.

The binding property: for ANY shard count, merged arrays and prefix
rows are bit-equal to the monolithic sort and dense counting paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.samples.collision import (
    CollisionSketch,
    batched_interval_prefixes,
    dense_interval_prefixes,
)
from repro.samples.sample_set import SampleSet
from repro.samples.sharded import (
    ShardedSketch,
    combine_dense_parts,
    combine_shard_parts,
    compile_shard_part,
    compile_shard_part_dense,
    shard_chunks,
    sharded_interval_prefixes,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestShardChunks:
    def test_deterministic_even_split(self):
        values = np.arange(10)
        chunks = shard_chunks(values, 3)
        assert [c.tolist() for c in chunks] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_more_shards_than_values(self):
        chunks = shard_chunks(np.array([5, 1]), 4)
        assert len(chunks) == 4
        assert sum(c.size for c in chunks) == 2

    def test_empty_array(self):
        chunks = shard_chunks(np.array([], dtype=np.int64), 3)
        assert len(chunks) == 3
        assert all(c.size == 0 for c in chunks)

    def test_invalid_shard_count(self):
        with pytest.raises(InvalidParameterError):
            shard_chunks(np.arange(4), 0)

    def test_invalid_shape(self):
        with pytest.raises(InvalidParameterError):
            shard_chunks(np.zeros((2, 2)), 2)


class TestShardedSketch:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7, 16])
    def test_merge_equals_monolithic_sort(self, rng, num_shards):
        values = rng.integers(0, 40, size=123)
        sketch = ShardedSketch.from_array(values, 40, num_shards)
        assert np.array_equal(
            sketch.merge(), np.sort(values.astype(np.int64))
        )
        assert sketch.size == values.size
        assert sketch.num_shards == num_shards

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_count_prefix_matches_sample_set(self, rng, num_shards):
        values = rng.integers(0, 30, size=200)
        grid = np.unique(rng.integers(0, 31, size=10))
        sharded = ShardedSketch.from_array(values, 30, num_shards)
        mono = SampleSet(values, 30)
        assert np.array_equal(
            sharded.count_prefix_on_grid(grid), mono.count_prefix_on_grid(grid)
        )

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_merge_prefixes_match_collision_sketch(self, rng, num_shards):
        values = rng.integers(0, 30, size=200)
        grid = np.unique(np.concatenate(([0, 30], rng.integers(0, 31, size=10))))
        sharded = ShardedSketch.from_array(values, 30, num_shards)
        mono = CollisionSketch(values, 30)
        counts, pairs = sharded.merge_prefixes(grid)
        ref_counts, ref_pairs = mono.prefixes_on_grid(grid)
        assert np.array_equal(counts, ref_counts)
        assert np.array_equal(pairs, ref_pairs)

    def test_presorted_accepted_and_checked(self):
        sketch = ShardedSketch(
            [np.array([1, 2, 3]), np.array([0, 5])], 8, presorted=True
        )
        assert np.array_equal(sketch.merge(), np.array([0, 1, 2, 3, 5]))
        with pytest.raises(InvalidParameterError):
            ShardedSketch([np.array([3, 1])], 8, presorted=True)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ShardedSketch([], 8)
        with pytest.raises(InvalidParameterError):
            ShardedSketch([np.array([9])], 8)
        with pytest.raises(InvalidParameterError):
            ShardedSketch([np.zeros((2, 2))], 8)

    def test_shards_are_read_only(self):
        sketch = ShardedSketch.from_array(np.array([3, 1, 2]), 4, 2)
        with pytest.raises(ValueError):
            sketch.shards[0][0] = 0

    @given(
        st.lists(st.integers(min_value=0, max_value=9), max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    def test_merge_property(self, raw, num_shards):
        values = np.array(raw, dtype=np.int64)
        sketch = ShardedSketch.from_array(values, 10, num_shards)
        assert np.array_equal(sketch.merge(), np.sort(values))
        grid = np.arange(11)
        counts, pairs = sketch.merge_prefixes(grid)
        if values.size:
            mono = CollisionSketch(values, 10)
            ref_counts, ref_pairs = mono.prefixes_on_grid(grid)
            assert np.array_equal(counts, ref_counts)
            assert np.array_equal(pairs, ref_pairs)
        else:
            assert not counts.any() and not pairs.any()


class TestShardParts:
    def test_sparse_parts_combine(self, rng):
        n, grid = 25, np.arange(26)
        values = rng.integers(0, 25, size=90)
        chunks = shard_chunks(values, 4)
        parts = [compile_shard_part(chunk, n, grid) for chunk in chunks]
        counts, pairs = combine_shard_parts(parts, grid)
        ref = CollisionSketch(values, n).prefixes_on_grid(grid)
        assert np.array_equal(counts, ref[0])
        assert np.array_equal(pairs, ref[1])

    def test_dense_parts_combine(self, rng):
        n, grid = 25, np.arange(26)
        values = rng.integers(0, 25, size=90)
        chunks = shard_chunks(values, 4)
        parts = [compile_shard_part_dense(chunk, n) for chunk in chunks]
        counts, pairs = combine_dense_parts(parts, grid)
        ref = CollisionSketch(values, n).prefixes_on_grid(grid)
        assert np.array_equal(counts, ref[0])
        assert np.array_equal(pairs, ref[1])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            compile_shard_part(np.array([7]), 7, np.array([0, 7]))
        with pytest.raises(InvalidParameterError):
            compile_shard_part_dense(np.array([-1]), 7)


class TestShardedIntervalPrefixes:
    """The r-set builder must match both monolithic builders bit for bit."""

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("dense", [True, False, None])
    def test_matches_batched_builder(self, rng, num_shards, dense):
        n = 40
        sets = [rng.integers(0, n, size=size) for size in (0, 1, 55, 300)]
        grid = np.unique(np.concatenate(([0, n], rng.integers(0, n + 1, size=9))))
        got_counts, got_pairs = sharded_interval_prefixes(
            sets, n, grid, num_shards=num_shards, dense=dense
        )
        ref_counts, ref_pairs = batched_interval_prefixes(sets, n, grid)
        assert got_counts.dtype == np.int64 and got_counts.flags.c_contiguous
        assert np.array_equal(got_counts, ref_counts)
        assert np.array_equal(got_pairs, ref_pairs)

    def test_matches_dense_builder_on_full_grid(self, rng):
        n = 12
        sets = [rng.integers(0, n, size=80) for _ in range(3)]
        got = sharded_interval_prefixes(sets, n, np.arange(n + 1), num_shards=5)
        ref = dense_interval_prefixes(sets, n)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])

    def test_custom_mapper_is_used_in_order(self, rng):
        n = 10
        sets = [rng.integers(0, n, size=30) for _ in range(2)]
        calls = []

        def mapper(fn, tasks):
            calls.append(len(tasks))
            return [fn(task) for task in tasks]

        got = sharded_interval_prefixes(
            sets, n, np.arange(n + 1), num_shards=3, mapper=mapper
        )
        assert calls == [6]  # 2 sets x 3 shards, one batch
        ref = dense_interval_prefixes(sets, n)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])

    def test_no_sets(self):
        counts, pairs = sharded_interval_prefixes([], 5, np.arange(6), num_shards=2)
        assert counts.shape == (0, 6) and pairs.shape == (0, 6)

    @pytest.mark.parametrize("dense", [True, False])
    def test_pair_only_mode(self, rng, dense):
        """counts=False: identical pair rows, no hit rows computed (and,
        on the sparse path, no grid shipped to the shard tasks)."""
        n = 40
        sets = [rng.integers(0, n, size=120) for _ in range(3)]
        grid = np.unique(rng.integers(0, n + 1, size=9))
        seen_grids = []

        def mapper(fn, tasks):
            seen_grids.extend(task[-1] for task in tasks if len(task) == 3)
            return [fn(task) for task in tasks]

        counts, pairs = sharded_interval_prefixes(
            sets, n, grid, num_shards=4, dense=dense, counts=False, mapper=mapper
        )
        assert counts is None
        ref = batched_interval_prefixes(sets, n, grid)
        assert np.array_equal(pairs, ref[1])
        if not dense:
            assert seen_grids and all(task_grid is None for task_grid in seen_grids)

    def test_bad_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            sharded_interval_prefixes([np.array([1])], 5, np.array([0, 9]))
