"""Tests for repro.distributions.base."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.base import DiscreteDistribution
from repro.errors import InvalidDistributionError
from repro.histograms.intervals import Interval


@pytest.fixture
def dist(small_pmf):
    return DiscreteDistribution(small_pmf)


class TestConstruction:
    def test_valid(self, small_pmf):
        assert DiscreteDistribution(small_pmf).n == 8

    def test_negative_raises(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution(np.array([0.5, 0.6, -0.1]))

    def test_not_summing_to_one_raises(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution(np.array([0.5, 0.4]))

    def test_nan_raises(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution(np.array([0.5, np.nan]))

    def test_empty_raises(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution(np.array([]))

    def test_2d_raises(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution(np.ones((2, 2)) / 4)

    def test_from_weights_normalises(self):
        dist = DiscreteDistribution.from_weights(np.array([1.0, 3.0]))
        assert np.allclose(dist.pmf, [0.25, 0.75])

    def test_from_weights_zero_raises(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution.from_weights(np.zeros(3))

    def test_pmf_read_only(self, dist):
        with pytest.raises(ValueError):
            dist.pmf[0] = 1.0


class TestIntervalFunctionals:
    def test_weight_full_domain(self, dist):
        assert dist.weight(Interval(0, 8)) == pytest.approx(1.0)

    def test_weight_subinterval(self, dist, small_pmf):
        assert dist.weight(Interval(2, 5)) == pytest.approx(small_pmf[2:5].sum())

    def test_weight_out_of_domain_raises(self, dist):
        with pytest.raises(InvalidDistributionError):
            dist.weight(Interval(0, 9))

    def test_second_moment_full(self, dist, small_pmf):
        assert dist.second_moment() == pytest.approx((small_pmf**2).sum())

    def test_second_moment_interval(self, dist, small_pmf):
        assert dist.second_moment(Interval(2, 5)) == pytest.approx(
            (small_pmf[2:5] ** 2).sum()
        )

    def test_conditional_sums_to_one(self, dist):
        assert DiscreteDistribution(dist.conditional(Interval(2, 5)).pmf).n == 3

    def test_conditional_values(self, dist, small_pmf):
        cond = dist.conditional(Interval(0, 2))
        assert np.allclose(cond.pmf, [0.5, 0.5])

    def test_conditional_zero_weight_raises(self):
        pmf = np.array([0.0, 0.0, 1.0])
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution(pmf).conditional(Interval(0, 2))

    def test_conditional_collision_probability_uniform_piece(self, dist):
        # Elements 2..4 are all equal -> p_I uniform on 3 elements.
        assert dist.conditional_collision_probability(
            Interval(2, 5)
        ) == pytest.approx(1 / 3)

    def test_conditional_collision_probability_zero_weight(self):
        pmf = np.array([0.0, 0.0, 1.0])
        dist = DiscreteDistribution(pmf)
        assert dist.conditional_collision_probability(Interval(0, 2)) == 0.0


class TestFlatness:
    def test_uniform_piece_is_flat(self, dist):
        assert dist.is_flat(Interval(2, 5))

    def test_nonuniform_piece_is_not_flat(self, dist):
        assert not dist.is_flat(Interval(0, 3))

    def test_zero_weight_is_flat(self):
        dist = DiscreteDistribution(np.array([0.0, 0.0, 0.5, 0.5]))
        assert dist.is_flat(Interval(0, 2))

    def test_min_histogram_pieces(self, small_pmf):
        assert DiscreteDistribution(small_pmf).min_histogram_pieces() == 3

    def test_min_histogram_pieces_uniform(self):
        assert DiscreteDistribution(np.ones(5) / 5).min_histogram_pieces() == 1


class TestSampling:
    def test_sample_shape_and_range(self, dist, rng):
        samples = dist.sample(1000, rng)
        assert samples.shape == (1000,)
        assert samples.min() >= 0 and samples.max() < 8
        assert samples.dtype == np.int64

    def test_sample_zero(self, dist, rng):
        assert dist.sample(0, rng).shape == (0,)

    def test_sample_negative_raises(self, dist, rng):
        with pytest.raises(InvalidDistributionError):
            dist.sample(-1, rng)

    def test_sample_frequencies_converge(self, dist, rng, small_pmf):
        samples = dist.sample(200_000, rng)
        freq = np.bincount(samples, minlength=8) / 200_000
        assert np.abs(freq - small_pmf).max() < 0.01

    def test_sample_deterministic_given_seed(self, dist):
        assert np.array_equal(dist.sample(50, 9), dist.sample(50, 9))

    def test_zero_mass_elements_never_sampled(self, rng):
        pmf = np.array([0.0, 1.0, 0.0])
        samples = DiscreteDistribution(pmf).sample(1000, rng)
        assert np.all(samples == 1)

    def test_sample_sets(self, dist, rng):
        sets = dist.sample_sets(3, 100, rng)
        assert len(sets) == 3
        assert all(s.shape == (100,) for s in sets)
        assert not np.array_equal(sets[0], sets[1])

    def test_support_size(self):
        dist = DiscreteDistribution(np.array([0.0, 0.5, 0.5, 0.0]))
        assert dist.support_size() == 2

    def test_equality(self, small_pmf):
        assert DiscreteDistribution(small_pmf) == DiscreteDistribution(small_pmf)
