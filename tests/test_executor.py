"""Tests for repro.api.shard — ShardPlan and ParallelExecutor.

Conformance of full workloads lives in the shards × workers matrix
(``tests/test_conformance_matrix.py``); this file covers the executor's
own mechanics — inline fallback, order preservation, shared slabs,
scratch reuse, lifecycle — plus the compile entry points and the
streaming maintainers' executor passthrough.
"""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.api import ParallelExecutor, ShardPlan
from repro.api.shard import _compile_member_rows
from repro.core.flatness import (
    _resolve_stats,
    _resolve_stats_task,
    compile_tester_sketches,
    compile_tester_sketches_from_sets,
)
from repro.core.greedy import GreedySamples, compile_greedy_sketches
from repro.errors import InvalidParameterError
from repro.samples.collision import dense_interval_prefixes
from repro.samples.estimators import MultiSketch
from repro.streaming import StreamingHistogramMaintainer
from repro.streaming.fleet import FleetMaintainer
from repro.utils.faults import FaultPlan
from repro.utils.shm import create_slab


def _square(task: int) -> int:
    return task * task


def _read_slab(args):
    slab, index = args
    return int(slab.attach()[index])


class TestShardPlan:
    def test_defaults_and_split(self):
        plan = ShardPlan(3)
        assert plan.num_shards == 3
        chunks = plan.split(np.arange(7))
        assert [c.tolist() for c in chunks] == [[0, 1, 2], [3, 4], [5, 6]]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ShardPlan(0)


class TestParallelExecutorInline:
    def test_defaults(self):
        with ParallelExecutor() as executor:
            assert executor.workers == 1
            assert not executor.parallel
            assert executor.plan.num_shards == 1

    def test_plan_defaults_to_one_shard_per_worker(self):
        with ParallelExecutor(4) as executor:
            assert executor.plan.num_shards == 4

    def test_inline_map(self):
        with ParallelExecutor() as executor:
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_inline_shared_zeros_is_plain_array(self):
        with ParallelExecutor() as executor:
            array, slab = executor.shared_zeros((2, 3))
            assert slab is None
            assert array.shape == (2, 3) and not array.any()
            scratch, handle = executor.scratch("x", (4,))
            assert handle is None and scratch.shape == (4,)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ParallelExecutor(0)
        with pytest.raises(InvalidParameterError):
            ParallelExecutor(2, resolve_min_batch=0)


class TestParallelExecutorPool:
    def test_map_preserves_order(self):
        with ParallelExecutor(4) as executor:
            tasks = list(range(23))
            assert executor.map(_square, tasks) == [t * t for t in tasks]

    def test_workers_see_shared_writes(self):
        with ParallelExecutor(2) as executor:
            array, slab = executor.shared_zeros((5,))
            assert slab is not None
            array[:] = np.arange(5) * 10
            got = executor.map(_read_slab, [(slab, i) for i in range(5)])
            assert got == [0, 10, 20, 30, 40]

    def test_scratch_reuse_and_growth(self):
        with ParallelExecutor(2) as executor:
            _, first = executor.scratch("k", (4,))
            _, again = executor.scratch("k", (3,))
            assert again.name == first.name  # reused, not reallocated
            _, grown = executor.scratch("k", (400,))
            assert grown.name != first.name  # outgrew the segment

    def test_closed_executor_rejects_work(self):
        executor = ParallelExecutor(2)
        executor.map(_square, [1, 2])
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(InvalidParameterError):
            executor.map(_square, [1, 2])
        with pytest.raises(InvalidParameterError):
            executor.shared_zeros((2,))


class TestCompileEntryPoints:
    """Executor-driven compiles must equal the monolithic compiles."""

    @pytest.mark.parametrize("workers,shards", [(1, 1), (1, 5), (2, 3)])
    def test_tester_compile_matches(self, workers, shards):
        rng = np.random.default_rng(3)
        n = 48
        sets = [rng.integers(0, n, size=700) for _ in range(4)]
        reference = compile_tester_sketches(MultiSketch.from_sample_sets(sets, n))
        with ParallelExecutor(workers, plan=ShardPlan(shards)) as executor:
            compiled = compile_tester_sketches_from_sets(
                sets, n, executor=executor
            )
        assert np.array_equal(compiled._count_cols, reference._count_cols)
        assert np.array_equal(compiled._pair_cols, reference._pair_cols)
        assert compiled.set_size == reference.set_size

    def test_tester_compile_needs_sets(self):
        with pytest.raises(InvalidParameterError):
            compile_tester_sketches_from_sets([], 8)

    @pytest.mark.parametrize("workers,shards", [(1, 5), (2, 3)])
    @pytest.mark.parametrize("method", ["fast", "exhaustive"])
    def test_greedy_compile_matches(self, workers, shards, method):
        rng = np.random.default_rng(4)
        n = 32
        samples = GreedySamples(
            rng.integers(0, n, size=900),
            tuple(rng.integers(0, n, size=500) for _ in range(3)),
        )
        reference = compile_greedy_sketches(samples, n, method=method)
        with ParallelExecutor(workers, plan=ShardPlan(shards)) as executor:
            compiled = compile_greedy_sketches(
                samples, n, method=method, executor=executor
            )
        assert np.array_equal(
            compiled.weight_set.sorted_values, reference.weight_set.sorted_values
        )
        assert np.array_equal(compiled.weight_prefix, reference.weight_prefix)
        assert np.array_equal(
            compiled.pair_prefix_cols, reference.pair_prefix_cols
        )
        assert np.array_equal(compiled.self_costs, reference.self_costs)


class TestWorkerTasks:
    """The worker-side task functions, run in-process against references.

    (The pool runs them in forked children, invisible to coverage; the
    parity they must hold is process-independent, so it is pinned here
    directly over real shared-memory slabs.)
    """

    def test_compile_member_rows_matches_inline_compile(self):
        rng = np.random.default_rng(5)
        n, r, m = 20, 3, 150
        sets = [rng.integers(0, n, size=m) for _ in range(r)]
        segments = []
        try:
            seg_in, staged, sets_slab = create_slab((2, r, m))
            segments.append(seg_in)
            staged[1] = np.stack(sets)
            seg_c, count_stack, count_slab = create_slab((4, n + 1, r))
            seg_p, pair_stack, pair_slab = create_slab((4, n + 1, r))
            segments += [seg_c, seg_p]
            _compile_member_rows(
                (sets_slab, 1, 2, n, True, 2, count_slab, pair_slab)
            )
            ref_counts, ref_pairs = dense_interval_prefixes(sets, n)
            assert np.array_equal(count_stack[2], ref_counts.T)
            assert np.array_equal(pair_stack[2], ref_pairs.T)
            assert not count_stack[0].any()  # other slabs untouched
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    @pytest.mark.parametrize("metric", ["l2", "l1"])
    def test_resolve_stats_task_matches_inline(self, metric):
        rng = np.random.default_rng(6)
        n, r, fleet_size, m = 16, 3, 3, 200
        count_ref, pair_ref = [], []
        for _ in range(fleet_size):
            sets = [rng.integers(0, n, size=m) for _ in range(r)]
            counts, pairs = dense_interval_prefixes(sets, n)
            count_ref.append(counts.T)
            pair_ref.append(pairs.T)
        segments = []
        try:
            seg_c, count_stack, count_slab = create_slab((fleet_size, n + 1, r))
            seg_p, pair_stack, pair_slab = create_slab((fleet_size, n + 1, r))
            segments += [seg_c, seg_p]
            count_stack[:] = np.stack(count_ref)
            pair_stack[:] = np.stack(pair_ref)
            members = np.array([0, 2, 1])
            starts = np.array([0, 3, 8])
            stops = np.array([16, 9, 12])
            got = _resolve_stats_task(
                (count_slab, pair_slab, members, starts, stops, metric,
                 0.3, 1.0, m)
            )
            want = _resolve_stats(
                count_stack, pair_stack, members, starts, stops, metric,
                0.3, 1.0, m,
            )
            for got_part, want_part in zip(got, want):
                assert np.array_equal(got_part, want_part)
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()


class TestFleetSlabLifecycle:
    def test_dead_fleets_release_their_stack_segments(self):
        """A long-lived executor serving short-lived fleets must not
        accumulate their shared stacks (the /dev/shm leak)."""
        import gc

        from repro.api import ArraySource, HistogramFleet
        from repro.core.params import TesterParams

        rng = np.random.default_rng(2)
        n = 32
        sources = [ArraySource(rng.integers(0, n, size=2_000), n) for _ in range(2)]
        params = TesterParams(num_sets=3, set_size=500)
        with ParallelExecutor(2) as executor:
            for _ in range(4):
                fleet = HistogramFleet(
                    sources, n, rngs=[0, 1], test_budget=params, executor=executor
                )
                fleet.test_l2(2, 0.3)
                del fleet
                gc.collect()
            # scratch (1 segment) may persist; the per-fleet stack pairs
            # must not: at most the live round's two could remain.
            assert len(executor._segments) <= 3

    def test_dropped_executor_reaps_its_own_resources(self):
        """An executor that is dropped without ``close()`` must reap
        itself: the ``weakref.finalize`` safety net shuts the pool down
        and releases every shared segment (the /dev/shm strand)."""
        import gc

        from repro.api import ArraySource, HistogramFleet
        from repro.core.params import TesterParams

        rng = np.random.default_rng(3)
        n = 32
        sources = [ArraySource(rng.integers(0, n, size=1_000), n) for _ in range(2)]
        executor = ParallelExecutor(2)
        fleet = HistogramFleet(
            sources,
            n,
            rngs=[0, 1],
            test_budget=TesterParams(num_sets=3, set_size=300),
            executor=executor,
        )
        fleet.test_l2(2, 0.3)
        state = executor._state
        assert state.segments and not state.closed  # slabs really exist
        names = [segment.name for segment in state.segments]
        del fleet, executor
        gc.collect()
        assert state.closed
        assert state.pool is None
        assert state.segments == [] and state.retired == [] and state.scratch == {}
        for name in names:  # the OS objects are gone, not just our refs
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_explicit_close_then_finalize_is_a_noop(self):
        """close() and the GC finalizer race idempotently: whichever
        runs second finds ``closed`` set and does nothing."""
        executor = ParallelExecutor(2)
        state = executor._state
        executor.close()
        assert state.closed
        executor.close()  # second explicit close: no-op
        del executor  # finalizer fires on a closed state: no-op
        import gc

        gc.collect()
        assert state.closed and state.segments == []


class TestAttachmentCache:
    def test_attach_cache_stays_bounded(self):
        """Replaced segments are unmapped instead of accumulating for
        the process lifetime (the worker-side LRU bound)."""
        from repro.utils import shm as shm_module

        segments = []
        try:
            for _ in range(shm_module._ATTACH_CACHE_LIMIT + 8):
                segment, _, slab = create_slab((4,))
                segments.append(segment)
                array = slab.attach()
                assert array.shape == (4,)
                del array  # release the export so eviction can unmap
            assert len(shm_module._ATTACHED) <= shm_module._ATTACH_CACHE_LIMIT
        finally:
            for segment in segments:
                try:
                    segment.close()
                except BufferError:
                    pass
                segment.unlink()


class TestMaintainerPassthrough:
    """Maintainers with an executor reproduce the serial byte stream."""

    def _feed(self, maintainer, rng):
        for _ in range(3):
            maintainer.update_many(rng.integers(0, 64, size=400))

    def test_streaming_maintainer_matches_serial(self):
        serial = StreamingHistogramMaintainer(
            64, 4, reservoir_capacity=512, refresh_every=300, rng=0
        )
        self._feed(serial, np.random.default_rng(9))
        with ParallelExecutor(2, plan=ShardPlan(3)) as executor:
            parallel = StreamingHistogramMaintainer(
                64, 4, reservoir_capacity=512, refresh_every=300, rng=0,
                executor=executor,
            )
            self._feed(parallel, np.random.default_rng(9))
            assert np.array_equal(
                serial.histogram.values, parallel.histogram.values
            )
            assert serial.test(norm="l1") == parallel.test(norm="l1")

    def test_fleet_maintainer_touches_only_dirty_members(self):
        with ParallelExecutor(2, plan=ShardPlan(2)) as executor:
            maintainer = FleetMaintainer(
                3, 64, 4, reservoir_capacity=256, rng=1, executor=executor
            )
            rng = np.random.default_rng(11)
            for member in range(3):
                maintainer.update_many(member, rng.integers(0, 64, size=300))
            first = maintainer.test(norm="l2")
            compiled_before = [
                dict(maintainer.fleet.session(f)._bundle._tester_compiled_cache)
                for f in range(3)
            ]
            # Touch only member 1; the quiet members' compiled sketches
            # (and memos) must survive the next probe untouched.
            maintainer.update_many(1, rng.integers(0, 64, size=50))
            second = maintainer.test(norm="l2")
            compiled_after = [
                dict(maintainer.fleet.session(f)._bundle._tester_compiled_cache)
                for f in range(3)
            ]
            for member in (0, 2):
                for key, compiled in compiled_before[member].items():
                    assert compiled_after[member][key] is compiled
            for key, compiled in compiled_before[1].items():
                assert compiled_after[1][key] is not compiled
            assert len(first) == len(second) == 3


class TestSelfHealing:
    """The degradation ladder: respawn (bounded), then inline — all
    byte-identical, with the fault history exposed through health()."""

    pytestmark = pytest.mark.shm_guard

    def test_kill_mid_map_respawns_and_matches_inline(self):
        tasks = list(range(16))
        want = [t * t for t in tasks]
        plan = FaultPlan(kill_at=[3], kill_limit=1)
        with ParallelExecutor(2, faults=plan, max_respawns=2) as executor:
            assert executor.map(_square, tasks) == want
            health = executor.health()
            assert health["worker_crashes"] == 1
            assert health["respawns"] == 1
            assert health["retried_tasks"] == len(tasks)
            assert not health["degraded"] and executor.parallel
            assert [e["kind"] for e in health["events"]] == [
                "worker_crash", "respawn",
            ]
            # The healed pool keeps serving.
            assert executor.map(_square, tasks) == want

    def test_respawn_budget_exhaustion_degrades_to_inline(self):
        tasks = list(range(8))
        want = [t * t for t in tasks]
        with ParallelExecutor(
            2, faults=FaultPlan(kill_every=1), max_respawns=1
        ) as executor:
            assert executor.map(_square, tasks) == want
            assert executor.degraded and not executor.parallel
            health = executor.health()
            assert health["worker_crashes"] == 2
            assert health["respawns"] == 1
            assert [e["kind"] for e in health["events"]][-1] == "degraded"
            # Degraded maps run inline; in-parent kills are skipped, so
            # the healthy computation simply runs.
            assert executor.map(_square, tasks) == want
            assert executor.health()["degraded_maps"] == 2

    def test_degrade_reaps_segment_names_eagerly(self):
        with ParallelExecutor(
            2, faults=FaultPlan(kill_every=1), max_respawns=0
        ) as executor:
            array, slab = executor.shared_zeros((6,))
            array[:] = np.arange(6)
            assert executor.map(
                _read_slab, [(slab, i) for i in range(6)]
            ) == list(range(6))
            assert executor.degraded
            # The /dev/shm name died the moment the executor degraded
            # (no worker can ever attach again)...
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=slab.name)
            # ...but the parent-held mapping still serves inline tasks.
            assert executor.map(_read_slab, [(slab, 3), (slab, 5)]) == [3, 5]

    def test_worker_sigkill_then_finalize_reaps_everything(self):
        """A worker SIGKILLed mid-map over live slabs must not defeat
        the ``weakref.finalize`` safety net: the map self-heals with
        bit-equal results, and the dropped executor still reaps its
        respawned pool and every shared segment."""
        import gc

        plan = FaultPlan(kill_at=[1], kill_limit=1)
        executor = ParallelExecutor(2, faults=plan, max_respawns=2)
        array, slab = executor.shared_zeros((8,))
        array[:] = np.arange(8) * 3
        got = executor.map(_read_slab, [(slab, i) for i in range(8)])
        assert got == [i * 3 for i in range(8)]  # healed, bit-equal
        assert executor.health()["worker_crashes"] == 1
        state = executor._state
        names = [segment.name for segment in state.segments]
        assert names and not state.closed
        del array, executor
        gc.collect()
        assert state.closed and state.pool is None
        for name in names:  # the OS objects are gone, not just our refs
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_delay_directive_only_slows_the_map(self):
        with ParallelExecutor(
            2, faults=FaultPlan(delay_at=[0], delay_s=0.01)
        ) as executor:
            assert executor.map(_square, list(range(8))) == [
                t * t for t in range(8)
            ]
            health = executor.health()
            assert health["worker_crashes"] == 0 and not health["degraded"]

    def test_alloc_fault_falls_back_to_plain_arrays(self):
        with ParallelExecutor(
            2, faults=FaultPlan(fail_alloc_at=[0, 1])
        ) as executor:
            array, slab = executor.shared_zeros((4,))
            assert slab is None and not array.any()
            scratch_array, scratch_slab = executor.scratch("k", (4,))
            assert scratch_slab is None and scratch_array.shape == (4,)
            assert executor.health()["slab_fallbacks"] == 2
            # The next allocation is healthy again.
            _, healthy = executor.shared_zeros((4,))
            assert healthy is not None

    def test_release_is_idempotent_against_unlinked_slabs(self):
        with ParallelExecutor(2) as executor:
            array, slab = executor.shared_zeros((4,))
            segment = next(
                s for s in executor._segments if s.name == slab.name
            )
            segment.unlink()  # yanked behind the executor's back
            del array
            executor.release(slab)  # must not raise
            executor.release(slab)  # segment already gone: no-op
            executor.release(None, slab)
            assert executor._segments == []
