"""Tests for repro.distributions.property_distance."""

from __future__ import annotations

import pytest

from repro.distributions import families
from repro.distributions.distances import l1_distance, l2_distance
from repro.distributions.property_distance import (
    distance_to_k_histogram,
    is_k_histogram,
    nearest_k_histogram,
)
from repro.errors import InvalidParameterError


class TestDistanceToKHistogram:
    def test_member_has_zero_distance(self, rng):
        dist = families.random_tiling_histogram(64, 4, rng)
        assert distance_to_k_histogram(dist, 4, norm="l2") == pytest.approx(0.0, abs=1e-9)
        assert distance_to_k_histogram(dist, 4, norm="l1") == pytest.approx(0.0, abs=1e-9)

    def test_larger_k_never_increases_distance(self):
        dist = families.sawtooth(64)
        d4 = distance_to_k_histogram(dist, 4, norm="l1")
        d8 = distance_to_k_histogram(dist, 8, norm="l1")
        assert d8 <= d4 + 1e-12

    def test_sawtooth_is_far_in_l1(self):
        """The canonical NO instance keeps constant l1 distance."""
        dist = families.sawtooth(128, low=0.25, high=1.75)
        assert distance_to_k_histogram(dist, 8, norm="l1") > 0.3

    def test_uniform_is_1_histogram(self):
        dist = families.uniform(32)
        assert distance_to_k_histogram(dist, 1, norm="l2") == pytest.approx(0.0, abs=1e-12)

    def test_bad_norm_raises(self):
        with pytest.raises(InvalidParameterError):
            distance_to_k_histogram(families.uniform(8), 2, norm="tv")

    def test_l2_distance_matches_nearest(self):
        dist = families.linear_ramp(32)
        hist, d = nearest_k_histogram(dist, 3, norm="l2")
        assert d == pytest.approx(l2_distance(dist, hist), abs=1e-12)
        assert d == pytest.approx(distance_to_k_histogram(dist, 3, norm="l2"), abs=1e-12)

    def test_l1_lower_bound_below_realised(self):
        dist = families.linear_ramp(32)
        hist, realised = nearest_k_histogram(dist, 3, norm="l1")
        lower = distance_to_k_histogram(dist, 3, norm="l1")
        assert lower <= realised + 1e-12
        assert realised == pytest.approx(l1_distance(dist, hist), abs=1e-12)

    def test_nearest_is_valid_histogram(self):
        hist, _ = nearest_k_histogram(families.sawtooth(32), 4, norm="l2")
        assert hist.num_pieces <= 4
        assert hist.total_mass() == pytest.approx(1.0)


class TestIsKHistogram:
    def test_exact_member(self, rng):
        dist = families.random_tiling_histogram(50, 3, rng)
        assert is_k_histogram(dist, 3)
        assert is_k_histogram(dist, 5)

    def test_non_member(self):
        assert not is_k_histogram(families.linear_ramp(20), 5)

    def test_every_distribution_is_n_histogram(self):
        dist = families.dirichlet_random(12, 1.0, 3)
        assert is_k_histogram(dist, 12)
