"""Tests for the result dataclasses in repro.core.results."""

from __future__ import annotations

import math

import pytest

from repro.core.params import GreedyParams, TesterParams
from repro.core.results import (
    FlatnessQuery,
    GreedyRound,
    LearnResult,
    TestResult,
    UniformityResult,
)
from repro.histograms.intervals import Interval
from repro.histograms.priority import PriorityHistogram
from repro.histograms.tiling import TilingHistogram


def make_learn_result(rounds):
    return LearnResult(
        histogram=TilingHistogram.uniform(8),
        priority_histogram=PriorityHistogram(8),
        params=GreedyParams(16, 3, 16, max(len(rounds), 1)),
        rounds=rounds,
        method="fast",
        num_candidates=10,
        samples_used=64,
    )


class TestLearnResult:
    def test_estimated_cost_from_last_round(self):
        rounds = [
            GreedyRound(0, Interval(0, 4), 0.5, 0.9, 10),
            GreedyRound(1, Interval(4, 8), 0.5, 0.4, 10),
        ]
        assert make_learn_result(rounds).estimated_cost == 0.4

    def test_estimated_cost_nan_when_empty(self):
        assert math.isnan(make_learn_result([]).estimated_cost)

    def test_filled_histogram_defaults_none(self):
        assert make_learn_result([]).filled_histogram is None

    def test_round_fields(self):
        r = GreedyRound(3, Interval(1, 5), 0.25, 0.1, 99)
        assert r.round_index == 3
        assert r.chosen.length == 4
        assert r.candidates_evaluated == 99


class TestTestResult:
    def test_query_count(self):
        queries = [
            FlatnessQuery(Interval(0, 4), True, "collision-bound", 0.2, 0.3),
            FlatnessQuery(Interval(0, 8), False, "rejected", 0.5, 0.3),
        ]
        result = TestResult(
            accepted=False,
            norm="l1",
            k=2,
            epsilon=0.25,
            partition=[Interval(0, 4)],
            queries=queries,
            params=TesterParams(3, 16),
            samples_used=48,
        )
        assert result.num_flatness_queries == 2

    def test_count_rejections_helper(self):
        from repro.core.tester import count_rejections

        queries = [
            FlatnessQuery(Interval(0, 4), True, "light-weight", None, None),
            FlatnessQuery(Interval(0, 8), False, "rejected", 0.5, 0.3),
            FlatnessQuery(Interval(4, 8), False, "rejected", 0.6, 0.3),
        ]
        result = TestResult(
            accepted=False,
            norm="l2",
            k=2,
            epsilon=0.25,
            partition=[],
            queries=queries,
            params=TesterParams(3, 16),
            samples_used=48,
        )
        assert count_rejections(result) == 2


class TestUniformityResult:
    def test_fields(self):
        result = UniformityResult(
            accepted=True,
            statistic=0.001,
            threshold=0.002,
            epsilon=0.25,
            samples_used=100,
            collisions=5,
        )
        assert result.accepted
        assert result.collisions == 5

    def test_frozen(self):
        result = UniformityResult(True, 0.1, 0.2, 0.25, 10)
        with pytest.raises(AttributeError):
            result.accepted = False
