"""Tests for repro.core.params (the paper's formulas)."""

from __future__ import annotations

import math

import pytest

from repro.core.params import (
    GreedyParams,
    TesterParams,
    flatness_l1_min_hits,
    greedy_rounds,
    xi,
)
from repro.errors import InvalidParameterError


class TestXi:
    def test_formula(self):
        assert xi(4, 0.1) == pytest.approx(0.1 / (4 * math.log(10)))

    def test_decreasing_in_k(self):
        assert xi(8, 0.1) < xi(2, 0.1)

    def test_epsilon_bounds(self):
        with pytest.raises(InvalidParameterError):
            xi(4, 0.0)
        with pytest.raises(InvalidParameterError):
            xi(4, 1.0)

    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            xi(0, 0.1)


class TestGreedyRounds:
    def test_formula(self):
        assert greedy_rounds(4, 0.1) == math.ceil(4 * math.log(10))

    def test_at_least_one(self):
        assert greedy_rounds(1, 0.9) >= 1

    def test_scales_with_k(self):
        # ceil() makes the doubling inexact by at most one round
        assert abs(greedy_rounds(8, 0.1) - 2 * greedy_rounds(4, 0.1)) <= 1


class TestGreedyParams:
    def test_paper_formulas(self):
        params = GreedyParams.from_paper(1000, 4, 0.1)
        accuracy = xi(4, 0.1)
        assert params.weight_sample_size == math.ceil(
            math.log(12 * 1000**2) / (2 * accuracy**2)
        )
        assert params.collision_set_size == math.ceil(24 / accuracy**2)
        assert params.rounds == greedy_rounds(4, 0.1)

    def test_collision_sets_odd(self):
        assert GreedyParams.from_paper(1000, 4, 0.1).collision_sets % 2 == 1

    def test_scale_reduces_set_sizes(self):
        full = GreedyParams.from_paper(1000, 4, 0.1, scale=1.0)
        tiny = GreedyParams.from_paper(1000, 4, 0.1, scale=0.01)
        assert tiny.weight_sample_size < full.weight_sample_size
        assert tiny.collision_set_size < full.collision_set_size
        assert tiny.collision_sets == full.collision_sets  # r not scaled
        assert tiny.rounds == full.rounds

    def test_total_samples(self):
        params = GreedyParams(100, 5, 200, 3)
        assert params.total_samples == 100 + 5 * 200

    def test_log_dependence_on_n(self):
        """Sample complexity grows logarithmically in n (Theorem 1)."""
        small = GreedyParams.from_paper(100, 4, 0.1)
        big = GreedyParams.from_paper(100_000, 4, 0.1)
        ratio = big.weight_sample_size / small.weight_sample_size
        assert ratio < 4  # log(1e10)/log(1.2e5) ~ 2

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            GreedyParams.from_paper(100, 4, 0.1, scale=0.0)
        with pytest.raises(InvalidParameterError):
            GreedyParams.from_paper(100, 4, 0.1, scale=1.5)

    def test_invalid_fields(self):
        with pytest.raises(InvalidParameterError):
            GreedyParams(0, 5, 200, 3)


class TestTesterParams:
    def test_l2_formula(self):
        params = TesterParams.l2_from_paper(1000, 0.25)
        assert params.set_size == math.ceil(64 * math.log(1000) / 0.25**4)
        assert params.num_sets >= 16 * math.log(6 * 1000**2)

    def test_l1_formula(self):
        params = TesterParams.l1_from_paper(1000, 4, 0.25)
        expected = math.ceil(2**13 * math.sqrt(4 * 1000) / 0.25**5)
        assert params.set_size == expected

    def test_l1_scales_with_sqrt_kn(self):
        """Theorem 4: m ~ sqrt(kn)."""
        base = TesterParams.l1_from_paper(1000, 4, 0.25).set_size
        quad = TesterParams.l1_from_paper(4000, 4, 0.25).set_size
        assert quad == pytest.approx(2 * base, rel=0.01)

    def test_l2_polylog_in_n(self):
        """Theorem 3: m ~ ln n (not polynomial)."""
        small = TesterParams.l2_from_paper(100, 0.25).set_size
        big = TesterParams.l2_from_paper(10_000, 0.25).set_size
        assert big / small < 3

    def test_total_samples(self):
        assert TesterParams(10, 100).total_samples == 1000

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TesterParams(0, 100)
        with pytest.raises(InvalidParameterError):
            TesterParams.l2_from_paper(100, 1.5)


class TestFlatnessThreshold:
    def test_formula(self):
        assert flatness_l1_min_hits(64, 0.5) == pytest.approx(
            16**3 * 8 / 0.5**4
        )

    def test_grows_with_length(self):
        assert flatness_l1_min_hits(100, 0.5) > flatness_l1_min_hits(10, 0.5)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            flatness_l1_min_hits(0, 0.5)
        with pytest.raises(InvalidParameterError):
            flatness_l1_min_hits(10, 1.5)
