"""Tests for repro.core.candidates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.candidates import (
    CandidateSet,
    all_interval_candidates,
    sample_endpoint_candidates,
)
from repro.errors import InvalidParameterError


class TestAllIntervals:
    def test_count_is_n_choose_2_plus_n(self):
        """All non-empty [a, b) with 0 <= a < b <= n: C(n+1, 2) of them."""
        cands = all_interval_candidates(5)
        assert cands.size == 6 * 5 // 2

    def test_covers_every_interval(self):
        cands = all_interval_candidates(4)
        pairs = {
            (int(cands.grid[lo]), int(cands.grid[hi]))
            for lo, hi in zip(cands.lo, cands.hi)
        }
        expected = {(a, b) for a in range(5) for b in range(a + 1, 5)}
        assert pairs == expected

    def test_invalid_n_raises(self):
        with pytest.raises(InvalidParameterError):
            all_interval_candidates(0)


class TestSampleEndpoints:
    def test_t_prime_construction(self):
        """T' = T union (T +- 1) clipped to the domain."""
        cands = sample_endpoint_candidates(np.array([3, 3, 7]), 10)
        starts = {int(cands.grid[lo]) for lo in cands.lo}
        assert starts == {2, 3, 4, 6, 7, 8}

    def test_candidates_are_closed_pairs(self):
        """Every [a, b+1) with a <= b from T' appears exactly once."""
        samples = np.array([2])
        cands = sample_endpoint_candidates(samples, 5)
        pairs = {
            (int(cands.grid[lo]), int(cands.grid[hi]))
            for lo, hi in zip(cands.lo, cands.hi)
        }
        t_prime = [1, 2, 3]
        expected = {
            (a, b + 1) for a in t_prime for b in t_prime if b >= a
        }
        assert pairs == expected

    def test_boundary_clipping(self):
        cands = sample_endpoint_candidates(np.array([0, 9]), 10)
        points = {int(cands.grid[i]) for i in cands.lo}
        assert 0 in points
        assert max(int(cands.grid[i]) for i in cands.hi) == 10

    def test_size_quadratic_in_distinct_values(self):
        samples = np.array([10, 20, 30])
        cands = sample_endpoint_candidates(samples, 100)
        t_prime_size = 9  # 3 values x 3 neighbours, all distinct
        assert cands.size == t_prime_size * (t_prime_size + 1) // 2

    def test_empty_samples_raise(self):
        with pytest.raises(InvalidParameterError):
            sample_endpoint_candidates(np.array([], dtype=np.int64), 10)

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidParameterError):
            sample_endpoint_candidates(np.array([10]), 10)

    @given(
        st.lists(st.integers(min_value=0, max_value=29), min_size=1, max_size=20)
    )
    def test_all_candidates_valid(self, values):
        cands = sample_endpoint_candidates(np.array(values), 30)
        assert np.all(cands.grid[cands.hi] > cands.grid[cands.lo])
        assert cands.grid[0] == 0 and cands.grid[-1] == 30

    @given(
        st.lists(st.integers(min_value=0, max_value=29), min_size=1, max_size=20)
    )
    def test_fast_candidates_subset_of_all(self, values):
        fast = sample_endpoint_candidates(np.array(values), 30)
        fast_pairs = {
            (int(fast.grid[lo]), int(fast.grid[hi]))
            for lo, hi in zip(fast.lo, fast.hi)
        }
        all_pairs = {(a, b) for a in range(31) for b in range(a + 1, 31)}
        assert fast_pairs <= all_pairs


class TestCandidateSet:
    def test_subsample_caps_size(self):
        cands = all_interval_candidates(20)
        small = cands.subsample(10, rng=3)
        assert small.size == 10
        assert np.array_equal(small.grid, cands.grid)

    def test_subsample_noop_when_small(self):
        cands = all_interval_candidates(4)
        assert cands.subsample(1000, rng=3) is cands

    def test_subsample_invalid(self):
        with pytest.raises(InvalidParameterError):
            all_interval_candidates(4).subsample(0)

    def test_locate(self):
        cands = all_interval_candidates(5)
        assert np.array_equal(cands.locate(np.array([0, 3, 5])), [0, 3, 5])

    def test_locate_off_grid_raises(self):
        cands = sample_endpoint_candidates(np.array([5]), 100)
        with pytest.raises(InvalidParameterError):
            cands.locate(np.array([50]))

    def test_mismatched_lo_hi_raise(self):
        grid = np.array([0, 5, 10])
        with pytest.raises(InvalidParameterError):
            CandidateSet(grid, np.array([0]), np.array([1, 2]))

    def test_empty_interval_raises(self):
        grid = np.array([0, 5, 10])
        with pytest.raises(InvalidParameterError):
            CandidateSet(grid, np.array([1]), np.array([1]))
