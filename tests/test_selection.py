"""Tests for repro.core.selection (min-k estimation)."""

from __future__ import annotations

import pytest

from repro.core.params import TesterParams
from repro.core.selection import estimate_min_k
from repro.distributions import families
from repro.errors import InvalidParameterError

PARAMS = TesterParams(num_sets=11, set_size=20_000)


class TestEstimateMinK:
    def test_uniform_needs_one(self):
        result = estimate_min_k(
            families.uniform(256), 256, 0.25, params=PARAMS, rng=1
        )
        assert result.k == 1
        assert len(result.partition) == 1

    def test_recovers_k_of_well_separated_histogram(self):
        dist = families.random_tiling_histogram(256, 4, 5, min_piece=32)
        true_k = dist.min_histogram_pieces()
        result = estimate_min_k(dist, 256, 0.2, params=PARAMS, rng=2)
        assert result.k is not None
        assert result.k <= true_k  # never more pieces than the truth

    def test_lower_bound_yes_instance(self):
        from repro.core.lower_bound import yes_instance

        result = estimate_min_k(yes_instance(256, 4), 256, 0.2, params=PARAMS, rng=3)
        assert result.k is not None and result.k <= 4

    def test_sawtooth_needs_many(self):
        result = estimate_min_k(
            families.sawtooth(64), 64, 0.25, max_k=8, params=PARAMS, rng=4
        )
        assert result.k is None

    def test_partition_covers_domain_when_found(self):
        dist = families.two_level(256, heavy_start=64, heavy_length=64)
        result = estimate_min_k(dist, 256, 0.25, params=PARAMS, rng=5)
        assert result.k is not None
        assert result.partition[-1].stop == 256
        assert result.partition[0].start == 0

    def test_tried_flags_consistent(self):
        dist = families.two_level(256, heavy_start=64, heavy_length=64)
        result = estimate_min_k(dist, 256, 0.25, max_k=6, params=PARAMS, rng=6)
        for k, accepted in result.tried:
            assert accepted == (result.k is not None and k >= result.k)

    def test_l2_mode(self):
        result = estimate_min_k(
            families.spikes(256, 8), 256, 0.25, max_k=30, norm="l2", scale=0.05, rng=7
        )
        # spikes(256, 8) is a 17-piece histogram (8 singleton spikes + gaps
        # with zero background): the tester needs more than 8 pieces.
        assert result.k is not None
        assert 8 < result.k <= 20

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            estimate_min_k(families.uniform(16), 16, 0.25, max_k=0)
        with pytest.raises(InvalidParameterError):
            estimate_min_k(families.uniform(16), 16, 0.25, norm="tv")

    def test_samples_shared_across_candidates(self):
        result = estimate_min_k(
            families.uniform(64), 64, 0.25, max_k=16, params=PARAMS, rng=8
        )
        assert result.samples_used == PARAMS.total_samples
