"""Lockstep learn engine: byte-identity against looped references.

The lockstep contract (ISSUE: fleet-lockstep greedy learning): running
any batch of greedy learns as one round-synchronised pass — across a
session's ``learn_many`` grid, across a fleet's members, or across the
full fleet x grid product — produces *byte*-identical histograms,
per-round priority traces, and draw accounting to looping
``HistogramSession.learn`` with the incremental engine.  Pinned here as
a hypothesis lockstep over random fleets and grids (mixed round budgets
so early-converging runs drop out of the active mask mid-batch), plus
chaos cells where the rescore fan's workers are killed or starved of
slabs mid-round and must heal bit-equal.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ArraySource,
    HistogramFleet,
    HistogramSession,
    ParallelExecutor,
    ShardPlan,
)
from repro.core.params import GreedyParams, greedy_rounds
from repro.distributions import families
from repro.utils.faults import FaultPlan

LEARN_PARAMS = GreedyParams(
    weight_sample_size=3_000, collision_sets=4, collision_set_size=1_500, rounds=2
)
# Round budgets q = k ln(1/eps) differ across this grid, so in any
# batched run the small-k points converge and leave the active mask
# while the large-k points are still committing rounds.
MIXED_GRID = [(2, 0.4), (6, 0.2), (3, 0.3)]


def _freeze(result):
    """Everything the byte-identity contract covers, hashable."""
    return (
        result.histogram.boundaries.tobytes(),
        result.histogram.values.tobytes(),
        result.filled_histogram.values.tobytes(),
        tuple(result.rounds),
        tuple(result.priority_histogram.pieces()),
        result.num_candidates,
    )


def _member_values(n, fleet_size, seed):
    """One pinned value array per member; wrap in a fresh
    :class:`ArraySource` per driver so both sides see identical data."""
    base = families.random_tiling_histogram(n, 4, rng=seed, min_piece=4)
    return [
        base.sample(12_000, np.random.default_rng(seed + 50 + f))
        for f in range(fleet_size)
    ]


def test_grid_round_budgets_really_differ():
    """Guard the premise of the drop-out coverage: the pinned grid mixes
    round budgets, so lockstep batches over it exercise the active-mask
    early-convergence path (not just equal-length runs)."""
    budgets = {greedy_rounds(k, epsilon) for k, epsilon in MIXED_GRID}
    assert len(budgets) > 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_session_lockstep_matches_incremental(seed):
    """Session-level lockstep — ``learn`` and the batched ``learn_many``
    — is byte-identical to the incremental engine, draw events
    included."""
    n = 96
    (values,) = _member_values(n, 1, seed)
    lock = HistogramSession(
        ArraySource(values, n),
        n,
        rng=seed,
        engine="lockstep",
        learn_budget=LEARN_PARAMS,
    )
    incr = HistogramSession(
        ArraySource(values, n),
        n,
        rng=seed,
        engine="incremental",
        learn_budget=LEARN_PARAMS,
    )
    assert _freeze(lock.learn(3, 0.3)) == _freeze(incr.learn(3, 0.3))
    lock_grid = lock.learn_many(MIXED_GRID)
    incr_grid = incr.learn_many(MIXED_GRID)
    assert [_freeze(r) for r in lock_grid] == [_freeze(r) for r in incr_grid]
    assert lock.draw_events == incr.draw_events
    assert lock.samples_drawn == incr.samples_drawn


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fleet_size=st.integers(min_value=1, max_value=4),
)
def test_fleet_learn_many_matches_looped_sessions(seed, fleet_size):
    """Fleet lockstep over the full ``F x P`` batch — members with
    differing round budgets dropping out mid-lockstep — equals looping
    incremental sessions point by point: histograms, round traces,
    priority histograms, and draw accounting."""
    n = 96
    member_values = _member_values(n, fleet_size, seed)
    seeds = [seed + 7 * f for f in range(fleet_size)]
    fleet = HistogramFleet(
        [ArraySource(values, n) for values in member_values],
        n,
        rngs=seeds,
        engine="lockstep",
        learn_budget=LEARN_PARAMS,
    )
    sessions = [
        HistogramSession(
            ArraySource(values, n),
            n,
            rng=s,
            engine="incremental",
            learn_budget=LEARN_PARAMS,
        )
        for values, s in zip(member_values, seeds)
    ]
    fleet_results = fleet.learn_many(MIXED_GRID)
    session_results = [session.learn_many(MIXED_GRID) for session in sessions]
    assert [
        [_freeze(r) for r in member] for member in fleet_results
    ] == [[_freeze(r) for r in member] for member in session_results]
    assert fleet.draw_events == [session.draw_events for session in sessions]
    # The batch planned its pools up front: one learn draw per member.
    assert all(events["learn"] == 1 for events in fleet.draw_events)


def test_fleet_learn_matches_looped_sessions_single_point():
    """``HistogramFleet.learn`` (the serving/maintainer entry point)
    holds the same contract on a single point, member subsets
    included."""
    n = 128
    member_values = _member_values(n, 5, 3)
    seeds = list(range(5))
    fleet = HistogramFleet(
        [ArraySource(values, n) for values in member_values],
        n,
        rngs=seeds,
        engine="lockstep",
        learn_budget=LEARN_PARAMS,
    )
    sessions = [
        HistogramSession(
            ArraySource(values, n),
            n,
            rng=s,
            engine="incremental",
            learn_budget=LEARN_PARAMS,
        )
        for values, s in zip(member_values, seeds)
    ]
    subset = [3, 1]
    fleet_results = fleet.learn(4, 0.25, members=subset)
    session_results = [sessions[f].learn(4, 0.25) for f in subset]
    assert [_freeze(r) for r in fleet_results] == [
        _freeze(r) for r in session_results
    ]


@pytest.mark.shm_guard
@pytest.mark.parametrize(
    "label,make_plan,max_respawns",
    [
        ("kill-mid-round", lambda: FaultPlan(kill_at=[0], kill_limit=2), 4),
        ("kill-until-inline", lambda: FaultPlan(kill_every=1), 1),
        ("slab-alloc-failures", lambda: FaultPlan(fail_alloc_at=[0, 1]), 2),
    ],
    ids=["kill-mid-round", "kill-until-inline", "slab-alloc-failures"],
)
def test_chaos_mid_learn_round_heals_bit_equal(label, make_plan, max_respawns):
    """With the rescore fan forced on (``learn_fan_min_candidates=1``),
    workers SIGKILLed mid learn-round, degraded all the way to inline,
    or denied scratch slabs (which drops the whole batch back to the
    serial lockstep path) all reproduce the no-executor reference bit
    for bit."""
    n = 96
    member_values = _member_values(n, 3, 1)
    seeds = [11, 22, 33]

    def run(executor):
        fleet = HistogramFleet(
            [ArraySource(values, n) for values in member_values],
            n,
            rngs=seeds,
            engine="lockstep",
            learn_budget=LEARN_PARAMS,
            executor=executor,
        )
        return fleet.learn_many(MIXED_GRID)

    reference = [[_freeze(r) for r in member] for member in run(None)]
    plan = make_plan()
    with ParallelExecutor(
        4,
        plan=ShardPlan(2),
        max_respawns=max_respawns,
        faults=plan,
        learn_fan_min_candidates=1,
    ) as executor:
        chaotic = [[_freeze(r) for r in member] for member in run(executor)]
        health = executor.health()
        injected = plan.injected
    assert chaotic == reference, label
    assert sum(injected.values()) > 0, label  # chaos really fired
    if injected["kills"]:
        assert health["worker_crashes"] >= 1
    if injected["alloc_failures"]:
        assert health["slab_fallbacks"] >= 1


def test_fan_and_serial_lockstep_agree():
    """The fanned rescore path (forced via ``learn_fan_min_candidates=1``)
    and the serial lockstep produce identical results and populate the
    per-phase timing buckets satellites surface in ``health()``."""
    n = 96
    member_values = _member_values(n, 2, 9)

    def run(executor):
        fleet = HistogramFleet(
            [ArraySource(values, n) for values in member_values],
            n,
            rngs=[1, 2],
            engine="lockstep",
            learn_budget=LEARN_PARAMS,
            executor=executor,
        )
        return fleet.learn_many(MIXED_GRID)

    serial = [[_freeze(r) for r in member] for member in run(None)]
    with ParallelExecutor(
        2, plan=ShardPlan(2), learn_fan_min_candidates=1
    ) as executor:
        fanned = [[_freeze(r) for r in member] for member in run(executor)]
        timings = executor.health()["timings"]
    assert fanned == serial
    assert timings["rescore"] > 0.0
    assert timings["argmin"] > 0.0
    assert timings["commit"] > 0.0
    assert timings["compile"] > 0.0
