"""Equivalence of the incremental greedy engine against the full rescorer.

The incremental engine (``engine="incremental"``) rescores only the
candidates whose span intersects the segments changed by the last commit;
``engine="full"`` rescores every candidate every round through the same
code path.  The contract is *byte*-identity: same chosen intervals, same
estimated costs, same traces — not just statistical agreement.  These
tests pin that contract on one-shot learns, on session grids, and (the
property at the heart of the design) on the cached candidate totals
themselves after every single round.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import HistogramSession
from repro.core.greedy import (
    _GreedyEngine,
    compile_greedy_sketches,
    draw_greedy_samples,
    learn_histogram,
)
from repro.core.params import GreedyParams
from repro.distributions import families
from repro.errors import InvalidParameterError

GRID = [(2, 0.3), (4, 0.25), (6, 0.2)]
PARAMS = GreedyParams(
    weight_sample_size=1_500, collision_sets=5, collision_set_size=600, rounds=6
)


def assert_results_identical(a, b):
    """Field-by-field byte-identity of two LearnResults."""
    assert a.histogram == b.histogram
    assert a.filled_histogram == b.filled_histogram
    assert a.priority_histogram.to_tiling() == b.priority_histogram.to_tiling()
    assert a.rounds == b.rounds  # exact float equality on costs/weights
    assert a.method == b.method
    assert a.num_candidates == b.num_candidates
    assert a.samples_used == b.samples_used


class TestLearnEquivalence:
    """One-shot learns: incremental == full, bit for bit."""

    @pytest.mark.parametrize("method", ["fast", "exhaustive"])
    @pytest.mark.parametrize("seed", [1, 17, 92])
    def test_fresh_draw_equivalence(self, method, seed):
        dist = families.zipf(128, 1.0)
        incremental = learn_histogram(
            dist, 128, 4, 0.25, method=method, scale=0.05, rng=seed
        )
        full = learn_histogram(
            dist, 128, 4, 0.25, method=method, engine="full", scale=0.05, rng=seed
        )
        assert_results_identical(incremental, full)

    @pytest.mark.parametrize("method", ["fast", "exhaustive"])
    def test_structured_distribution(self, method):
        dist = families.random_tiling_histogram(96, 5, rng=3, min_piece=4)
        incremental = learn_histogram(
            dist, 96, 5, 0.3, method=method, params=PARAMS, rng=11
        )
        full = learn_histogram(
            dist, 96, 5, 0.3, method=method, engine="full", params=PARAMS, rng=11
        )
        assert_results_identical(incremental, full)

    def test_invalid_engine_rejected(self):
        with pytest.raises(InvalidParameterError):
            learn_histogram(
                families.uniform(16), 16, 2, 0.5, engine="magic", params=PARAMS, rng=1
            )


class TestSessionEquivalence:
    """A (k, eps) grid through HistogramSession: engines agree per point."""

    @pytest.mark.parametrize("method", ["fast", "exhaustive"])
    def test_learn_many_grid(self, method):
        dist = families.zipf(128, 1.0)
        inc_session = HistogramSession(
            dist, 128, rng=5, method=method, learn_budget=PARAMS
        )
        full_session = HistogramSession(
            dist, 128, rng=5, method=method, engine="full", learn_budget=PARAMS
        )
        for a, b in zip(inc_session.learn_many(GRID), full_session.learn_many(GRID)):
            assert_results_identical(a, b)

    def test_engine_override_per_call(self):
        dist = families.zipf(64, 1.0)
        session = HistogramSession(dist, 64, rng=2, learn_budget=PARAMS)
        a = session.learn(3, 0.3)
        b = session.learn(3, 0.3, engine="full")
        assert_results_identical(a, b)


def _lockstep_engines(n, seed, method):
    """Two engines (incremental / full) over one compiled draw."""
    dist = families.random_tiling_histogram(n, 3, rng=seed % 7 + 1, min_piece=2)
    params = GreedyParams(
        weight_sample_size=400, collision_sets=3, collision_set_size=300, rounds=8
    )
    samples = draw_greedy_samples(dist, params, seed)
    compiled = compile_greedy_sketches(samples, n, method=method)
    engines = tuple(
        _GreedyEngine(
            compiled.candidates,
            compiled.weight_prefix,
            compiled.weight_set.size,
            compiled.pair_prefix_cols,
            compiled.pairs_per_set,
            compiled.self_costs,
            incremental=incremental,
        )
        for incremental in (True, False)
    )
    return engines, params.rounds


class TestCachedTotalsProperty:
    """After every round, cached candidate totals == full rescoring.

    This is the dirty-region invariant stated in README.md ("Incremental
    scoring"): a clean candidate's cached ``rel`` must be bitwise equal
    to what a from-scratch rescore would produce, round after round.
    """

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_cached_rel_matches_full_rescore(self, seed):
        n = 32 + seed % 3 * 16
        method = "exhaustive" if seed % 2 else "fast"
        (incremental, full), rounds = _lockstep_engines(n, seed, method)
        for _ in range(rounds):
            a = incremental.run_round()
            b = full.run_round()
            # Identical commit and trace (rescored differs by design).
            assert a.candidate_index == b.candidate_index
            assert a.cost == b.cost
            assert a.weight_estimate == b.weight_estimate
            assert a.chosen == b.chosen
            assert a.value == b.value
            assert a.neighbours == b.neighbours
            assert np.array_equal(incremental._rel, full._rel)
            assert incremental._seg_lo == full._seg_lo
            assert incremental._seg_hi == full._seg_hi
            assert incremental._seg_cost == full._seg_cost
            # The incremental engine never rescans more than the full one.
            assert a.rescored <= b.rescored

    def test_rescored_counts_shrink(self):
        """Steady-state rounds touch a strict subset of the candidates."""
        (incremental, _), rounds = _lockstep_engines(64, 5, "fast")
        reports = [incremental.run_round() for _ in range(rounds)]
        total = incremental._cands.size
        assert reports[0].rescored == total
        assert min(r.rescored for r in reports[1:]) < total
