"""Tests for repro.histograms.compact."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.histograms.compact import compact
from repro.histograms.tiling import TilingHistogram


def make_hist(values, widths):
    bounds = np.concatenate(([0], np.cumsum(widths)))
    return TilingHistogram(int(bounds[-1]), bounds, values)


class TestCompact:
    def test_noop_when_already_small(self):
        hist = TilingHistogram(8, [0, 4, 8], [0.1, 0.15])
        assert compact(hist, 2) is hist
        assert compact(hist, 5) is hist

    def test_merges_most_similar_pieces(self):
        hist = make_hist([0.1, 0.11, 0.5], [4, 4, 4])
        merged = compact(hist, 2)
        assert merged.num_pieces == 2
        assert list(merged.boundaries) == [0, 8, 12]

    def test_mass_preserved(self):
        hist = make_hist([0.05, 0.1, 0.02, 0.3], [4, 8, 2, 2])
        merged = compact(hist, 2)
        assert merged.total_mass() == pytest.approx(hist.total_mass())

    def test_boundaries_subset_of_input(self):
        hist = make_hist([0.2, 0.05, 0.4, 0.01, 0.3], [3, 5, 2, 6, 4])
        merged = compact(hist, 3)
        assert set(merged.boundaries).issubset(set(hist.boundaries))

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            compact(TilingHistogram.uniform(4), 0)

    def test_k1_is_global_mean(self):
        hist = make_hist([0.1, 0.3], [4, 4])
        merged = compact(hist, 1)
        assert merged.num_pieces == 1
        assert merged.values[0] == pytest.approx(0.2)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=3, max_size=7),
        st.integers(min_value=1, max_value=4),
    )
    def test_optimal_among_coarsenings(self, values, k):
        """The DP must beat every brute-force boundary subset."""
        widths = [2] * len(values)
        hist = make_hist(values, widths)
        k = min(k, hist.num_pieces)
        merged = compact(hist, k)
        dp_cost = float(((hist.to_pmf() - merged.to_pmf()) ** 2).sum())

        pmf = hist.to_pmf()
        internal = list(hist.boundaries[1:-1])
        best = np.inf
        for cuts in itertools.combinations(internal, k - 1):
            bounds = [0, *cuts, hist.n]
            cost = 0.0
            for a, b in zip(bounds[:-1], bounds[1:]):
                seg = pmf[a:b]
                cost += ((seg - seg.mean()) ** 2).sum()
            best = min(best, cost)
        assert dp_cost == pytest.approx(best, abs=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=1, allow_nan=False), min_size=3, max_size=10),
        st.integers(min_value=1, max_value=4),
    )
    def test_agrees_with_full_dp_on_exact_segments(self, weights, k):
        """compact(from_pmf(p), k) equals the element-level v-optimal DP:
        optimal l2 boundaries can always be placed at constant-run edges."""
        from repro.baselines.voptimal import voptimal_cost

        pmf = np.array(weights)
        pmf = pmf / pmf.sum()
        hist = TilingHistogram.from_pmf(pmf)
        k = min(k, len(weights))
        squeezed = compact(hist, k)
        compact_cost = float(((pmf - squeezed.to_pmf()) ** 2).sum())
        assert compact_cost == pytest.approx(
            voptimal_cost(pmf, k, norm="l2"), abs=1e-10
        )

    def test_learned_histogram_compaction(self):
        """End to end: compact a greedy output to exactly k pieces."""
        from repro.core.greedy import learn_histogram
        from repro.distributions import families
        from repro.distributions.distances import l2_distance_squared

        dist = families.random_tiling_histogram(128, 4, 7, min_piece=8)
        learned = learn_histogram(dist, 128, 4, 0.25, scale=0.05, rng=1)
        squeezed = compact(learned.filled_histogram, 4)
        assert squeezed.num_pieces <= 4
        # Compaction stays within the additive guarantee regime.
        assert l2_distance_squared(dist, squeezed) <= 8 * 0.25
