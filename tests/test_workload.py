"""The workload driver: determinism, skew, and trace structure.

The generator's contract is that a trace is a pure function of its
config — byte-identical across generators and calls
(:func:`repro.serving.trace_bytes`) — and that the three workload
structures it promises (Pareto-skewed popularity, refresh storms,
test→learn chains) actually show up in the events.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.serving import OPS, WorkloadConfig, WorkloadGenerator, trace_bytes

configs = st.builds(
    WorkloadConfig,
    streams=st.integers(min_value=1, max_value=12),
    requests=st.integers(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.sampled_from([64, 256, 1024]),
    alpha=st.floats(min_value=0.3, max_value=3.0, allow_nan=False),
    l1_fraction=st.floats(min_value=0.0, max_value=1.0),
    chain_after_test=st.floats(min_value=0.0, max_value=1.0),
    requery_bias=st.floats(min_value=0.0, max_value=1.0),
    burst_every=st.integers(min_value=1, max_value=64),
    burst_len=st.integers(min_value=0, max_value=24),
    ingest_batch=st.integers(min_value=1, max_value=32),
    warmup=st.booleans(),
)


class TestDeterminism:
    @given(config=configs)
    @settings(max_examples=40, deadline=None)
    def test_equal_configs_give_byte_identical_traces(self, config):
        first = WorkloadGenerator(config).trace()
        second = WorkloadGenerator(config).trace()
        assert trace_bytes(first) == trace_bytes(second)

    @given(config=configs)
    @settings(max_examples=20, deadline=None)
    def test_trace_is_idempotent_per_generator(self, config):
        generator = WorkloadGenerator(config)
        assert trace_bytes(generator.trace()) == trace_bytes(generator.trace())

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(WorkloadConfig(streams=8, requests=64, seed=0))
        b = WorkloadGenerator(WorkloadConfig(streams=8, requests=64, seed=1))
        assert trace_bytes(a.trace()) != trace_bytes(b.trace())


class TestStructure:
    @given(config=configs)
    @settings(max_examples=40, deadline=None)
    def test_trace_shape_is_valid(self, config):
        generator = WorkloadGenerator(config)
        names = set(generator.stream_names)
        trace = generator.trace()
        if config.warmup:
            # Warmup prefix: one ingest per stream, member order, t=0.
            prefix = trace[: config.streams]
            assert [r.stream for _, r in prefix] == generator.stream_names
            assert all(r.op == "ingest" and at == 0.0 for at, r in prefix)
        assert len(trace) >= config.requests + (
            config.streams if config.warmup else 0
        )
        allowed = {op for op, weight in config.mix if weight > 0} | {"learn"}
        last_at = 0.0
        for at_us, request in trace:
            assert at_us >= last_at  # arrival times never go backwards
            last_at = at_us
            assert request.op in OPS and request.op in allowed
            assert request.stream in names
            if request.op == "ingest":
                values = np.asarray(request.values)
                assert values.dtype.kind == "i"
                assert values.size > 0
                assert 0 <= values.min() and values.max() < config.n
            elif request.op == "selectivity":
                assert 0 <= request.start < request.stop <= config.n
            elif request.op in ("test", "min_k"):
                assert request.norm in ("l1", "l2")

    def test_chains_always_fire_at_probability_one(self):
        config = WorkloadConfig(
            streams=6,
            requests=80,
            seed=2,
            mix=(("ingest", 1.0), ("test", 3.0)),
            chain_after_test=1.0,
            burst_len=0,
        )
        trace = WorkloadGenerator(config).trace()
        tests = 0
        for position, (at_us, request) in enumerate(trace):
            if request.op != "test":
                continue
            tests += 1
            chained_at, chained = trace[position + 1]
            assert chained.op == "learn"
            assert chained.stream == request.stream
            assert chained_at == at_us  # no gap inside a chain
        assert tests > 0

    def test_storms_open_with_an_ingest_wave(self):
        config = WorkloadConfig(
            streams=16,
            requests=96,
            seed=4,
            burst_every=48,
            burst_len=16,
            chain_after_test=0.0,
            warmup=False,
        )
        trace = WorkloadGenerator(config).trace()
        wave = config.burst_len // 2
        storm = trace[:wave]
        assert all(r.op == "ingest" for _, r in storm)
        cohort = [r.stream for _, r in storm]
        assert len(set(cohort)) == wave  # distinct streams per cohort
        probes = [r for _, r in trace[wave : config.burst_len]]
        assert all(r.op != "ingest" for r in probes)
        assert {r.stream for r in probes} <= set(cohort)


class TestSkew:
    def test_popularity_matches_the_pareto_law(self):
        generator = WorkloadGenerator(WorkloadConfig(streams=16, alpha=1.5))
        popularity = generator.popularity
        assert popularity.sum() == pytest.approx(1.0)
        ranked = np.sort(popularity)[::-1]
        expected = (np.arange(16) + 1.0) ** -1.5
        expected /= expected.sum()
        assert np.allclose(ranked, expected)

    def test_empirical_draws_track_popularity(self):
        # Outside storms every request draws its stream from the
        # popularity vector; with chains and storms off the empirical
        # frequencies must converge on it.
        config = WorkloadConfig(
            streams=8,
            requests=6000,
            seed=9,
            alpha=1.3,
            burst_len=0,
            chain_after_test=0.0,
            warmup=False,
        )
        generator = WorkloadGenerator(config)
        trace = generator.trace()
        names = generator.stream_names
        counts = np.zeros(config.streams)
        for _, request in trace:
            counts[names.index(request.stream)] += 1
        empirical = counts / counts.sum()
        l1 = float(np.abs(empirical - generator.popularity).sum())
        assert l1 < 0.06, l1  # ~1/sqrt(6000) per-stream noise, summed

    @given(alpha=st.floats(min_value=0.5, max_value=2.5), seed=st.integers(0, 999))
    @settings(max_examples=25, deadline=None)
    def test_hot_stream_dominates_under_any_alpha(self, alpha, seed):
        config = WorkloadConfig(
            streams=6,
            requests=600,
            seed=seed,
            alpha=alpha,
            burst_len=0,
            chain_after_test=0.0,
            warmup=False,
        )
        generator = WorkloadGenerator(config)
        names = generator.stream_names
        counts = np.zeros(config.streams)
        for _, request in generator.trace():
            counts[names.index(request.stream)] += 1
        # Hottest vs coldest is a many-sigma gap at every alpha in
        # range; hottest vs *second* hottest would flake at low alpha.
        hottest = int(np.argmax(generator.popularity))
        coldest = int(np.argmin(generator.popularity))
        assert counts[hottest] > counts[coldest]


class TestRequeryBias:
    _MIX = (("ingest", 1.0), ("test", 2.0), ("selectivity", 2.0), ("min_k", 1.0))

    def _config(self, bias: float) -> WorkloadConfig:
        return WorkloadConfig(
            streams=8,
            requests=400,
            seed=7,
            mix=self._MIX,
            chain_after_test=0.0,
            burst_len=0,
            warmup=False,
            requery_bias=bias,
        )

    @staticmethod
    def _repeat_fraction(trace) -> float:
        # Selectivity probes only: fresh ranges are (nearly) unique, so
        # a repeated (stream, cache_key) is a replay, not a collision.
        probes = [
            (r.stream, r.cache_key)
            for _, r in trace
            if r.op == "selectivity"
        ]
        seen: set = set()
        repeats = 0
        for key in probes:
            if key in seen:
                repeats += 1
            seen.add(key)
        return repeats / max(len(probes), 1)

    def test_bias_raises_repeat_probe_fraction(self):
        cold = WorkloadGenerator(self._config(0.0)).trace()
        hot = WorkloadGenerator(self._config(0.9)).trace()
        assert self._repeat_fraction(hot) > self._repeat_fraction(cold) + 0.3

    def test_replays_are_verbatim_copies(self):
        # Under full bias every probe after the first replays a recent
        # one: each probe is byte-equal to some earlier probe.
        trace = WorkloadGenerator(self._config(1.0)).trace()
        probes = [r for _, r in trace if r.op != "ingest"]
        seen: set = set()
        fresh = 0
        for request in probes:
            if request not in seen:
                fresh += 1
            seen.add(request)
        # The first probe is always fresh; replays dominate thereafter.
        assert fresh < len(probes) / 2

    @given(bias=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_biased_traces_stay_deterministic(self, bias, seed):
        config = WorkloadConfig(
            streams=6, requests=48, seed=seed, requery_bias=bias
        )
        assert trace_bytes(WorkloadGenerator(config).trace()) == trace_bytes(
            WorkloadGenerator(config).trace()
        )

    def test_zero_bias_matches_the_default_config(self):
        # requery_bias=0.0 is the default and draws nothing from the
        # rng: a config that never mentions the knob and one pinning it
        # to zero emit byte-identical traces.
        base = WorkloadConfig(streams=8, requests=96, seed=3)
        pinned = WorkloadConfig(streams=8, requests=96, seed=3, requery_bias=0.0)
        assert trace_bytes(WorkloadGenerator(base).trace()) == trace_bytes(
            WorkloadGenerator(pinned).trace()
        )


class TestMixEdges:
    def test_ingest_only_mix_storms_fall_back_to_the_full_mix(self):
        config = WorkloadConfig(
            streams=4,
            requests=40,
            seed=1,
            mix=(("ingest", 1.0),),
            burst_every=16,
            burst_len=8,
            warmup=False,
        )
        trace = WorkloadGenerator(config).trace()
        assert len(trace) == 40
        assert all(r.op == "ingest" for _, r in trace)


class TestConfigValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(streams=0)
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(requests=-1)
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(alpha=0.0)
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(mix=(("transmogrify", 1.0),))
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(mix=(("test", 0.0),))
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(requery_bias=-0.1)
        with pytest.raises(InvalidParameterError):
            WorkloadConfig(requery_bias=1.5)
