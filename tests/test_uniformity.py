"""Tests for repro.core.uniformity ([GR00] collision tester)."""

from __future__ import annotations

import numpy as np
import pytest

# Alias the paper-named ``test*`` function so pytest does not collect it.
from repro.core.uniformity import test_uniformity as uniformity_test
from repro.core.uniformity import uniformity_sample_size
from repro.distributions import families
from repro.errors import InvalidParameterError


class TestSampleSize:
    def test_sqrt_n_scaling(self):
        small = uniformity_sample_size(100, 0.25)
        large = uniformity_sample_size(10_000, 0.25)
        assert large == pytest.approx(10 * small, rel=0.05)

    def test_epsilon_scaling(self):
        assert uniformity_sample_size(100, 0.125) == pytest.approx(
            4 * uniformity_sample_size(100, 0.25), rel=0.05
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            uniformity_sample_size(0, 0.25)
        with pytest.raises(InvalidParameterError):
            uniformity_sample_size(100, 2.0)


class TestUniformityTester:
    def test_accepts_uniform(self):
        result = uniformity_test(families.uniform(1024), 1024, 0.25, rng=3)
        assert result.accepted

    def test_rejects_half_support(self):
        """The classical hard instance: uniform on a random half."""
        pmf = np.zeros(1024)
        rng = np.random.default_rng(5)
        support = rng.choice(1024, size=512, replace=False)
        pmf[support] = 1 / 512
        from repro.distributions.base import DiscreteDistribution

        result = uniformity_test(DiscreteDistribution(pmf), 1024, 0.5, rng=4)
        assert not result.accepted

    def test_rejects_zipf(self):
        result = uniformity_test(families.zipf(1024, 1.0), 1024, 0.3, rng=6)
        assert not result.accepted

    def test_statistic_near_inverse_n(self):
        result = uniformity_test(families.uniform(512), 512, 0.25, rng=7)
        assert result.statistic == pytest.approx(1 / 512, rel=0.3)

    def test_threshold_formula(self):
        result = uniformity_test(families.uniform(512), 512, 0.2, rng=8)
        assert result.threshold == pytest.approx((1 + 0.2**2 / 2) / 512)

    def test_acceptance_rate(self):
        accepts = sum(
            uniformity_test(families.uniform(256), 256, 0.3, rng=10 + i).accepted
            for i in range(10)
        )
        assert accepts >= 7

    def test_rejection_rate(self):
        saw = families.sawtooth(256, low=0.0, high=2.0)
        rejects = sum(
            not uniformity_test(saw, 256, 0.3, rng=30 + i).accepted
            for i in range(10)
        )
        assert rejects >= 7

    def test_scale_validation(self):
        with pytest.raises(InvalidParameterError):
            uniformity_test(families.uniform(16), 16, 0.25, scale=2.0)

    def test_metadata(self):
        result = uniformity_test(families.uniform(256), 256, 0.25, rng=9)
        assert result.samples_used >= 16
        assert result.collisions >= 0
        assert result.epsilon == 0.25


class TestUniformityOnSketch:
    """Direct coverage of the on-sketch half (previously only reached
    through the draw-and-run composition and the engine suites)."""

    def test_matches_one_shot_composition(self):
        """test_uniformity == CollisionSketch + test_uniformity_on_sketch."""
        import math

        from repro.core.uniformity import test_uniformity_on_sketch
        from repro.samples.collision import CollisionSketch
        from repro.utils.rng import as_rng

        dist, n, eps = families.zipf(256, 1.0), 256, 0.25
        samples = dist.sample(
            max(16, math.ceil(uniformity_sample_size(n, eps))), as_rng(5)
        )
        via_sketch = test_uniformity_on_sketch(CollisionSketch(samples, n), eps)
        one_shot = uniformity_test(dist, n, eps, rng=5)
        assert via_sketch == one_shot

    def test_pure_in_sketch(self):
        """Repeated calls (and distinct epsilons) reuse one build."""
        from repro.core.uniformity import test_uniformity_on_sketch
        from repro.samples.collision import CollisionSketch

        samples = families.uniform(128).sample(5_000, np.random.default_rng(1))
        sketch = CollisionSketch(samples, 128)
        first = test_uniformity_on_sketch(sketch, 0.25)
        assert test_uniformity_on_sketch(sketch, 0.25) == first
        assert first.accepted
        assert first.samples_used == 5_000
        assert first.collisions == sketch.total_collisions
        looser = test_uniformity_on_sketch(sketch, 0.5)
        assert looser.threshold > first.threshold
        assert looser.statistic == first.statistic  # same sketch, same stat

    def test_rejects_spiky_sketch(self):
        from repro.core.uniformity import test_uniformity_on_sketch
        from repro.samples.collision import CollisionSketch

        samples = families.spikes(128, 4).sample(5_000, np.random.default_rng(2))
        result = test_uniformity_on_sketch(CollisionSketch(samples, 128), 0.25)
        assert not result.accepted
        assert result.statistic > result.threshold

    def test_validation(self):
        from repro.core.uniformity import test_uniformity_on_sketch
        from repro.errors import InsufficientSamplesError
        from repro.samples.collision import CollisionSketch

        sketch = CollisionSketch(np.arange(16), 16)
        with pytest.raises(InvalidParameterError):
            test_uniformity_on_sketch(sketch, 0.0)
        with pytest.raises(InvalidParameterError):
            test_uniformity_on_sketch(sketch, 1.0)
        with pytest.raises(InsufficientSamplesError):
            test_uniformity_on_sketch(CollisionSketch(np.array([3]), 16), 0.25)
