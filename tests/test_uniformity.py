"""Tests for repro.core.uniformity ([GR00] collision tester)."""

from __future__ import annotations

import numpy as np
import pytest

# Alias the paper-named ``test*`` function so pytest does not collect it.
from repro.core.uniformity import test_uniformity as uniformity_test
from repro.core.uniformity import uniformity_sample_size
from repro.distributions import families
from repro.errors import InvalidParameterError


class TestSampleSize:
    def test_sqrt_n_scaling(self):
        small = uniformity_sample_size(100, 0.25)
        large = uniformity_sample_size(10_000, 0.25)
        assert large == pytest.approx(10 * small, rel=0.05)

    def test_epsilon_scaling(self):
        assert uniformity_sample_size(100, 0.125) == pytest.approx(
            4 * uniformity_sample_size(100, 0.25), rel=0.05
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            uniformity_sample_size(0, 0.25)
        with pytest.raises(InvalidParameterError):
            uniformity_sample_size(100, 2.0)


class TestUniformityTester:
    def test_accepts_uniform(self):
        result = uniformity_test(families.uniform(1024), 1024, 0.25, rng=3)
        assert result.accepted

    def test_rejects_half_support(self):
        """The classical hard instance: uniform on a random half."""
        pmf = np.zeros(1024)
        rng = np.random.default_rng(5)
        support = rng.choice(1024, size=512, replace=False)
        pmf[support] = 1 / 512
        from repro.distributions.base import DiscreteDistribution

        result = uniformity_test(DiscreteDistribution(pmf), 1024, 0.5, rng=4)
        assert not result.accepted

    def test_rejects_zipf(self):
        result = uniformity_test(families.zipf(1024, 1.0), 1024, 0.3, rng=6)
        assert not result.accepted

    def test_statistic_near_inverse_n(self):
        result = uniformity_test(families.uniform(512), 512, 0.25, rng=7)
        assert result.statistic == pytest.approx(1 / 512, rel=0.3)

    def test_threshold_formula(self):
        result = uniformity_test(families.uniform(512), 512, 0.2, rng=8)
        assert result.threshold == pytest.approx((1 + 0.2**2 / 2) / 512)

    def test_acceptance_rate(self):
        accepts = sum(
            uniformity_test(families.uniform(256), 256, 0.3, rng=10 + i).accepted
            for i in range(10)
        )
        assert accepts >= 7

    def test_rejection_rate(self):
        saw = families.sawtooth(256, low=0.0, high=2.0)
        rejects = sum(
            not uniformity_test(saw, 256, 0.3, rng=30 + i).accepted
            for i in range(10)
        )
        assert rejects >= 7

    def test_scale_validation(self):
        with pytest.raises(InvalidParameterError):
            uniformity_test(families.uniform(16), 16, 0.25, scale=2.0)

    def test_metadata(self):
        result = uniformity_test(families.uniform(256), 256, 0.25, rng=9)
        assert result.samples_used >= 16
        assert result.collisions >= 0
        assert result.epsilon == 0.25
