"""Tests for repro.histograms.tiling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidHistogramError
from repro.histograms.intervals import Interval
from repro.histograms.tiling import TilingHistogram


@st.composite
def tilings(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    cuts = draw(
        st.lists(st.integers(min_value=1, max_value=max(n - 1, 1)), max_size=6)
    )
    boundaries = sorted({0, n, *[c for c in cuts if c < n]})
    values = [
        draw(st.floats(min_value=0, max_value=1, allow_nan=False))
        for _ in range(len(boundaries) - 1)
    ]
    return TilingHistogram(n, boundaries, values)


class TestConstruction:
    def test_basic(self):
        hist = TilingHistogram(10, [0, 4, 10], [0.1, 0.1 / 6])
        assert hist.n == 10 and hist.num_pieces == 2

    def test_uniform(self):
        hist = TilingHistogram.uniform(8)
        assert hist.num_pieces == 1
        assert hist.is_distribution()

    def test_bad_boundaries_raise(self):
        with pytest.raises(InvalidHistogramError):
            TilingHistogram(10, [0, 5, 5, 10], [0.1, 0.0, 0.0])
        with pytest.raises(InvalidHistogramError):
            TilingHistogram(10, [1, 10], [0.1])
        with pytest.raises(InvalidHistogramError):
            TilingHistogram(10, [0, 9], [0.1])

    def test_negative_value_raises(self):
        with pytest.raises(InvalidHistogramError):
            TilingHistogram(4, [0, 4], [-0.1])

    def test_wrong_value_count_raises(self):
        with pytest.raises(InvalidHistogramError):
            TilingHistogram(4, [0, 2, 4], [0.25])

    def test_from_pieces(self):
        hist = TilingHistogram.from_pieces(
            6, [(Interval(3, 6), 0.1), (Interval(0, 3), 0.2)]
        )
        assert np.array_equal(hist.boundaries, [0, 3, 6])
        assert np.allclose(hist.values, [0.2, 0.1])

    def test_from_pieces_gap_raises(self):
        with pytest.raises(InvalidHistogramError):
            TilingHistogram.from_pieces(6, [(Interval(0, 2), 0.1), (Interval(3, 6), 0.1)])

    def test_from_pieces_overlap_raises(self):
        with pytest.raises(InvalidHistogramError):
            TilingHistogram.from_pieces(6, [(Interval(0, 4), 0.1), (Interval(3, 6), 0.1)])

    def test_from_pieces_short_raises(self):
        with pytest.raises(InvalidHistogramError):
            TilingHistogram.from_pieces(6, [(Interval(0, 4), 0.1)])

    def test_from_pmf_merges_runs(self):
        pmf = np.array([0.1, 0.1, 0.2, 0.2, 0.4])
        hist = TilingHistogram.from_pmf(pmf)
        assert hist.num_pieces == 3
        assert np.allclose(hist.to_pmf(), pmf)


class TestEvaluation:
    def test_value_at_scalar(self):
        hist = TilingHistogram(6, [0, 2, 6], [0.3, 0.1])
        assert hist.value_at(0) == 0.3
        assert hist.value_at(1) == 0.3
        assert hist.value_at(2) == 0.1
        assert hist.value_at(5) == 0.1

    def test_value_at_array(self):
        hist = TilingHistogram(6, [0, 2, 6], [0.3, 0.1])
        assert np.allclose(hist.value_at(np.array([0, 2, 5])), [0.3, 0.1, 0.1])

    def test_value_at_out_of_domain_raises(self):
        hist = TilingHistogram.uniform(6)
        with pytest.raises(InvalidHistogramError):
            hist.value_at(6)
        with pytest.raises(InvalidHistogramError):
            hist.value_at(-1)

    def test_to_pmf_roundtrip(self):
        hist = TilingHistogram(5, [0, 2, 5], [0.2, 0.2])
        assert np.allclose(hist.to_pmf(), [0.2, 0.2, 0.2, 0.2, 0.2])

    def test_total_mass(self):
        hist = TilingHistogram(10, [0, 5, 10], [0.1, 0.1])
        assert hist.total_mass() == pytest.approx(1.0)
        assert hist.is_distribution()

    def test_normalized(self):
        hist = TilingHistogram(4, [0, 4], [0.5])  # mass 2
        assert hist.normalized().is_distribution()

    def test_normalize_zero_mass_raises(self):
        with pytest.raises(InvalidHistogramError):
            TilingHistogram(4, [0, 4], [0.0]).normalized()

    def test_range_mass(self):
        hist = TilingHistogram(10, [0, 5, 10], [0.1, 0.1])
        assert hist.range_mass(Interval(0, 10)) == pytest.approx(1.0)
        assert hist.range_mass(Interval(2, 7)) == pytest.approx(0.5)

    def test_range_mass_beyond_domain_raises(self):
        with pytest.raises(InvalidHistogramError):
            TilingHistogram.uniform(4).range_mass(Interval(0, 5))


class TestStructure:
    def test_intervals_iteration(self):
        hist = TilingHistogram(6, [0, 2, 6], [0.3, 0.1])
        assert list(hist.intervals()) == [Interval(0, 2), Interval(2, 6)]

    def test_pieces_iteration(self):
        hist = TilingHistogram(6, [0, 2, 6], [0.3, 0.1])
        pieces = list(hist.pieces())
        assert pieces[0] == (Interval(0, 2), 0.3)

    def test_canonical_merges_equal_values(self):
        hist = TilingHistogram(6, [0, 2, 4, 6], [0.1, 0.1, 0.2])
        canon = hist.canonical()
        assert canon.num_pieces == 2
        assert np.allclose(canon.to_pmf(), hist.to_pmf())

    def test_equality_and_hash(self):
        a = TilingHistogram(4, [0, 2, 4], [0.3, 0.2])
        b = TilingHistogram(4, [0, 2, 4], [0.3, 0.2])
        assert a == b and hash(a) == hash(b)
        assert a != TilingHistogram(4, [0, 4], [0.25])

    def test_boundaries_read_only(self):
        hist = TilingHistogram.uniform(4)
        with pytest.raises(ValueError):
            hist.boundaries[0] = 1


class TestTilingProperties:
    @given(tilings())
    def test_pmf_roundtrip_preserves_values(self, hist):
        rebuilt = TilingHistogram.from_pmf(hist.to_pmf())
        assert np.allclose(rebuilt.to_pmf(), hist.to_pmf())
        assert rebuilt.num_pieces <= hist.num_pieces

    @given(tilings())
    def test_range_mass_matches_pmf_sum(self, hist):
        pmf = hist.to_pmf()
        for start in range(0, hist.n, max(hist.n // 4, 1)):
            for stop in range(start + 1, hist.n + 1, max(hist.n // 4, 1)):
                expected = pmf[start:stop].sum()
                assert hist.range_mass(Interval(start, stop)) == pytest.approx(
                    expected, abs=1e-12
                )

    @given(tilings())
    def test_canonical_is_minimal(self, hist):
        canon = hist.canonical()
        values = canon.values
        assert not np.any(values[:-1] == values[1:])
