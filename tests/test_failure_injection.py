"""Failure injection: malformed inputs must fail loudly and cleanly.

Every failure should surface as a :class:`repro.ReproError` subclass (or
an explicit TypeError for wrong types), never as a silent wrong answer or
a numpy broadcast error deep in the stack.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro
from repro.api import ArraySource, HistogramFleet, HistogramSession
from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams, TesterParams
from repro.core.tester import test_k_histogram_l1 as khist_test_l1
from repro.core.tester import test_k_histogram_l2 as khist_test_l2
from repro.distributions import families
from repro.errors import InjectedFaultError, ReproError
from repro.serving import HistogramService, Request, ServiceConfig
from repro.utils.faults import FaultPlan

TINY = GreedyParams(
    weight_sample_size=100, collision_sets=3, collision_set_size=100, rounds=2
)
TEST_TINY = TesterParams(num_sets=3, set_size=100)


class BrokenSource:
    """A sampler that emits values outside the declared domain."""

    def __init__(self, n: int) -> None:
        self._n = n

    def sample(self, size, rng=None):
        return np.full(size, self._n + 5, dtype=np.int64)


class NegativeSource:
    def sample(self, size, rng=None):
        return np.full(size, -1, dtype=np.int64)


class TestLearnerInjection:
    def test_out_of_domain_source_raises(self):
        with pytest.raises(ReproError):
            learn_histogram(BrokenSource(16), 16, 2, 0.3, params=TINY, rng=1)

    def test_negative_sample_source_raises(self):
        with pytest.raises(ReproError):
            learn_histogram(NegativeSource(), 16, 2, 0.3, params=TINY, rng=1)

    def test_bad_epsilon_raises(self):
        with pytest.raises(ReproError):
            learn_histogram(families.uniform(16), 16, 2, 0.0, rng=1)
        with pytest.raises(ReproError):
            learn_histogram(families.uniform(16), 16, 2, 1.0, rng=1)

    def test_bad_k_raises(self):
        with pytest.raises(ReproError):
            learn_histogram(families.uniform(16), 16, 0, 0.3, rng=1)

    def test_source_without_sample_method_raises(self):
        with pytest.raises(AttributeError):
            learn_histogram(object(), 16, 2, 0.3, params=TINY, rng=1)


class TestTesterInjection:
    def test_out_of_domain_source_raises(self):
        params = TesterParams(num_sets=3, set_size=100)
        with pytest.raises(ReproError):
            khist_test_l2(BrokenSource(16), 16, 2, 0.3, params=params, rng=1)
        with pytest.raises(ReproError):
            khist_test_l1(BrokenSource(16), 16, 2, 0.3, params=params, rng=1)

    def test_k_exceeding_n_raises(self):
        with pytest.raises(ReproError):
            khist_test_l2(families.uniform(8), 8, 9, 0.3, rng=1)

    def test_bad_params_raise(self):
        with pytest.raises(ReproError):
            TesterParams(num_sets=3, set_size=1)


class TestDistributionInjection:
    def test_nan_pmf(self):
        with pytest.raises(ReproError):
            repro.DiscreteDistribution(np.array([np.nan, 1.0]))

    def test_inf_pmf(self):
        with pytest.raises(ReproError):
            repro.DiscreteDistribution(np.array([np.inf, 1.0]))

    def test_all_zero_weights(self):
        with pytest.raises(ReproError):
            repro.DiscreteDistribution.from_weights(np.zeros(4))

    def test_negative_weights(self):
        with pytest.raises(ReproError):
            repro.DiscreteDistribution.from_weights(np.array([1.0, -0.5]))


class TestHistogramInjection:
    def test_unsorted_boundaries(self):
        with pytest.raises(ReproError):
            repro.TilingHistogram(10, [0, 7, 3, 10], [0.1, 0.1, 0.1])

    def test_nan_values(self):
        with pytest.raises(ReproError):
            repro.TilingHistogram(10, [0, 10], [np.nan])

    def test_interval_beyond_domain_in_priority(self):
        hist = repro.PriorityHistogram(4)
        with pytest.raises(ReproError):
            hist.add(repro.Interval(0, 5), 0.1)

    def test_compact_invalid_k(self):
        with pytest.raises(ReproError):
            repro.compact(repro.TilingHistogram.uniform(4), 0)


def _member_arrays(n: int = 32, members: int = 3) -> "list[np.ndarray]":
    base = families.random_tiling_histogram(n, 3, rng=5, min_piece=4)
    return [base.sample(4_000, np.random.default_rng(100 + f)) for f in range(members)]


class TestSessionInjection:
    """Malformed sources fail cleanly through the session driver too —
    the API layer adds no bare numpy errors of its own."""

    def test_broken_source_learn_raises(self):
        session = HistogramSession(BrokenSource(16), 16, rng=1, learn_budget=TINY)
        with pytest.raises(ReproError):
            session.learn(2, 0.3)

    def test_injected_draw_fault_is_a_repro_error(self):
        # The chaos layer's source seam dies like a real source: the
        # scheduled draw raises InjectedFaultError — a ReproError, so
        # every existing handler already contains it.
        source = FaultPlan(fail_draw_at=[0]).wrap_source(families.uniform(16))
        session = HistogramSession(source, 16, rng=1, test_budget=TEST_TINY)
        with pytest.raises(InjectedFaultError, match="draw 0"):
            session.test_l2(2, 0.3)

    def test_bad_parameters_raise(self):
        session = HistogramSession(families.uniform(16), 16, rng=1, learn_budget=TINY)
        with pytest.raises(ReproError):
            session.learn(0, 0.3)


class TestFleetInjection:
    def test_faulty_member_fails_the_fleet_op_cleanly(self):
        arrays = _member_arrays()
        sources: list = [ArraySource(values, 32) for values in arrays]
        sources[1] = FaultPlan(fail_draw_at=[0]).wrap_source(sources[1])
        fleet = HistogramFleet(sources, 32, rngs=[0, 1, 2], test_budget=TEST_TINY)
        with pytest.raises(InjectedFaultError):
            fleet.test_l2(2, 0.3)

    def test_broken_member_source_raises(self):
        arrays = _member_arrays()
        sources = [ArraySource(arrays[0], 32), BrokenSource(32)]
        fleet = HistogramFleet(sources, 32, rngs=[0, 1], learn_budget=TINY)
        with pytest.raises(ReproError):
            fleet.learn(2, 0.3)

    def test_rngs_length_mismatch_raises(self):
        sources = [ArraySource(values, 32) for values in _member_arrays(members=2)]
        with pytest.raises(ReproError):
            HistogramFleet(sources, 32, rngs=[0, 1, 2])


class TestServiceInjection:
    """Failures inside the serving stack become error Responses — the
    collector loop survives, and the stream keeps serving afterwards."""

    @staticmethod
    def _service() -> HistogramService:
        return HistogramService(
            ["s0", "s1"],
            64,
            2,
            0.3,
            config=ServiceConfig(max_batch=4, max_linger_us=0.0),
            reservoir_capacity=64,
            rng=5,
        )

    def test_injected_fault_maps_to_taxonomy_code_and_service_survives(self):
        async def run():
            service = self._service()
            async with service:
                assert (await service.submit(Request.ingest("s0", list(range(64))))).ok

                def boom(*args, **kwargs):
                    raise InjectedFaultError("injected: maintainer struck by the plan")

                # Shadow the bound op on the instance — the chaos seam
                # for execution-time faults the FaultPlan can't reach
                # from outside the event loop.
                service.maintainer.test = boom
                struck = await service.submit(Request.test("s0", 2, 0.3))
                del service.maintainer.test
                recovered = await service.submit(Request.test("s0", 2, 0.3))
                return struck, recovered

        struck, recovered = asyncio.run(run())
        assert struck.ok is False
        assert struck.error_code == "injected_fault"
        assert recovered.ok

    def test_malformed_ingest_fails_cleanly_and_stream_keeps_serving(self):
        async def run():
            service = self._service()
            async with service:
                assert (await service.submit(Request.ingest("s0", list(range(64))))).ok
                poisoned = await service.submit(Request.ingest("s0", [9_999]))
                after = await service.submit(Request.test("s0", 2, 0.3))
                return poisoned, after

        poisoned, after = asyncio.run(run())
        assert poisoned.ok is False
        assert poisoned.error_code == "invalid_parameter"
        assert after.ok


class TestErrorsAreCatchableAtOnce:
    def test_single_except_clause_suffices(self):
        """Library failures are one `except ReproError` away."""
        failures = 0
        attempts = [
            lambda: repro.DiscreteDistribution(np.array([0.5])),
            lambda: repro.TilingHistogram(4, [0, 5], [0.2]),
            lambda: repro.Interval(3, 3),
            lambda: repro.voptimal_histogram(np.ones(4) / 4, 9),
        ]
        for attempt in attempts:
            try:
                attempt()
            except ReproError:
                failures += 1
        assert failures == len(attempts)
