"""Failure injection: malformed inputs must fail loudly and cleanly.

Every failure should surface as a :class:`repro.ReproError` subclass (or
an explicit TypeError for wrong types), never as a silent wrong answer or
a numpy broadcast error deep in the stack.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams, TesterParams
from repro.core.tester import test_k_histogram_l1 as khist_test_l1
from repro.core.tester import test_k_histogram_l2 as khist_test_l2
from repro.distributions import families
from repro.errors import ReproError

TINY = GreedyParams(
    weight_sample_size=100, collision_sets=3, collision_set_size=100, rounds=2
)


class BrokenSource:
    """A sampler that emits values outside the declared domain."""

    def __init__(self, n: int) -> None:
        self._n = n

    def sample(self, size, rng=None):
        return np.full(size, self._n + 5, dtype=np.int64)


class NegativeSource:
    def sample(self, size, rng=None):
        return np.full(size, -1, dtype=np.int64)


class TestLearnerInjection:
    def test_out_of_domain_source_raises(self):
        with pytest.raises(ReproError):
            learn_histogram(BrokenSource(16), 16, 2, 0.3, params=TINY, rng=1)

    def test_negative_sample_source_raises(self):
        with pytest.raises(ReproError):
            learn_histogram(NegativeSource(), 16, 2, 0.3, params=TINY, rng=1)

    def test_bad_epsilon_raises(self):
        with pytest.raises(ReproError):
            learn_histogram(families.uniform(16), 16, 2, 0.0, rng=1)
        with pytest.raises(ReproError):
            learn_histogram(families.uniform(16), 16, 2, 1.0, rng=1)

    def test_bad_k_raises(self):
        with pytest.raises(ReproError):
            learn_histogram(families.uniform(16), 16, 0, 0.3, rng=1)

    def test_source_without_sample_method_raises(self):
        with pytest.raises(AttributeError):
            learn_histogram(object(), 16, 2, 0.3, params=TINY, rng=1)


class TestTesterInjection:
    def test_out_of_domain_source_raises(self):
        params = TesterParams(num_sets=3, set_size=100)
        with pytest.raises(ReproError):
            khist_test_l2(BrokenSource(16), 16, 2, 0.3, params=params, rng=1)
        with pytest.raises(ReproError):
            khist_test_l1(BrokenSource(16), 16, 2, 0.3, params=params, rng=1)

    def test_k_exceeding_n_raises(self):
        with pytest.raises(ReproError):
            khist_test_l2(families.uniform(8), 8, 9, 0.3, rng=1)

    def test_bad_params_raise(self):
        with pytest.raises(ReproError):
            TesterParams(num_sets=3, set_size=1)


class TestDistributionInjection:
    def test_nan_pmf(self):
        with pytest.raises(ReproError):
            repro.DiscreteDistribution(np.array([np.nan, 1.0]))

    def test_inf_pmf(self):
        with pytest.raises(ReproError):
            repro.DiscreteDistribution(np.array([np.inf, 1.0]))

    def test_all_zero_weights(self):
        with pytest.raises(ReproError):
            repro.DiscreteDistribution.from_weights(np.zeros(4))

    def test_negative_weights(self):
        with pytest.raises(ReproError):
            repro.DiscreteDistribution.from_weights(np.array([1.0, -0.5]))


class TestHistogramInjection:
    def test_unsorted_boundaries(self):
        with pytest.raises(ReproError):
            repro.TilingHistogram(10, [0, 7, 3, 10], [0.1, 0.1, 0.1])

    def test_nan_values(self):
        with pytest.raises(ReproError):
            repro.TilingHistogram(10, [0, 10], [np.nan])

    def test_interval_beyond_domain_in_priority(self):
        hist = repro.PriorityHistogram(4)
        with pytest.raises(ReproError):
            hist.add(repro.Interval(0, 5), 0.1)

    def test_compact_invalid_k(self):
        with pytest.raises(ReproError):
            repro.compact(repro.TilingHistogram.uniform(4), 0)


class TestErrorsAreCatchableAtOnce:
    def test_single_except_clause_suffices(self):
        """Library failures are one `except ReproError` away."""
        failures = 0
        attempts = [
            lambda: repro.DiscreteDistribution(np.array([0.5])),
            lambda: repro.TilingHistogram(4, [0, 5], [0.2]),
            lambda: repro.Interval(3, 3),
            lambda: repro.voptimal_histogram(np.ones(4) / 4, 9),
        ]
        for attempt in attempts:
            try:
                attempt()
            except ReproError:
                failures += 1
        assert failures == len(attempts)
