"""Tests for repro.datasets.synthetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (
    ages_column,
    product_popularity_column,
    salaries_column,
    sensor_readings_column,
)
from repro.distributions.empirical import EmpiricalDistribution
from repro.errors import InvalidParameterError

ALL_COLUMNS = [
    salaries_column,
    ages_column,
    product_popularity_column,
    sensor_readings_column,
]


@pytest.mark.parametrize("factory", ALL_COLUMNS)
def test_columns_in_domain(factory, rng):
    values, n = factory(5000, rng=rng)
    assert values.dtype == np.int64
    assert values.min() >= 0 and values.max() < n
    # usable as an empirical distribution
    EmpiricalDistribution(values, n)


@pytest.mark.parametrize("factory", ALL_COLUMNS)
def test_columns_deterministic(factory):
    a, _ = factory(1000, rng=7)
    b, _ = factory(1000, rng=7)
    assert np.array_equal(a, b)


@pytest.mark.parametrize("factory", ALL_COLUMNS)
def test_row_count(factory, rng):
    values, _ = factory(1234, rng=rng)
    assert values.shape == (1234,)


def test_salaries_right_skewed(rng):
    values, n = salaries_column(50_000, rng=rng)
    assert np.median(values) < values.mean()


def test_ages_bimodal(rng):
    values, n = ages_column(50_000, rng=rng)
    counts = np.bincount(values, minlength=n)
    # the trough between the modes is lower than both peaks
    young_peak = counts[20:35].max()
    older_peak = counts[42:58].max()
    trough = counts[36:41].min()
    assert trough < young_peak and trough < older_peak


def test_popularity_head_heavy(rng):
    values, n = product_popularity_column(50_000, rng=rng)
    counts = np.bincount(values, minlength=n)
    assert counts[:10].sum() > 0.2 * 50_000


def test_sensor_readings_histogram_like(rng):
    """The sensor column is a genuine coarse histogram."""
    values, n = sensor_readings_column(200_000, rng=rng)
    emp = EmpiricalDistribution(values, n)
    from repro.distributions.property_distance import distance_to_k_histogram

    # the floor is the empirical sampling noise, ~ n * sqrt(1/(n*rows)) ~ 0.06
    assert distance_to_k_histogram(emp, 4, norm="l1") < 0.09


def test_invalid_rows():
    with pytest.raises(InvalidParameterError):
        salaries_column(0)
    with pytest.raises(InvalidParameterError):
        product_popularity_column(10, exponent=0.0)
