"""Tests for repro.distributions.perturb and .empirical."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import families
from repro.distributions.distances import l1_distance
from repro.distributions.empirical import EmpiricalDistribution, empirical_pmf
from repro.distributions.perturb import mix, perturb_within_pieces
from repro.errors import InvalidDistributionError, InvalidParameterError


class TestPerturbWithinPieces:
    def test_zero_amplitude_is_identity(self):
        dist = families.uniform(16)
        assert np.allclose(perturb_within_pieces(dist, 0.0).pmf, dist.pmf)

    def test_preserves_total_mass(self):
        dist = families.zipf(17, 1.0)  # odd n exercises the tail element
        perturbed = perturb_within_pieces(dist, 0.3)
        assert perturbed.pmf.sum() == pytest.approx(1.0)

    def test_l1_distance_scales_with_amplitude_on_uniform(self):
        dist = families.uniform(64)
        for amplitude in (0.1, 0.2, 0.4):
            perturbed = perturb_within_pieces(dist, amplitude)
            assert l1_distance(dist, perturbed) == pytest.approx(amplitude)

    def test_monotone_in_amplitude(self):
        dist = families.random_tiling_histogram(64, 4, 5)
        distances = [
            l1_distance(dist, perturb_within_pieces(dist, a))
            for a in (0.05, 0.1, 0.2, 0.4)
        ]
        assert all(x < y for x, y in zip(distances, distances[1:]))

    def test_invalid_amplitude_raises(self):
        dist = families.uniform(8)
        with pytest.raises(InvalidParameterError):
            perturb_within_pieces(dist, 1.0)
        with pytest.raises(InvalidParameterError):
            perturb_within_pieces(dist, -0.1)

    def test_pairwise_mass_preserved(self):
        """Mass only moves between (2i, 2i+1) neighbours."""
        dist = families.zipf(16, 1.0)
        perturbed = perturb_within_pieces(dist, 0.5)
        pairs_before = dist.pmf[:16].reshape(8, 2).sum(axis=1)
        pairs_after = perturbed.pmf[:16].reshape(8, 2).sum(axis=1)
        assert np.allclose(pairs_before, pairs_after)


class TestMix:
    def test_endpoints(self):
        p = families.uniform(8)
        q = families.zipf(8, 1.0)
        assert np.allclose(mix(p, q, 0.0).pmf, p.pmf)
        assert np.allclose(mix(p, q, 1.0).pmf, q.pmf)

    def test_distance_linear_in_weight(self):
        p = families.uniform(8)
        q = families.zipf(8, 1.0)
        full = l1_distance(p, q)
        assert l1_distance(p, mix(p, q, 0.25)) == pytest.approx(0.25 * full)

    def test_domain_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            mix(families.uniform(8), families.uniform(9), 0.5)

    def test_invalid_weight_raises(self):
        with pytest.raises(InvalidParameterError):
            mix(families.uniform(8), families.uniform(8), 1.5)


class TestEmpirical:
    def test_empirical_pmf_counts(self):
        pmf = empirical_pmf(np.array([0, 0, 1, 3]), 4)
        assert np.allclose(pmf, [0.5, 0.25, 0.0, 0.25])

    def test_empty_raises(self):
        with pytest.raises(InvalidDistributionError):
            empirical_pmf(np.array([], dtype=np.int64), 4)

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidDistributionError):
            empirical_pmf(np.array([0, 4]), 4)

    def test_empirical_distribution_counts(self):
        dist = EmpiricalDistribution(np.array([0, 0, 1, 3]), 4)
        assert np.array_equal(dist.counts, [2, 1, 0, 1])
        assert dist.num_samples == 4
        assert dist.pmf.sum() == pytest.approx(1.0)

    def test_empirical_converges_to_truth(self, rng):
        true = families.zipf(32, 1.0)
        samples = true.sample(100_000, rng)
        emp = EmpiricalDistribution(samples, 32)
        assert l1_distance(true, emp) < 0.05
