"""Tests for repro.experiments (harness, registry, CLI, quick runs).

Each experiment runs once in quick mode; assertions target the *shape*
claims recorded in README.md ("Experiments"), with slack for the
reduced grids.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.harness import ExperimentConfig, ExperimentResult, accept_rate
from repro.experiments.registry import experiment_ids, get_experiment, run_experiment

QUICK = ExperimentConfig(seed=0, quick=True)
ALL_IDS = ["T1", "T2", "F1", "F2", "T3", "T4", "F3", "F4", "T5", "T6", "T7", "T8"]


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (quick) and share across assertions."""
    return {eid: run_experiment(eid, QUICK) for eid in ALL_IDS}


class TestHarness:
    def test_markdown_rendering(self):
        result = ExperimentResult("X1", "demo", ["a"], [[1]], ["note"])
        text = result.to_markdown()
        assert text.startswith("### X1: demo")
        assert "| a" in text and "- note" in text

    def test_accept_rate(self):
        assert accept_rate([True, True, False, False]) == 0.5
        assert accept_rate([]) != accept_rate([])  # NaN

    def test_config_defaults(self):
        config = ExperimentConfig()
        assert config.seed == 0 and not config.quick


class TestRegistry:
    def test_all_ids_registered(self):
        assert experiment_ids() == ALL_IDS

    def test_unknown_id_raises(self):
        with pytest.raises(InvalidParameterError):
            get_experiment("T99")

    def test_case_insensitive(self):
        assert get_experiment("t1") == get_experiment("T1")

    def test_run_with_default_config(self):
        result = run_experiment("T5", ExperimentConfig(quick=True))
        assert result.experiment_id == "T5"


class TestExperimentOutputs:
    def test_every_experiment_produces_rows(self, results):
        for eid, result in results.items():
            assert result.rows, f"{eid} produced no rows"
            assert result.experiment_id == eid
            assert result.headers
            result.to_markdown()  # renders without error

    def test_t1_within_theorem_bound(self, results):
        assert all(row[-1] for row in results["T1"].rows)

    def test_t2_fast_within_bound(self, results):
        for row in results["T2"].rows:
            assert row[2] <= row[4]

    def test_f1_error_decreases_with_budget(self, results):
        errors = [row[2] for row in results["F1"].rows]
        assert errors[-1] <= errors[0] + 1e-6

    def test_t3_tester_guarantee(self, results):
        for row in results["T3"].rows:
            if row[1] == "YES":
                assert row[3] >= 2 / 3
            else:
                assert row[3] <= 1 / 3

    def test_t4_tester_guarantee(self, results):
        for row in results["T4"].rows:
            if row[1] == "YES":
                assert row[3] >= 2 / 3
            else:
                assert row[3] <= 1 / 3

    def test_t4_no_instances_certified_far(self, results):
        for row in results["T4"].rows:
            if row[1] == "NO":
                assert row[2] > 0.1  # certified l1 distance

    def test_f3_gap_shape(self, results):
        rows = results["F3"].rows
        assert rows[0][2] <= 1 / 3
        assert rows[-1][2] >= 2 / 3

    def test_f4_transition_shape(self, results):
        rows = results["F4"].rows
        for n, k in {(row[0], row[1]) for row in rows}:
            series = sorted(
                (row for row in rows if row[0] == n and row[1] == k),
                key=lambda row: row[2],
            )
            assert series[-1][4] >= series[0][4] - 0.15

    def test_t5_lemma1_rate(self, results):
        for row in results["T5"].rows:
            if row[1] == "Lemma1 single":
                assert row[2] >= 0.6

    def test_t6_voptimal_beats_equiwidth_or_depth(self, results):
        by_name = {row[1]: row[3] for row in results["T6"].rows}
        assert by_name["v-optimal plug-in"] <= max(
            by_name["equi-depth"], by_name["equi-width"]
        )

    def test_t7_all_variants_within_8eps(self, results):
        assert all(row[2] <= 2.0 for row in results["T7"].rows)

    def test_t8_sample_savings(self, results):
        rows = results["T8"].rows
        general = next(r for r in rows if "general" in r[1])
        gr00 = next(r for r in rows if "GR00" in r[1])
        assert gr00[2] < general[2] / 10


class TestCli:
    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ALL_IDS:
            assert eid in out

    def test_run_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "T5", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "### T5" in out and "completed in" in out
