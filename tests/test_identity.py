"""Tests for repro.core.identity (l2 identity testing)."""

from __future__ import annotations

import numpy as np
import pytest

# Alias the paper-named ``test*`` function so pytest does not collect it.
from repro.core.identity import identity_sample_size
from repro.core.identity import test_identity_l2 as identity_test
from repro.distributions import families
from repro.distributions.base import DiscreteDistribution
from repro.errors import InvalidParameterError


class TestSampleSize:
    def test_sqrt_n_scaling(self):
        assert identity_sample_size(40_000, 0.25) == pytest.approx(
            20 * identity_sample_size(100, 0.25), rel=0.05
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            identity_sample_size(0, 0.25)
        with pytest.raises(InvalidParameterError):
            identity_sample_size(100, 1.0)


class TestIdentityTester:
    def test_accepts_identical(self):
        dist = families.zipf(256, 1.0)
        result = identity_test(dist, dist, 0.2, rng=1)
        assert result.accepted
        assert result.statistic == pytest.approx(0.0, abs=result.threshold)

    def test_rejects_l2_far_pair(self):
        """Point masses in different places are l2-far."""
        p = np.zeros(256)
        p[:4] = 0.25
        q = np.zeros(256)
        q[200:204] = 0.25
        result = identity_test(
            DiscreteDistribution(p), DiscreteDistribution(q), 0.3, rng=2
        )
        assert not result.accepted

    def test_accepts_uniform_vs_uniform(self):
        dist = families.uniform(1024)
        assert identity_test(dist, dist.pmf, 0.25, rng=3).accepted

    def test_rejects_spike_vs_uniform(self):
        spike = families.spikes(1024, 4)
        uniform = families.uniform(1024)
        assert not identity_test(spike, uniform, 0.3, rng=4).accepted

    def test_symmetric_detection(self):
        """Also detects the missing spike direction (p uniform, q spiky)."""
        spike = families.spikes(1024, 4)
        uniform = families.uniform(1024)
        assert not identity_test(uniform, spike, 0.3, rng=5).accepted

    def test_acceptance_rate(self):
        dist = families.two_level(512, heavy_start=0, heavy_length=64)
        accepts = sum(
            identity_test(dist, dist, 0.25, rng=10 + i).accepted for i in range(10)
        )
        assert accepts >= 7

    def test_rejection_rate(self):
        p = families.spikes(512, 4)
        q = families.uniform(512)
        rejects = sum(
            not identity_test(p, q, 0.3, rng=30 + i).accepted for i in range(10)
        )
        assert rejects >= 7

    def test_accepts_histogram_reference(self):
        from repro.histograms.tiling import TilingHistogram

        hist = TilingHistogram.uniform(256)
        assert identity_test(families.uniform(256), hist, 0.25, rng=6).accepted

    def test_out_of_domain_samples_raise(self):
        class Broken:
            def sample(self, size, rng=None):
                return np.full(size, 999, dtype=np.int64)

        with pytest.raises(InvalidParameterError):
            identity_test(Broken(), families.uniform(16), 0.25, rng=7)

    def test_validation(self):
        dist = families.uniform(16)
        with pytest.raises(InvalidParameterError):
            identity_test(dist, dist, 0.0)
        with pytest.raises(InvalidParameterError):
            identity_test(dist, dist, 0.25, scale=0.0)

    def test_metadata(self):
        dist = families.uniform(64)
        result = identity_test(dist, dist, 0.25, rng=8)
        assert result.samples_used >= 16
        assert result.threshold == pytest.approx(0.25**2 / 2)


class TestIdentityOnSketch:
    """Direct coverage of the on-sketch half (previously only reached
    through the draw-and-run composition)."""

    def test_matches_one_shot_composition(self):
        """test_identity_l2 == CollisionSketch + the on-sketch half."""
        import math

        from repro.core.identity import test_identity_l2_on_sketch
        from repro.samples.collision import CollisionSketch
        from repro.utils.rng import as_rng

        dist, eps = families.zipf(256, 1.0), 0.2
        size = max(16, math.ceil(identity_sample_size(256, eps)))
        samples = dist.sample(size, as_rng(7))
        via_sketch = test_identity_l2_on_sketch(
            CollisionSketch(samples, 256), samples, dist, eps
        )
        assert via_sketch == identity_test(dist, dist, eps, rng=7)

    def test_statistic_decomposition(self):
        """statistic = ||p||^2_hat - 2<p,q>_hat + ||q||^2, exactly."""
        from repro.core.identity import test_identity_l2_on_sketch
        from repro.samples.collision import CollisionSketch
        from repro.utils.prefix import pairs_count

        rng = np.random.default_rng(3)
        q = families.two_level(64, heavy_start=16, heavy_length=8)
        samples = q.sample(4_000, rng)
        sketch = CollisionSketch(samples, 64)
        result = test_identity_l2_on_sketch(sketch, samples, q, 0.2)
        expected = (
            sketch.total_collisions / pairs_count(sketch.size)
            - 2.0 * float(q.pmf[samples].mean())
            + float(np.dot(q.pmf, q.pmf))
        )
        assert result.statistic == expected
        assert result.threshold == 0.2**2 / 2.0
        assert result.samples_used == 4_000

    def test_rejects_mismatched_sketch(self):
        from repro.core.identity import test_identity_l2_on_sketch
        from repro.samples.collision import CollisionSketch

        q = np.zeros(64)
        q[-2:] = 0.5
        samples = np.random.default_rng(4).choice(2, size=3_000)
        result = test_identity_l2_on_sketch(CollisionSketch(samples, 64), samples, q, 0.3)
        assert not result.accepted

    def test_validation(self):
        from repro.core.identity import test_identity_l2_on_sketch
        from repro.errors import InsufficientSamplesError
        from repro.samples.collision import CollisionSketch

        samples = np.arange(16)
        sketch = CollisionSketch(samples, 16)
        reference = np.full(16, 1 / 16)
        with pytest.raises(InvalidParameterError):
            test_identity_l2_on_sketch(sketch, samples, reference, 0.0)
        with pytest.raises(InvalidParameterError):
            # reference domain mismatch
            test_identity_l2_on_sketch(sketch, samples, np.full(8, 1 / 8), 0.2)
        with pytest.raises(InsufficientSamplesError):
            single = np.array([3])
            test_identity_l2_on_sketch(
                CollisionSketch(single, 16), single, reference, 0.2
            )
