"""Tests for repro.utils.faults — the deterministic chaos layer.

The executor- and service-side consequences of a plan (respawns,
degradation, byte-identity under kills) live in ``test_executor.py``,
``test_serving.py``, and the conformance matrix; this file pins the
plan's own mechanics: schedules are pure functions of the
configuration, counters advance per consumed slot, and the source
wrapper fails exactly the scheduled draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InjectedFaultError, InvalidParameterError
from repro.utils.faults import DELAY, KILL, FaultPlan, FaultySource


class TestFaultPlanSchedules:
    def test_kill_at_fires_once_per_index(self):
        plan = FaultPlan(kill_at=[1, 3])
        directives = plan.task_directives(5)
        assert [d is not None and d[0] == KILL for d in directives] == [
            False, True, False, True, False,
        ]
        # Later slots are past the scheduled indices: nothing re-fires.
        assert plan.task_directives(5) == [None] * 5
        assert plan.injected == {"kills": 2, "delays": 0, "alloc_failures": 0}
        assert plan.tasks_scheduled == 10

    def test_kill_every_with_limit(self):
        plan = FaultPlan(kill_every=2, kill_limit=2)
        directives = plan.task_directives(8)
        kills = [i for i, d in enumerate(directives) if d is not None]
        assert kills == [1, 3]  # indices 1, 3 fire; 5, 7 hit the cap
        assert plan.injected["kills"] == 2

    def test_kill_chance_is_seeded(self):
        first = FaultPlan(seed=42, kill_chance=0.5).task_directives(32)
        second = FaultPlan(seed=42, kill_chance=0.5).task_directives(32)
        assert first == second
        assert any(d is not None for d in first)
        assert any(d is None for d in first)

    def test_delay_directive_carries_duration(self):
        plan = FaultPlan(delay_at=[0], delay_s=0.25)
        (directive,) = plan.task_directives(1)
        assert directive == (DELAY, 0.25)
        assert plan.injected["delays"] == 1

    def test_kill_shadows_delay_on_same_index(self):
        plan = FaultPlan(kill_at=[0], delay_at=[0], delay_s=1.0)
        (directive,) = plan.task_directives(1)
        assert directive == (KILL,)

    def test_counter_spans_attempts(self):
        # A retried batch consumes fresh slots: the same one-shot kill
        # schedule cannot re-fire, which is what makes the executor's
        # respawn-then-succeed path reachable.
        plan = FaultPlan(kill_at=[0])
        assert plan.task_directives(3)[0] == (KILL,)
        assert plan.task_directives(3) == [None] * 3

    def test_alloc_schedule(self):
        plan = FaultPlan(fail_alloc_at=[0, 2])
        assert [plan.take_alloc() for _ in range(4)] == [
            True, False, True, False,
        ]
        assert plan.injected["alloc_failures"] == 2

    def test_zero_count_consumes_nothing(self):
        plan = FaultPlan(kill_at=[0])
        assert plan.task_directives(0) == []
        assert plan.tasks_scheduled == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan(kill_every=0)
        with pytest.raises(InvalidParameterError):
            FaultPlan(kill_chance=1.5)
        with pytest.raises(InvalidParameterError):
            FaultPlan(kill_limit=-1)
        with pytest.raises(InvalidParameterError):
            FaultPlan(delay_s=-0.1)
        with pytest.raises(InvalidParameterError):
            FaultPlan(kill_at=[-1])


class _Recorder:
    """A stub source that records the sizes it was asked for."""

    def __init__(self) -> None:
        self.sizes: list[int] = []

    def sample(self, size, rng=None):
        self.sizes.append(size)
        return np.zeros(size, dtype=np.int64)


class TestFaultySource:
    def test_scheduled_draw_raises_before_delegating(self):
        inner = _Recorder()
        source = FaultPlan(fail_draw_at=[1]).wrap_source(inner)
        assert source.sample(4).shape == (4,)
        with pytest.raises(InjectedFaultError, match="draw 1"):
            source.sample(8)
        # The failed draw never reached the inner source — it is left
        # exactly one batch short, the way a real source dies.
        assert inner.sizes == [4]
        assert source.draws == 2

    def test_unscheduled_wrapper_is_transparent(self):
        inner = _Recorder()
        source = FaultPlan().wrap_source(inner)
        for size in (2, 3, 5):
            source.sample(size)
        assert inner.sizes == [2, 3, 5]
