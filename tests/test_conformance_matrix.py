"""Scenario-matrix conformance: every engine/source/driver combination
answers a pinned workload identically.

One fixed operation script (learn + l2/l1 tester grid + min-k) runs at
pinned seeds through every combination of

* learner engine         — ``incremental`` / ``full``,
* tester (flatness) engine — ``compiled`` / ``full``,
* sample source          — :class:`ArraySource` / :class:`CountingSource`,
* driver                 — a :class:`HistogramSession` loop /
  one :class:`HistogramFleet`,

and every cell of the matrix must produce byte-identical outcomes:
learned histogram buffers, tester verdicts *with query logs*, and min-k
selections.  This is the one test that catches an engine drifting from
the others anywhere in the stack — a new engine or source adapter joins
the matrix, not a bespoke suite.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.api import ArraySource, CountingSource, HistogramFleet, HistogramSession
from repro.core.params import GreedyParams, TesterParams
from repro.distributions import families

N = 96
FLEET_SIZE = 3
SEEDS = (0, 11)
TEST_PARAMS = TesterParams(num_sets=5, set_size=2_000)
LEARN_PARAMS = GreedyParams(
    weight_sample_size=2_000, collision_sets=3, collision_set_size=1_000, rounds=2
)
TEST_GRID = [(2, 0.3), (4, 0.25)]

ENGINES = ("incremental", "full")
TESTER_ENGINES = ("compiled", "full")
SOURCE_KINDS = ("array", "counting")
DRIVERS = ("session", "fleet")

MATRIX = list(itertools.product(ENGINES, TESTER_ENGINES, SOURCE_KINDS, DRIVERS))


def _make_sources(kind: str):
    base = families.random_tiling_histogram(N, 3, rng=5, min_piece=8)
    arrays = [
        base.sample(15_000, np.random.default_rng(200 + f)) for f in range(FLEET_SIZE)
    ]
    sources = [ArraySource(values, N) for values in arrays]
    if kind == "counting":
        sources = [CountingSource(source) for source in sources]
    return sources


def _freeze_learn(result):
    return (
        result.histogram.boundaries.tobytes(),
        result.histogram.values.tobytes(),
        tuple(result.rounds),
    )


def run_scenario(engine: str, tester_engine: str, source_kind: str, driver: str, seed: int):
    """One pinned workload; returns a fully comparable outcome tuple."""
    sources = _make_sources(source_kind)
    seeds = [seed + f for f in range(FLEET_SIZE)]
    kwargs = dict(
        engine=engine,
        tester_engine=tester_engine,
        learn_budget=LEARN_PARAMS,
        test_budget=TEST_PARAMS,
    )
    if driver == "fleet":
        fleet = HistogramFleet(sources, N, rngs=seeds, **kwargs)
        learned = fleet.learn(3, 0.3)
        tested_l2 = fleet.test_many(TEST_GRID, norm="l2")
        tested_l1 = fleet.test_l1(3, 0.3)
        selected = fleet.min_k(0.3, max_k=6, norm="l2")
    else:
        sessions = [
            HistogramSession(source, N, rng=member_seed, **kwargs)
            for source, member_seed in zip(sources, seeds)
        ]
        learned = [session.learn(3, 0.3) for session in sessions]
        tested_l2 = [session.test_many(TEST_GRID, norm="l2") for session in sessions]
        tested_l1 = [session.test_l1(3, 0.3) for session in sessions]
        selected = [session.min_k(0.3, max_k=6, norm="l2") for session in sessions]
    return (
        tuple(_freeze_learn(result) for result in learned),
        tuple(tuple(member) for member in tested_l2),
        tuple(tested_l1),
        tuple(selected),
    )


@pytest.fixture(scope="module")
def reference_outcomes():
    """The matrix's reference cell, computed once per pinned seed."""
    return {
        seed: run_scenario("incremental", "compiled", "array", "session", seed)
        for seed in SEEDS
    }


@pytest.mark.parametrize(
    "engine,tester_engine,source_kind,driver",
    MATRIX,
    ids=["-".join(cell) for cell in MATRIX],
)
@pytest.mark.parametrize("seed", SEEDS)
def test_matrix_cell_matches_reference(
    engine, tester_engine, source_kind, driver, seed, reference_outcomes
):
    """Pairwise identity via a shared reference cell (equality is
    transitive, so all C(|matrix|, 2) pairs agree iff each cell agrees
    with the reference)."""
    outcome = run_scenario(engine, tester_engine, source_kind, driver, seed)
    assert outcome == reference_outcomes[seed]


def test_counting_sources_observe_identical_draws():
    """The source axis is real: the counting wrapper sees every draw the
    plain source serves, on both drivers."""
    sources = _make_sources("counting")
    fleet = HistogramFleet(
        sources, N, rngs=list(range(FLEET_SIZE)), test_budget=TEST_PARAMS
    )
    fleet.test_l2(3, 0.3)
    assert all(source.samples_drawn == TEST_PARAMS.total_samples for source in sources)
