"""Scenario-matrix conformance: every engine/source/driver combination
answers a pinned workload identically.

One fixed operation script (learn + l2/l1 tester grid + min-k) runs at
pinned seeds through every combination of

* learner engine         — ``incremental`` / ``full`` / ``lockstep``,
* tester (flatness) engine — ``compiled`` / ``full``,
* sample source          — :class:`ArraySource` / :class:`CountingSource`,
* driver                 — a :class:`HistogramSession` loop /
  one :class:`HistogramFleet`,

and every cell of the matrix must produce byte-identical outcomes:
learned histogram buffers, tester verdicts *with query logs*, and min-k
selections.  This is the one test that catches an engine drifting from
the others anywhere in the stack — a new engine or source adapter joins
the matrix, not a bespoke suite.

A second matrix covers the parallel shard engine: shards (1/2/7) ×
workers (1/4) × tester engine, on both drivers, must reproduce the
serial single-buffer outcomes bit for bit — *including* every compiled
sketch's flatness-memo accounting, since the executor fans compiles and
miss batches across processes but must never change what gets memoised
where.
"""

from __future__ import annotations

import itertools
import os

import numpy as np
import pytest

from repro.api import (
    ArraySource,
    CountingSource,
    HistogramFleet,
    HistogramSession,
    ParallelExecutor,
    ShardPlan,
)
from repro.core.params import GreedyParams, TesterParams
from repro.distributions import families
from repro.utils.faults import FaultPlan

N = 96
FLEET_SIZE = 3
SEEDS = (0, 11)
TEST_PARAMS = TesterParams(num_sets=5, set_size=2_000)
LEARN_PARAMS = GreedyParams(
    weight_sample_size=2_000, collision_sets=3, collision_set_size=1_000, rounds=2
)
TEST_GRID = [(2, 0.3), (4, 0.25)]

ENGINES = ("incremental", "full", "lockstep")
# The learn-engine axis of the shard/chaos matrices: "full" never
# interacts with the executor (it is covered against "incremental"
# through the main matrix), while "lockstep" must additionally hold
# with its rescore fan forced on (learn_fan_min_candidates=1).
SHARD_LEARN_ENGINES = ("incremental", "lockstep")
TESTER_ENGINES = ("compiled", "full")
SOURCE_KINDS = ("array", "counting")
DRIVERS = ("session", "fleet")

MATRIX = list(itertools.product(ENGINES, TESTER_ENGINES, SOURCE_KINDS, DRIVERS))


def _make_sources(kind: str):
    base = families.random_tiling_histogram(N, 3, rng=5, min_piece=8)
    arrays = [
        base.sample(15_000, np.random.default_rng(200 + f)) for f in range(FLEET_SIZE)
    ]
    sources = [ArraySource(values, N) for values in arrays]
    if kind == "counting":
        sources = [CountingSource(source) for source in sources]
    return sources


def _freeze_learn(result):
    return (
        result.histogram.boundaries.tobytes(),
        result.histogram.values.tobytes(),
        tuple(result.rounds),
    )


def _freeze_memo(sessions) -> tuple:
    """Per-member flatness-memo accounting of every compiled budget.

    Part of the byte-identity contract *within* one tester engine: the
    shard/worker axes fan compiles and miss batches across processes but
    must leave every member's memo — hits, misses, and distinct entries
    — exactly as the serial engine does.  (Cells on the ``full`` engine
    compile nothing, freezing to empty tuples on both sides.)
    """
    return tuple(
        tuple(
            (key, compiled.memo_hits, compiled.memo_misses, compiled.memo_size)
            for key, compiled in sorted(
                session._bundle._tester_compiled_cache.items()
            )
        )
        for session in sessions
    )


def run_scenario(
    engine: str,
    tester_engine: str,
    source_kind: str,
    driver: str,
    seed: int,
    executor: ParallelExecutor | None = None,
):
    """One pinned workload; returns ``(outcome, memo accounting)``.

    ``outcome`` is comparable across every matrix axis; the memo
    accounting only across cells sharing a tester engine (the ``full``
    engine legitimately memoises nothing).
    """
    sources = _make_sources(source_kind)
    seeds = [seed + f for f in range(FLEET_SIZE)]
    kwargs = dict(
        engine=engine,
        tester_engine=tester_engine,
        learn_budget=LEARN_PARAMS,
        test_budget=TEST_PARAMS,
        executor=executor,
    )
    if driver == "fleet":
        fleet = HistogramFleet(sources, N, rngs=seeds, **kwargs)
        learned = fleet.learn(3, 0.3)
        tested_l2 = fleet.test_many(TEST_GRID, norm="l2")
        tested_l1 = fleet.test_l1(3, 0.3)
        selected = fleet.min_k(0.3, max_k=6, norm="l2")
        sessions = fleet._sessions
    else:
        sessions = [
            HistogramSession(source, N, rng=member_seed, **kwargs)
            for source, member_seed in zip(sources, seeds)
        ]
        learned = [session.learn(3, 0.3) for session in sessions]
        tested_l2 = [session.test_many(TEST_GRID, norm="l2") for session in sessions]
        tested_l1 = [session.test_l1(3, 0.3) for session in sessions]
        selected = [session.min_k(0.3, max_k=6, norm="l2") for session in sessions]
    outcome = (
        tuple(_freeze_learn(result) for result in learned),
        tuple(tuple(member) for member in tested_l2),
        tuple(tested_l1),
        tuple(selected),
    )
    return outcome, _freeze_memo(sessions)


@pytest.fixture(scope="module")
def reference_outcomes():
    """The matrix's reference cell, computed once per pinned seed."""
    return {
        seed: run_scenario("incremental", "compiled", "array", "session", seed)[0]
        for seed in SEEDS
    }


@pytest.mark.parametrize(
    "engine,tester_engine,source_kind,driver",
    MATRIX,
    ids=["-".join(cell) for cell in MATRIX],
)
@pytest.mark.parametrize("seed", SEEDS)
def test_matrix_cell_matches_reference(
    engine, tester_engine, source_kind, driver, seed, reference_outcomes
):
    """Pairwise identity via a shared reference cell (equality is
    transitive, so all C(|matrix|, 2) pairs agree iff each cell agrees
    with the reference)."""
    outcome, _ = run_scenario(engine, tester_engine, source_kind, driver, seed)
    assert outcome == reference_outcomes[seed]


# ------------------------------------------------------------------ #
# shards × workers × tester engine (the parallel shard engine)
# ------------------------------------------------------------------ #

SHARDS = (1, 2, 7)
WORKERS = (1, 4)
SHARD_MATRIX = list(
    itertools.product(SHARDS, WORKERS, TESTER_ENGINES, SHARD_LEARN_ENGINES)
)


@pytest.fixture(scope="module")
def shard_references():
    """Serial (no-executor) reference per tester engine, both drivers.

    Memo accounting is only comparable within one tester engine, so the
    shard matrix carries one full ``(outcome, memo)`` reference per
    engine; outcomes additionally agree across engines through the main
    matrix's reference cell.
    """
    return {
        (tester_engine, driver): run_scenario(
            "incremental", tester_engine, "array", driver, SEEDS[0]
        )
        for tester_engine in TESTER_ENGINES
        for driver in DRIVERS
    }


@pytest.mark.parametrize(
    "shards,workers,tester_engine,engine",
    SHARD_MATRIX,
    ids=[f"shards{s}-workers{w}-{te}-{e}" for s, w, te, e in SHARD_MATRIX],
)
def test_shard_matrix_cell_matches_reference(
    shards, workers, tester_engine, engine, shard_references
):
    """Sharded + parallel execution is byte-identical to the serial
    single-buffer engine on both drivers — verdicts, histograms, query
    logs, and per-member memo accounting.  ``resolve_min_batch=1``
    forces even this tiny fleet's flatness misses through the worker
    fan-out path when the executor is parallel, and
    ``learn_fan_min_candidates=1`` forces the lockstep learner's rescore
    fan the same way."""
    with ParallelExecutor(
        workers,
        plan=ShardPlan(shards),
        resolve_min_batch=1,
        learn_fan_min_candidates=1,
    ) as executor:
        for driver in DRIVERS:
            outcome, memo = run_scenario(
                engine,
                tester_engine,
                "array",
                driver,
                SEEDS[0],
                executor=executor,
            )
            assert (outcome, memo) == shard_references[(tester_engine, driver)]


# ------------------------------------------------------------------ #
# chaos cells: injected faults must not change a byte
# ------------------------------------------------------------------ #

# (label, plan factory, max_respawns, must_degrade).  Plans are
# stateful — each cell builds a fresh one.
CHAOS_CELLS = [
    (
        "kill-once",
        lambda: FaultPlan(kill_at=[0], kill_limit=1),
        4,
        False,
    ),
    (
        "kill-until-degraded",
        lambda: FaultPlan(kill_every=1),
        1,
        True,
    ),
    (
        "delay-and-alloc-failures",
        lambda: FaultPlan(delay_at=[0, 3], delay_s=0.005, fail_alloc_at=[0, 2]),
        2,
        False,
    ),
]


@pytest.mark.shm_guard
@pytest.mark.parametrize("engine", SHARD_LEARN_ENGINES)
@pytest.mark.parametrize(
    "label,make_plan,max_respawns,must_degrade",
    CHAOS_CELLS,
    ids=[cell[0] for cell in CHAOS_CELLS],
)
def test_chaos_cell_matches_reference(
    label, make_plan, max_respawns, must_degrade, engine, shard_references
):
    """Every rung of the fault-recovery ladder is byte-identical.

    Workers SIGKILLed mid-batch (respawned, or driven all the way to
    inline degradation), stalled workers, and failed slab allocations
    must reproduce the serial reference cell exactly — verdicts,
    histograms, query logs, and memo accounting.  The lockstep cells run
    with the learner's rescore fan forced on, so kills land mid
    learn-round too."""
    plan = make_plan()
    with ParallelExecutor(
        4,
        plan=ShardPlan(2),
        resolve_min_batch=1,
        max_respawns=max_respawns,
        faults=plan,
        learn_fan_min_candidates=1,
    ) as executor:
        for driver in DRIVERS:
            outcome, memo = run_scenario(
                engine,
                "compiled",
                "array",
                driver,
                SEEDS[0],
                executor=executor,
            )
            assert (outcome, memo) == shard_references[("compiled", driver)], (
                label,
                driver,
            )
        health = executor.health()
        assert executor.degraded == must_degrade, label
        injected = plan.injected
        assert sum(injected.values()) > 0, label  # chaos really fired
        if injected["kills"]:
            assert health["worker_crashes"] >= 1
        if injected["alloc_failures"]:
            assert health["slab_fallbacks"] >= 1


def test_counting_sources_observe_identical_draws():
    """The source axis is real: the counting wrapper sees every draw the
    plain source serves, on both drivers."""
    sources = _make_sources("counting")
    fleet = HistogramFleet(
        sources, N, rngs=list(range(FLEET_SIZE)), test_budget=TEST_PARAMS
    )
    fleet.test_l2(3, 0.3)
    assert all(source.samples_drawn == TEST_PARAMS.total_samples for source in sources)


# ------------------------------------------------------------------ #
# snapshot axis: restore is byte-identical to staying alive
# ------------------------------------------------------------------ #


@pytest.mark.shm_guard
@pytest.mark.parametrize("workers,shards", [(0, 0), (4, 2)], ids=["serial", "sharded"])
def test_snapshot_cell_matches_live_fleet(tmp_path, workers, shards):
    """A fleet restored mid-workload finishes it byte-identically.

    Phase A (learn + one tester call) runs on a live fleet, which is
    then snapshotted.  Phase B — the rest of the pinned workload, plus a
    *larger*-budget tester call that forces the restored read-only pools
    to grow and spends restored rng draws — runs on both the live fleet
    and a freshly built fleet restored from the file.  Outcomes and
    per-member memo accounting must match exactly, on the serial and the
    sharded/parallel executor alike.
    """
    seeds = [SEEDS[0] + f for f in range(FLEET_SIZE)]
    grown = TesterParams(num_sets=5, set_size=2_500)

    def build(executor):
        return HistogramFleet(
            _make_sources("array"),
            N,
            rngs=list(seeds),
            engine="lockstep",
            tester_engine="compiled",
            learn_budget=LEARN_PARAMS,
            test_budget=TEST_PARAMS,
            executor=executor,
        )

    def phase_b(fleet):
        outcome = (
            tuple(_freeze_learn(result) for result in fleet.learn(3, 0.3)),
            tuple(tuple(member) for member in fleet.test_many(TEST_GRID, norm="l2")),
            tuple(fleet.test_l1(3, 0.3)),
            tuple(fleet.min_k(0.3, max_k=6, norm="l2")),
            tuple(fleet.test_l2(2, 0.3, params=grown)),
        )
        return outcome, _freeze_memo(fleet._sessions)

    executor = None
    if workers:
        executor = ParallelExecutor(
            workers,
            plan=ShardPlan(shards),
            resolve_min_batch=1,
            learn_fan_min_candidates=1,
        )
    try:
        live = build(executor)
        live.learn(3, 0.3)
        live.test_l2(2, 0.3)
        path = tmp_path / "fleet.snap"
        live.snapshot(path)

        restored = build(executor)
        restored.restore(path)
        assert phase_b(live) == phase_b(restored)
    finally:
        if executor is not None:
            executor.close()


# ------------------------------------------------------------------ #
# serving axes: the response cache and the checkpoint mode are
# byte-free — responses, query logs, and memo accounting all match
# ------------------------------------------------------------------ #


def _serve_workload():
    """A requery-heavy pinned workload (repeats are what the cache eats)."""
    from repro.serving import WorkloadConfig

    return WorkloadConfig(
        streams=4,
        requests=60,
        seed=5,
        n=N,
        k=3,
        epsilon=0.3,
        requery_bias=0.5,
        ingest_batch=24,
        burst_every=24,
        burst_len=8,
    )


def _build_service(names, cache_capacity, **kwargs):
    from repro.serving import HistogramService, ServiceConfig

    return HistogramService(
        names,
        N,
        3,
        0.3,
        config=ServiceConfig(
            max_batch=8,
            max_linger_us=200.0,
            max_queue=4096,
            cache_capacity=cache_capacity,
        ),
        references={"baseline": np.full(N, 1.0 / N)},
        reservoir_capacity=512,
        params=LEARN_PARAMS,
        tester_params=TEST_PARAMS,
        rng=9,
        **kwargs,
    )


def _serve_memo(service) -> tuple:
    """Per-member memo accounting *excluding hit counts*.

    A response-cache hit legitimately skips the memo query a cold
    execution would have made, so hits differ across the cache axis; the
    memo *table* and its miss counts may not.
    """
    maintainer = service.maintainer
    return tuple(
        tuple(
            (key, compiled.memo_misses, compiled.memo_size)
            for key, compiled in sorted(
                maintainer.fleet.session(f)._bundle._tester_compiled_cache.items()
            )
        )
        for f in range(maintainer.fleet_size)
    )


def test_response_cache_cell_matches_reference():
    """Cache on == cache off, byte for byte, memo misses included."""
    import asyncio

    from repro.serving import WorkloadGenerator, canonical, replay

    config = _serve_workload()
    generator = WorkloadGenerator(config)
    trace = generator.trace()

    def run(cache_capacity):
        async def scenario():
            service = _build_service(generator.stream_names, cache_capacity)
            async with service:
                report = await replay(service, trace, clients=8, collect=True)
            return (
                tuple(canonical(r) for r in report.responses),
                _serve_memo(service),
                dict(service.stats),
            )

        return asyncio.run(scenario())

    reference_trace, reference_memo, _ = run(0)
    cached_trace, cached_memo, cached_stats = run(256)
    assert cached_stats["cache_hits"] > 0  # the axis is real
    assert cached_trace == reference_trace
    assert cached_memo == reference_memo


@pytest.mark.shm_guard
@pytest.mark.parametrize("mode", ["full", "delta"])
def test_checkpoint_mode_cell_matches_live_service(tmp_path, mode):
    """A service restored from either checkpoint mode finishes the
    pinned workload byte-identically to one that never restarted."""
    import asyncio

    from repro.serving import canonical
    from repro.serving import WorkloadGenerator

    config = _serve_workload()
    generator = WorkloadGenerator(config)
    requests = [request for _, request in generator.trace()]
    split = (len(requests) * 2) // 3
    head, tail = requests[:split], requests[split:]
    snapshot_dir = tmp_path / mode

    async def scenario():
        live = _build_service(
            generator.stream_names,
            256,
            snapshot_dir=snapshot_dir,
            checkpoint_mode=mode,
            checkpoint_every=2,
        )
        async with live:
            for request in head:
                await live.submit(request)
        # The mode really ran: beyond the chain-base write, every later
        # checkpoint in delta mode takes the differential path.
        assert live.stats["checkpoints"] >= 2
        reference = _build_service(generator.stream_names, 256)
        async with reference:
            ref = [canonical(await reference.submit(r)) for r in requests]
        restored = _build_service(
            generator.stream_names,
            256,
            snapshot_dir=snapshot_dir,
            checkpoint_mode=mode,
        )
        assert restored.warm_started, restored.restore_error
        async with restored:
            warm = [canonical(await restored.submit(r)) for r in tail]
        assert warm == ref[split:]
        assert _serve_memo(restored) == _serve_memo(reference)
        assert os.path.exists(snapshot_dir / "service.snap")

    asyncio.run(scenario())
