"""Cross-module integration tests: the pipelines a user actually runs."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.params import TesterParams
from repro.core.selection import estimate_min_k
from repro.datasets import sensor_readings_column
from repro.distributions import families
from repro.distributions.distances import l2_distance_squared
from repro.histograms.compact import compact
from repro.queries import SelectivityEstimator, evaluate_estimator, mixed_workload


class TestLearnCompactQueryPipeline:
    """learn -> compact to k -> answer range queries."""

    def test_pipeline(self, rng):
        n, k = 256, 4
        dist = families.random_tiling_histogram(n, k, 3, min_piece=16)
        learned = repro.learn_histogram(dist, n, k, 0.25, scale=0.05, rng=1)
        squeezed = compact(learned.filled_histogram, k)
        assert squeezed.num_pieces <= k

        estimator = SelectivityEstimator(squeezed)
        report = evaluate_estimator(estimator, dist, mixed_workload(n, 100, rng))
        assert report.mean_absolute < 0.05
        assert report.summary_size <= k

    def test_compaction_cost_is_modest(self):
        """Squeezing O(k log 1/eps) pieces to k stays within the theorem
        regime on histogram inputs."""
        n, k = 256, 4
        dist = families.random_tiling_histogram(n, k, 5, min_piece=16)
        learned = repro.learn_histogram(dist, n, k, 0.25, scale=0.05, rng=2)
        before = l2_distance_squared(dist, learned.filled_histogram)
        after = l2_distance_squared(dist, compact(learned.filled_histogram, k))
        assert after <= before + 8 * 0.25


class TestSelectThenLearnPipeline:
    """estimate_min_k -> learn at that k (the model-selection example)."""

    def test_pipeline(self):
        values, n = sensor_readings_column(100_000, rng=3)
        column = repro.EmpiricalDistribution(values, n)
        params = TesterParams(num_sets=15, set_size=30_000)
        selection = estimate_min_k(column, n, 0.25, max_k=10, params=params, rng=4)
        assert selection.k is not None
        # 4 true bands; sampling noise may split a band near the flatness
        # threshold, so allow modest overshoot.
        assert selection.k <= 8

        learned = repro.learn_histogram(
            column, n, selection.k, 0.25, scale=0.05, rng=5
        )
        assert repro.l1_distance(column, learned.filled_histogram) < 0.5


class TestTestThenTrustPipeline:
    """Use the tester as a guard before committing to a small summary."""

    def test_accepted_distribution_compresses_well(self):
        n, k = 256, 4
        dist = families.random_tiling_histogram(n, k, 7, min_piece=16)
        params = TesterParams(num_sets=11, set_size=20_000)
        verdict = repro.test_k_histogram_l1(dist, n, k, 0.25, params=params, rng=6)
        assert verdict.accepted
        # The tester's own partition is already a usable summary skeleton.
        assert verdict.partition[-1].stop == n
        from repro.histograms.fit import best_fit_values
        from repro.histograms.tiling import TilingHistogram

        boundaries = [0] + [piece.stop for piece in verdict.partition]
        values = best_fit_values(dist.pmf, np.array(boundaries), norm="l2")
        rebuilt = TilingHistogram(n, boundaries, values)
        assert repro.l2_distance(dist, rebuilt) < 0.05

    def test_rejected_distribution_would_compress_badly(self):
        n, k = 256, 4
        saw = families.sawtooth(n)
        params = TesterParams(num_sets=11, set_size=20_000)
        verdict = repro.test_k_histogram_l1(saw, n, k, 0.25, params=params, rng=7)
        assert not verdict.accepted
        assert repro.distance_to_k_histogram(saw, k, norm="l1") > 0.25


class TestStreamToQueriesPipeline:
    """stream -> maintainer -> selectivity answers."""

    def test_pipeline(self, rng):
        from repro.streaming import StreamingHistogramMaintainer

        n = 256
        dist = families.two_level(n, heavy_start=64, heavy_length=32)
        maintainer = StreamingHistogramMaintainer(
            n, 4, refresh_every=2_000, reservoir_capacity=2_000, rng=8
        )
        maintainer.update_many(dist.sample(6_000, rng))
        report = evaluate_estimator(
            SelectivityEstimator(maintainer.histogram),
            dist,
            mixed_workload(n, 100, rng),
        )
        assert report.mean_absolute < 0.05


class TestLearnerMatchesTesterSemantics:
    """A distribution the tester accepts at k is learnable to small error
    with budget k — the two primitives agree on what 'is a k-histogram'
    means."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_agreement(self, seed):
        n, k = 128, 3
        dist = families.random_tiling_histogram(n, k, seed, min_piece=8)
        params = TesterParams(num_sets=11, set_size=20_000)
        verdict = repro.test_k_histogram_l1(dist, n, k, 0.3, params=params, rng=seed)
        learned = repro.learn_histogram(dist, n, k, 0.3, scale=0.05, rng=seed)
        err = l2_distance_squared(dist, learned.histogram)
        assert verdict.accepted
        assert err < 0.05
