"""Tests for repro.samples.estimators.

Statistical assertions use the deterministic ``rng`` fixture and
tolerances at 3-5x the paper's own concentration bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import families
from repro.errors import InsufficientSamplesError
from repro.histograms.intervals import Interval
from repro.samples.collision import CollisionSketch
from repro.samples.estimators import (
    MultiSketch,
    absolute_second_moment_estimate,
    conditional_norm_estimate,
    observed_collision_probability,
    weight_estimate,
)
from repro.samples.sample_set import SampleSet


class TestWeightEstimate:
    def test_converges_to_weight(self, rng):
        dist = families.zipf(64, 1.0)
        sample_set = SampleSet(dist.sample(200_000, rng), 64)
        for interval in (Interval(0, 10), Interval(30, 64), Interval(5, 6)):
            estimate = weight_estimate(sample_set, interval.start, interval.stop)
            assert estimate == pytest.approx(dist.weight(interval), abs=0.01)

    def test_vectorised(self, rng):
        dist = families.uniform(16)
        sample_set = SampleSet(dist.sample(50_000, rng), 16)
        estimates = weight_estimate(sample_set, np.array([0, 8]), np.array([8, 16]))
        assert np.allclose(estimates, 0.5, atol=0.02)


class TestObservedCollisionProbability:
    def test_expectation_is_l2_norm_squared(self, rng):
        """[GR00] Lemma 1: E[coll / C(m,2)] = ||p||_2^2."""
        dist = families.zipf(32, 1.0)
        truth = dist.second_moment()
        estimates = [
            observed_collision_probability(dist.sample(5_000, rng))
            for _ in range(30)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_uniform_gives_one_over_n(self, rng):
        dist = families.uniform(100)
        estimate = observed_collision_probability(dist.sample(50_000, rng))
        assert estimate == pytest.approx(0.01, rel=0.05)

    def test_too_few_samples_raise(self):
        with pytest.raises(InsufficientSamplesError):
            observed_collision_probability(np.array([3]))


class TestAbsoluteSecondMoment:
    def test_lemma1_concentration(self, rng):
        """Lemma 1: with m >= 24/eps^2, |z_I - sum p_i^2| <= eps p(I) w.p. 3/4."""
        dist = families.zipf(64, 1.0)
        eps = 0.1
        m = int(24 / eps**2)
        interval = Interval(0, 8)
        truth = dist.second_moment(interval)
        bound = eps * dist.weight(interval)
        hits = 0
        trials = 40
        for _ in range(trials):
            sketch = CollisionSketch(dist.sample(m, rng), 64)
            z = absolute_second_moment_estimate(sketch, interval.start, interval.stop)
            hits += abs(z - truth) <= bound
        assert hits / trials >= 0.7  # paper guarantees 3/4 in expectation

    def test_whole_domain_matches_norm(self, rng):
        dist = families.two_level(64)
        sketch = CollisionSketch(dist.sample(100_000, rng), 64)
        z = absolute_second_moment_estimate(sketch, 0, 64)
        assert z == pytest.approx(dist.second_moment(), rel=0.05)

    def test_empty_sketch_raises(self):
        sketch = CollisionSketch(np.array([], dtype=np.int64), 8)
        with pytest.raises(InsufficientSamplesError):
            absolute_second_moment_estimate(sketch, 0, 8)


class TestConditionalNorm:
    def test_converges_to_conditional_norm(self, rng):
        dist = families.zipf(64, 1.0)
        interval = Interval(0, 16)
        truth = dist.conditional_collision_probability(interval)
        sketch = CollisionSketch(dist.sample(100_000, rng), 64)
        z = conditional_norm_estimate(sketch, interval.start, interval.stop)
        assert z == pytest.approx(truth, rel=0.05)

    def test_interval_without_samples_gives_zero(self):
        sketch = CollisionSketch(np.array([0, 0, 1]), 8)
        assert conditional_norm_estimate(sketch, 4, 8) == 0.0

    def test_single_sample_gives_zero(self):
        sketch = CollisionSketch(np.array([0, 0, 5]), 8)
        assert conditional_norm_estimate(sketch, 4, 8) == 0.0

    def test_uniform_interval_close_to_inverse_length(self, rng):
        dist = families.uniform(64)
        sketch = CollisionSketch(dist.sample(200_000, rng), 64)
        z = conditional_norm_estimate(sketch, 0, 32)
        assert z == pytest.approx(1 / 32, rel=0.05)


class TestMultiSketch:
    def test_median_reduces_failure_probability(self, rng):
        """Median-of-r concentrates better than a single estimate."""
        dist = families.zipf(64, 1.5)
        interval = Interval(0, 4)
        truth = dist.second_moment(interval)
        m = 2_000
        single_errors, median_errors = [], []
        for _ in range(20):
            multi = MultiSketch.from_sample_sets(dist.sample_sets(9, m, rng), 64)
            z_med = multi.median_absolute_second_moment(interval.start, interval.stop)
            z_single = absolute_second_moment_estimate(
                multi.sketches[0], interval.start, interval.stop
            )
            median_errors.append(abs(z_med - truth))
            single_errors.append(abs(z_single - truth))
        assert np.max(median_errors) <= np.max(single_errors) + 1e-12

    def test_counts_shape(self, rng):
        dist = families.uniform(16)
        multi = MultiSketch.from_sample_sets(dist.sample_sets(5, 100, rng), 16)
        assert multi.counts(0, 8).shape == (5,)
        assert multi.num_sets == 5
        assert multi.set_size == 100

    def test_vectorised_medians(self, rng):
        dist = families.uniform(16)
        multi = MultiSketch.from_sample_sets(dist.sample_sets(5, 5_000, rng), 16)
        starts = np.array([0, 8])
        stops = np.array([8, 16])
        z = multi.median_conditional_norm(starts, stops)
        assert z.shape == (2,)
        assert np.allclose(z, 1 / 8, rtol=0.1)

    def test_empty_raises(self):
        with pytest.raises(InsufficientSamplesError):
            MultiSketch([])
