"""Tests for repro.core.tester (Algorithm 2 / Theorems 3 and 4)."""

from __future__ import annotations

import pytest

from repro.core.flatness import FlatnessResult
from repro.core.params import TesterParams
# Alias the paper-named ``test*`` functions so pytest does not collect them.
from repro.core.tester import count_rejections, flat_partition
from repro.core.tester import test_k_histogram_l1 as khist_test_l1
from repro.core.tester import test_k_histogram_l2 as khist_test_l2
from repro.distributions import families
from repro.errors import InvalidParameterError

L2_ARGS = dict(scale=0.02)
L1_PARAMS = TesterParams(num_sets=21, set_size=40_000)


def oracle_from_pmf(dist):
    """An exact flatness oracle (ground truth) for partition-logic tests."""

    def oracle(start, stop):
        from repro.histograms.intervals import Interval

        flat = dist.is_flat(Interval(start, stop))
        return FlatnessResult(flat, "exact", None, None)

    return oracle


class TestFlatPartitionLogic:
    """Algorithm 2's binary-search control flow with an exact oracle."""

    def test_exact_histogram_recovered(self):
        dist = families.random_tiling_histogram(64, 4, rng=3, min_piece=4)
        partition, _ = flat_partition(64, 4, oracle_from_pmf(dist))
        assert partition[-1].stop == 64
        assert len(partition) <= 4
        # Every recovered interval must be genuinely flat.
        for interval in partition:
            assert dist.is_flat(interval)

    def test_partition_is_contiguous(self):
        dist = families.random_tiling_histogram(64, 5, rng=4)
        partition, _ = flat_partition(64, 5, oracle_from_pmf(dist))
        cursor = 0
        for interval in partition:
            assert interval.start == cursor
            cursor = interval.stop

    def test_too_few_pieces_fail(self):
        dist = families.random_tiling_histogram(64, 6, rng=8, min_piece=8)
        # The distribution has 6 genuinely distinct pieces whp; 2 pieces
        # cannot cover it.
        partition, _ = flat_partition(64, 2, oracle_from_pmf(dist))
        assert partition[-1].stop < 64

    def test_uniform_needs_one_piece(self):
        partition, queries = flat_partition(64, 1, oracle_from_pmf(families.uniform(64)))
        assert partition == [partition[0]]
        assert partition[0].start == 0 and partition[0].stop == 64

    def test_query_count_logarithmic(self):
        """Each interval costs O(log n) flatness queries."""
        dist = families.random_tiling_histogram(1024, 4, rng=5, min_piece=32)
        _, queries = flat_partition(1024, 4, oracle_from_pmf(dist))
        assert len(queries) <= 4 * 11 + 4

    def test_invalid_max_pieces(self):
        with pytest.raises(InvalidParameterError):
            flat_partition(64, 0, oracle_from_pmf(families.uniform(64)))


class TestTesterL2:
    def test_accepts_k_histogram(self):
        dist = families.random_tiling_histogram(256, 4, rng=3, min_piece=8)
        result = khist_test_l2(dist, 256, 4, 0.25, rng=31, **L2_ARGS)
        assert result.accepted

    def test_accepts_uniform_for_k1(self):
        result = khist_test_l2(families.uniform(256), 256, 1, 0.25, rng=32, **L2_ARGS)
        assert result.accepted

    def test_rejects_l2_far_spikes(self):
        spiky = families.spikes(256, 8)
        result = khist_test_l2(spiky, 256, 4, 0.25, rng=33, **L2_ARGS)
        assert not result.accepted
        assert count_rejections(result) > 0

    def test_accepts_with_larger_k(self):
        """spikes(n, 8) is a 17-histogram; k=17 must accept."""
        spiky = families.spikes(256, 8)
        result = khist_test_l2(spiky, 256, 20, 0.25, rng=34, **L2_ARGS)
        assert result.accepted

    def test_partition_covers_on_accept(self):
        dist = families.random_tiling_histogram(256, 3, rng=6, min_piece=16)
        result = khist_test_l2(dist, 256, 3, 0.25, rng=35, **L2_ARGS)
        assert result.accepted
        assert result.partition[-1].stop == 256

    def test_result_metadata(self):
        dist = families.uniform(128)
        result = khist_test_l2(dist, 128, 2, 0.25, rng=36, **L2_ARGS)
        assert result.norm == "l2"
        assert result.k == 2
        assert result.epsilon == 0.25
        assert result.samples_used == result.params.total_samples
        assert result.num_flatness_queries == len(result.queries)

    def test_invalid_k_raises(self):
        with pytest.raises(InvalidParameterError):
            khist_test_l2(families.uniform(16), 16, 0, 0.25)


class TestTesterL1:
    def test_accepts_k_histogram(self):
        dist = families.random_tiling_histogram(256, 4, rng=3, min_piece=8)
        result = khist_test_l1(dist, 256, 4, 0.25, params=L1_PARAMS, rng=41)
        assert result.accepted

    def test_rejects_sawtooth(self):
        """The sawtooth is ~0.4-far in l1 from 4-histograms."""
        result = khist_test_l1(
            families.sawtooth(256), 256, 4, 0.25, params=L1_PARAMS, rng=42
        )
        assert not result.accepted

    def test_rejects_lower_bound_no_instance(self):
        from repro.core.lower_bound import no_instance

        dist = no_instance(256, 4, rng=7)
        result = khist_test_l1(dist, 256, 4, 0.2, params=L1_PARAMS, rng=43)
        assert not result.accepted

    def test_accepts_lower_bound_yes_instance(self):
        from repro.core.lower_bound import yes_instance

        dist = yes_instance(256, 4)
        result = khist_test_l1(dist, 256, 4, 0.2, params=L1_PARAMS, rng=44)
        assert result.accepted

    def test_sawtooth_accepted_with_huge_k(self):
        """Every distribution is a tiling n-histogram."""
        result = khist_test_l1(
            families.sawtooth(64), 64, 64, 0.25,
            params=TesterParams(num_sets=11, set_size=20_000), rng=45
        )
        assert result.accepted

    def test_norm_recorded(self):
        result = khist_test_l1(
            families.uniform(64), 64, 1, 0.25,
            params=TesterParams(num_sets=5, set_size=5_000), rng=46
        )
        assert result.norm == "l1"


class TestStatisticalGuarantee:
    """The 2/3 success probability of the testers, over repeated runs."""

    def test_l2_acceptance_rate_on_members(self):
        dist = families.random_tiling_histogram(128, 3, rng=2, min_piece=8)
        accepts = sum(
            khist_test_l2(dist, 128, 3, 0.3, scale=0.05, rng=100 + i).accepted
            for i in range(10)
        )
        assert accepts >= 7

    def test_l2_rejection_rate_on_far(self):
        spiky = families.spikes(128, 6)
        rejects = sum(
            not khist_test_l2(spiky, 128, 3, 0.3, scale=0.05, rng=200 + i).accepted
            for i in range(10)
        )
        assert rejects >= 7

    def test_l1_acceptance_rate_on_members(self):
        dist = families.random_tiling_histogram(128, 3, rng=2, min_piece=8)
        params = TesterParams(num_sets=11, set_size=20_000)
        accepts = sum(
            khist_test_l1(dist, 128, 3, 0.3, params=params, rng=300 + i).accepted
            for i in range(10)
        )
        assert accepts >= 7

    def test_l1_rejection_rate_on_far(self):
        saw = families.sawtooth(128)
        params = TesterParams(num_sets=11, set_size=20_000)
        rejects = sum(
            not khist_test_l1(saw, 128, 3, 0.3, params=params, rng=400 + i).accepted
            for i in range(10)
        )
        assert rejects >= 7
