"""Tests for repro.histograms.intervals."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidIntervalError
from repro.histograms.intervals import Interval, overlap_length

intervals = st.tuples(
    st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=20)
).map(lambda t: Interval(t[0], t[0] + t[1]))


class TestConstruction:
    def test_basic(self):
        ivl = Interval(2, 5)
        assert ivl.start == 2 and ivl.stop == 5

    def test_empty_raises(self):
        with pytest.raises(InvalidIntervalError):
            Interval(3, 3)

    def test_reversed_raises(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 2)

    def test_negative_start_raises(self):
        with pytest.raises(InvalidIntervalError):
            Interval(-1, 2)

    def test_from_closed(self):
        assert Interval.from_closed(2, 4) == Interval(2, 5)

    def test_from_closed_singleton(self):
        assert Interval.from_closed(3, 3).length == 1

    def test_hashable(self):
        assert len({Interval(0, 1), Interval(0, 1), Interval(0, 2)}) == 2

    def test_ordering(self):
        assert Interval(0, 3) < Interval(1, 2)
        assert Interval(1, 2) < Interval(1, 3)


class TestGeometry:
    def test_length(self):
        assert Interval(2, 7).length == 5

    def test_contains(self):
        ivl = Interval(2, 5)
        assert ivl.contains(2) and ivl.contains(4)
        assert not ivl.contains(5) and not ivl.contains(1)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(3, 7))
        assert not Interval(3, 7).contains_interval(Interval(0, 10))
        assert Interval(3, 7).contains_interval(Interval(3, 7))

    def test_intersects(self):
        assert Interval(0, 5).intersects(Interval(4, 8))
        assert not Interval(0, 5).intersects(Interval(5, 8))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 3).intersection(Interval(5, 9)) is None

    def test_difference_middle(self):
        parts = Interval(0, 10).difference(Interval(3, 6))
        assert parts == [Interval(0, 3), Interval(6, 10)]

    def test_difference_covering(self):
        assert Interval(3, 6).difference(Interval(0, 10)) == []

    def test_difference_disjoint(self):
        assert Interval(0, 3).difference(Interval(5, 8)) == [Interval(0, 3)]

    def test_difference_left_overlap(self):
        assert Interval(2, 8).difference(Interval(0, 5)) == [Interval(5, 8)]

    def test_adjacent(self):
        assert Interval(0, 3).is_adjacent_to(Interval(3, 5))
        assert not Interval(0, 3).is_adjacent_to(Interval(4, 5))

    def test_as_slice(self):
        assert list(range(10)[Interval(2, 5).as_slice()]) == [2, 3, 4]

    def test_overlap_length(self):
        assert overlap_length(Interval(0, 5), Interval(3, 9)) == 2
        assert overlap_length(Interval(0, 3), Interval(5, 9)) == 0


class TestIntervalProperties:
    @given(intervals, intervals)
    def test_intersection_symmetric(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(intervals, intervals)
    def test_intersection_consistent_with_intersects(self, a, b):
        assert (a.intersection(b) is not None) == a.intersects(b)

    @given(intervals, intervals)
    def test_difference_plus_intersection_partitions(self, a, b):
        """|a \\ b| + |a intersect b| == |a|."""
        inter = a.intersection(b)
        inter_len = inter.length if inter else 0
        diff_len = sum(piece.length for piece in a.difference(b))
        assert inter_len + diff_len == a.length

    @given(intervals, intervals)
    def test_difference_pieces_disjoint_from_b(self, a, b):
        for piece in a.difference(b):
            assert not piece.intersects(b)
            assert a.contains_interval(piece)

    @given(intervals)
    def test_overlap_length_self(self, a):
        assert overlap_length(a, a) == a.length
