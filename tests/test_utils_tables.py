"""Tests for repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_markdown_table


class TestFormatMarkdownTable:
    def test_basic_shape(self):
        table = format_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}

    def test_float_formatting(self):
        table = format_markdown_table(["x"], [[0.123456]], float_format=".2f")
        assert "0.12" in table

    def test_bool_rendering(self):
        table = format_markdown_table(["ok"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        table = format_markdown_table(["name", "v"], [["long-name", 1], ["s", 22]])
        lines = table.splitlines()
        # All rows render at equal width.
        assert len({len(line) for line in lines}) == 1

    def test_empty_rows(self):
        table = format_markdown_table(["a"], [])
        assert table.count("\n") == 1
