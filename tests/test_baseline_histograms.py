"""Tests for equi-depth, equi-width and compressed baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.compressed import compressed_from_samples
from repro.baselines.equidepth import equidepth_from_pmf, equidepth_from_samples
from repro.baselines.equiwidth import equiwidth_from_pmf, equiwidth_from_samples
from repro.errors import InvalidParameterError


@pytest.fixture
def skewed_samples(rng):
    pmf = np.ones(64)
    pmf[0] = 200.0  # heavy singleton
    pmf = pmf / pmf.sum()
    return rng.choice(64, size=5000, p=pmf), pmf


class TestEquidepth:
    def test_pmf_buckets_have_equal_mass(self):
        pmf = np.ones(100) / 100
        hist = equidepth_from_pmf(pmf, 4)
        masses = [
            hist.to_pmf()[a:b].sum()
            for a, b in zip(hist.boundaries[:-1], hist.boundaries[1:])
        ]
        assert np.allclose(masses, 0.25)

    def test_sample_version_is_distribution(self, skewed_samples):
        samples, _ = skewed_samples
        hist = equidepth_from_samples(samples, 64, 8)
        assert hist.is_distribution()

    def test_bucket_count_at_most_k(self, skewed_samples):
        samples, _ = skewed_samples
        assert equidepth_from_samples(samples, 64, 8).num_pieces <= 8

    def test_heavy_element_merges_cuts(self):
        """A single heavy element absorbs several quantile targets."""
        pmf = np.full(10, 0.02)
        pmf[5] = 0.82
        hist = equidepth_from_pmf(pmf, 5)
        assert hist.num_pieces < 5

    def test_invalid_k_raises(self):
        with pytest.raises(InvalidParameterError):
            equidepth_from_pmf(np.ones(4) / 4, 0)

    def test_empty_samples_raise(self):
        with pytest.raises(InvalidParameterError):
            equidepth_from_samples(np.array([], dtype=np.int64), 4, 2)


class TestEquiwidth:
    def test_boundaries_evenly_spaced(self):
        hist = equiwidth_from_pmf(np.ones(100) / 100, 4)
        assert list(hist.boundaries) == [0, 25, 50, 75, 100]

    def test_k_larger_than_n_clamped(self):
        hist = equiwidth_from_pmf(np.ones(3) / 3, 10)
        assert hist.num_pieces == 3

    def test_mass_preserved(self, skewed_samples):
        samples, _ = skewed_samples
        assert equiwidth_from_samples(samples, 64, 7).is_distribution()

    def test_uniform_is_exact(self):
        pmf = np.ones(12) / 12
        hist = equiwidth_from_pmf(pmf, 3)
        assert np.allclose(hist.to_pmf(), pmf)


class TestCompressed:
    def test_heavy_singleton_isolated(self, skewed_samples):
        samples, _ = skewed_samples
        hist = compressed_from_samples(samples, 64, 8)
        assert 1 in list(np.diff(hist.boundaries))  # a width-1 bucket exists

    def test_heavy_value_estimated_accurately(self, skewed_samples):
        samples, pmf = skewed_samples
        hist = compressed_from_samples(samples, 64, 8)
        assert hist.value_at(0) == pytest.approx(pmf[0], rel=0.15)

    def test_is_distribution(self, skewed_samples):
        samples, _ = skewed_samples
        assert compressed_from_samples(samples, 64, 8).is_distribution()

    def test_uniform_data_needs_no_singletons(self, rng):
        samples = rng.integers(0, 64, size=5000)
        hist = compressed_from_samples(samples, 64, 8)
        assert hist.num_pieces <= 12  # never wildly above budget

    def test_bad_fraction_raises(self, skewed_samples):
        samples, _ = skewed_samples
        with pytest.raises(InvalidParameterError):
            compressed_from_samples(samples, 64, 8, singleton_fraction=1.5)

    def test_invalid_k_raises(self, skewed_samples):
        samples, _ = skewed_samples
        with pytest.raises(InvalidParameterError):
            compressed_from_samples(samples, 64, 0)
