"""Tests for repro.core.greedy (Algorithm 1 / Theorem 2).

Learning-guarantee tests run at reduced ``scale``; the paper's additive
bounds (5 eps / 8 eps) hold with enormous slack at these sizes, so the
assertions check much tighter empirical budgets than the theorems require.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.voptimal import voptimal_cost
from repro.core.greedy import learn_histogram
from repro.core.params import GreedyParams
from repro.distributions import families
from repro.distributions.distances import l2_distance_squared
from repro.errors import InvalidParameterError


SMALL = dict(scale=0.05, rng=17)


@pytest.fixture(scope="module")
def learned_fast():
    dist = families.random_tiling_histogram(128, 4, rng=7, min_piece=4)
    result = learn_histogram(dist, 128, 4, 0.25, method="fast", **SMALL)
    return dist, result


@pytest.fixture(scope="module")
def learned_exhaustive():
    dist = families.random_tiling_histogram(128, 4, rng=7, min_piece=4)
    result = learn_histogram(dist, 128, 4, 0.25, method="exhaustive", **SMALL)
    return dist, result


class TestLearningGuarantee:
    def test_theorem1_bound_exhaustive(self, learned_exhaustive):
        dist, result = learned_exhaustive
        err = l2_distance_squared(dist, result.histogram)
        opt = voptimal_cost(dist.pmf, 4, norm="l2")
        assert err - opt <= 5 * 0.25

    def test_theorem2_bound_fast(self, learned_fast):
        dist, result = learned_fast
        err = l2_distance_squared(dist, result.histogram)
        opt = voptimal_cost(dist.pmf, 4, norm="l2")
        assert err - opt <= 8 * 0.25

    def test_excess_error_small_in_practice(self, learned_fast):
        """At these sizes the excess is orders of magnitude below 8 eps."""
        dist, result = learned_fast
        err = l2_distance_squared(dist, result.histogram)
        assert err <= 0.01

    def test_learns_zipf(self):
        """Non-histogram input: error approaches the k-histogram optimum."""
        dist = families.zipf(128, 1.0)
        result = learn_histogram(dist, 128, 6, 0.25, method="fast", **SMALL)
        err = l2_distance_squared(dist, result.histogram)
        opt = voptimal_cost(dist.pmf, 6, norm="l2")
        assert err <= opt + 0.005

    def test_learns_two_level(self):
        dist = families.two_level(128, heavy_start=32, heavy_length=16)
        result = learn_histogram(dist, 128, 4, 0.25, method="fast", **SMALL)
        assert l2_distance_squared(dist, result.histogram) <= 0.01


class TestOutputStructure:
    def test_histogram_covers_domain(self, learned_fast):
        _, result = learned_fast
        assert result.histogram.n == 128
        assert result.histogram.boundaries[0] == 0
        assert result.histogram.boundaries[-1] == 128

    def test_round_trace_length(self, learned_fast):
        _, result = learned_fast
        assert len(result.rounds) == result.params.rounds

    def test_priority_log_matches_tiling(self, learned_fast):
        """The paper's priority representation flattens to the engine state."""
        _, result = learned_fast
        assert np.allclose(
            result.priority_histogram.to_pmf(), result.histogram.to_pmf()
        )

    def test_priority_log_piece_budget(self, learned_fast):
        """Each round adds the chosen interval plus at most 2 neighbours."""
        _, result = learned_fast
        assert result.priority_histogram.num_pieces <= 3 * result.params.rounds

    def test_estimated_cost_non_increasing(self, learned_fast):
        """Greedy cost estimates never increase across rounds."""
        _, result = learned_fast
        costs = [r.estimated_cost for r in result.rounds]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_total_mass_reasonable(self, learned_fast):
        """The greedy optimises squared-l2 error, so low-p_i^2 regions may
        stay uncovered (value 0); total mass is close to, but below, 1."""
        _, result = learned_fast
        mass = result.histogram.total_mass()
        assert 0.5 <= mass <= 1.05

    def test_samples_used_matches_params(self, learned_fast):
        _, result = learned_fast
        assert result.samples_used == result.params.total_samples

    def test_method_recorded(self, learned_fast, learned_exhaustive):
        assert learned_fast[1].method == "fast"
        assert learned_exhaustive[1].method == "exhaustive"


class TestMethodsAgree:
    def test_fast_close_to_exhaustive(self, learned_fast, learned_exhaustive):
        """Theorem 2: restricting candidates costs at most 3 eps extra."""
        dist, fast = learned_fast
        _, slow = learned_exhaustive
        err_fast = l2_distance_squared(dist, fast.histogram)
        err_slow = l2_distance_squared(dist, slow.histogram)
        assert err_fast <= err_slow + 3 * 0.25

    def test_fast_uses_fewer_candidates_at_larger_n(self):
        dist = families.random_tiling_histogram(512, 4, rng=9, min_piece=16)
        fast = learn_histogram(
            dist, 512, 4, 0.3, method="fast", scale=0.02, rng=10
        )
        assert fast.num_candidates < 512 * 513 // 2


class TestParameters:
    def test_explicit_params_respected(self):
        dist = families.uniform(64)
        params = GreedyParams(
            weight_sample_size=500,
            collision_sets=3,
            collision_set_size=500,
            rounds=2,
        )
        result = learn_histogram(dist, 64, 2, 0.5, params=params, rng=3)
        assert result.params is params
        assert len(result.rounds) == 2

    def test_invalid_method_raises(self):
        with pytest.raises(InvalidParameterError):
            learn_histogram(families.uniform(16), 16, 2, 0.5, method="magic")

    def test_max_candidates_cap(self):
        dist = families.uniform(64)
        params = GreedyParams(200, 3, 200, 2)
        result = learn_histogram(
            dist, 64, 2, 0.5, params=params, max_candidates=50, rng=3
        )
        assert result.num_candidates <= 50

    def test_deterministic_given_seed(self):
        dist = families.zipf(64, 1.0)
        params = GreedyParams(500, 3, 500, 3)
        a = learn_histogram(dist, 64, 3, 0.5, params=params, rng=5)
        b = learn_histogram(dist, 64, 3, 0.5, params=params, rng=5)
        assert a.histogram == b.histogram


class TestEdgeCases:
    def test_uniform_input_one_round(self):
        """k=1, eps high -> a single round; result near uniform."""
        dist = families.uniform(32)
        result = learn_histogram(dist, 32, 1, 0.5, scale=0.2, rng=3)
        assert l2_distance_squared(dist, result.histogram) < 0.05

    def test_point_mass_found(self):
        """A distribution concentrated on one element is isolated."""
        pmf = np.full(64, 0.2 / 63)
        pmf[20] = 0.8
        from repro.distributions.base import DiscreteDistribution

        dist = DiscreteDistribution(pmf)
        result = learn_histogram(dist, 64, 2, 0.25, scale=0.1, rng=3)
        assert result.histogram.value_at(20) > 10 * result.histogram.value_at(40)

    def test_tiny_domain(self):
        dist = families.uniform(2)
        result = learn_histogram(dist, 2, 1, 0.5, scale=0.5, rng=3)
        assert result.histogram.n == 2
